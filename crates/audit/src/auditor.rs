//! The offline auditor: replaying a disclosure log against an audit query.
//!
//! The auditor is the paper's "meta-agent" (Section 2). Given
//!
//! * an **audit query** `A` (the sensitive property, e.g. `hiv_pos` —
//!   possibly itself sensitive, per the retroactive-auditing motivation),
//! * a **prior assumption** about users (which family `Π`/`Σ` their
//!   knowledge lives in),
//! * a **disclosure log**,
//!
//! she flags every disclosure that *could have* let its recipient gain
//! confidence in `A`. Only a positive answer to `A` is protected; negative
//! answers are not (Section 3: "a positive result of query `A` is
//! considered private … whereas a negative result is not protected"), so
//! entries are only audited when `A` was true in the database at disclosure
//! time. Each user's disclosures are also audited *cumulatively* — the
//! intersection of everything the user learned (Section 3.3) — which
//! catches composition breaches that no single query exhibits (Remark 4.2).

use crate::log::{AuditLog, Disclosure};
use crate::query::Query;
use epi_boolean::Cube;
use epi_core::risk::{UniformMargin, RISK_SCALE};
use epi_core::{unrestricted, Deadline, WorldId, WorldSet};
use epi_par::Pool;
use epi_solver::logsupermod::{self, SupermodularSearchOptions};
use epi_solver::{
    decide_product_pipeline_observed, ProductSolverOptions, SafeEvidence, Stage, StageObserver,
    UndecidedReason, Verdict,
};
use rand::SeedableRng;
use std::fmt;

/// The auditor's assumption about users' prior knowledge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PriorAssumption {
    /// No assumption at all (Theorem 3.11); also covers possibilistic
    /// users by the equivalence of conditions (1)–(3).
    Unrestricted,
    /// Users treat records independently (`Π_m⁰`, the Miklau–Suciu
    /// assumption) — decided by the full criteria pipeline.
    Product,
    /// Users' priors admit no negative correlations (`Π_m⁺`,
    /// log-supermodular) — criteria plus refutation search.
    LogSupermodular,
}

/// The auditor's finding for one disclosure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// The disclosure could not have increased any admissible user's
    /// confidence in the audited property.
    Safe,
    /// Some admissible prior gains confidence — the disclosure is flagged.
    Flagged,
    /// The decision procedure was inconclusive; the auditor flags these
    /// conservatively in reports but records the distinction.
    Inconclusive,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Safe => write!(f, "safe"),
            Finding::Flagged => write!(f, "FLAGGED"),
            Finding::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// One line of the audit report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportEntry {
    /// The user audited.
    pub user: String,
    /// Time of the disclosure (or of the last disclosure for cumulative
    /// entries).
    pub time: u64,
    /// Whether this entry audits a single disclosure or the user's
    /// cumulative knowledge.
    pub kind: EntryKind,
    /// The finding.
    pub finding: Finding,
    /// Explanation: the deciding criterion/stage, or the breach evidence.
    pub explanation: String,
    /// Normalized risk score of the decision in micro-units
    /// (`0 ..= 1_000_000`, see `epi_core::risk`): `Some(0)` for
    /// negative-gated entries (nothing protected was revealed), the
    /// uniform-prior confidence ratio for decided-safe entries, and
    /// saturated for flagged or inconclusive ones. `None` only on
    /// entries decoded from pre-risk reports.
    pub risk_micros: Option<u64>,
    /// Remaining exposure budget of the user's session in micro-units,
    /// after this entry was folded in. Only the service sets this (and
    /// only when a budget cap is configured); the offline auditor has no
    /// ledger, so offline reports carry `None`.
    pub budget_remaining_micros: Option<u64>,
}

/// What a report entry covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// One log entry.
    Single,
    /// The intersection of all of the user's disclosures up to `time`.
    Cumulative,
}

/// A completed audit.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// The audited property rendered against the schema.
    pub audit_query: String,
    /// The assumption used.
    pub assumption: PriorAssumption,
    /// Per-disclosure and per-user findings.
    pub entries: Vec<ReportEntry>,
}

impl AuditReport {
    /// The users with at least one flagged entry.
    pub fn flagged_users(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .entries
            .iter()
            .filter(|e| e.finding == Finding::Flagged)
            .map(|e| e.user.as_str())
            .collect();
        out.dedup();
        out
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Audit of property `{}` under {:?} priors\n",
            self.audit_query, self.assumption
        );
        for e in &self.entries {
            let kind = match e.kind {
                EntryKind::Single => "disclosure",
                EntryKind::Cumulative => "cumulative",
            };
            out.push_str(&format!(
                "  [{:>12}] t={:<6} {:<10} {:<12} — {}\n",
                e.user,
                e.time,
                kind,
                e.finding.to_string(),
                e.explanation
            ));
        }
        out
    }
}

/// One safety decision for disclosing a world set `B` while the audited
/// property `A` holds.
///
/// This is the unit of work the auditing service batches, caches and
/// meters: [`Auditor::decide_sets`] produces one `Decision` per distinct
/// `(A, B)` pair, and [`Auditor::audit`] folds decisions into report
/// entries. `stage` records which pipeline stage settled the question
/// when the pipeline was involved (`None` for the log-supermodular
/// refutation search, which runs outside the pipeline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Safe, flagged, or inconclusive.
    pub finding: Finding,
    /// Human-readable evidence: criterion name, witness prior, or budget.
    pub explanation: String,
    /// The pipeline stage that decided, when one did.
    pub stage: Option<Stage>,
    /// Branch-and-bound boxes the decision cost (0 when a criterion or a
    /// non-pipeline procedure decided) — the service's throughput metrics
    /// aggregate this.
    pub boxes_processed: usize,
    /// Set iff `finding` is [`Finding::Inconclusive`]: why the procedure
    /// gave up. Deadline/cancellation stops are transient (a retry may
    /// decide); budget exhaustion is deterministic. Callers must treat
    /// every inconclusive decision as unsafe regardless of the reason.
    pub undecided: Option<UndecidedReason>,
    /// Normalized risk score in micro-units (`0 ..= 1_000_000`): the
    /// uniform-prior confidence ratio `P[A|B]/P[A]` for safe decisions,
    /// saturated at `1_000_000` for flagged and inconclusive ones — an
    /// undecided question prices as if it breached (fail closed).
    pub risk_micros: u32,
}

/// The offline auditor.
pub struct Auditor {
    assumption: PriorAssumption,
    product_options: ProductSolverOptions,
    seed: u64,
}

impl Auditor {
    /// Creates an auditor with the given prior assumption.
    pub fn new(assumption: PriorAssumption) -> Auditor {
        Auditor {
            assumption,
            product_options: ProductSolverOptions::default(),
            seed: 0xE1F0,
        }
    }

    /// Overrides the product-solver options (budget/margin).
    pub fn with_product_options(mut self, options: ProductSolverOptions) -> Auditor {
        self.product_options = options;
        self
    }

    /// The prior assumption this auditor decides under.
    pub fn assumption(&self) -> PriorAssumption {
        self.assumption
    }

    /// The product-solver options this auditor passes to the pipeline.
    pub fn product_options(&self) -> ProductSolverOptions {
        self.product_options
    }

    /// Decides safety of disclosing `b` against audited set `a`.
    ///
    /// This is the reusable per-disclosure entry point: both sets are
    /// already compiled against `cube`'s schema, so callers that maintain
    /// their own disclosure state (e.g. a long-running service holding
    /// cumulative per-user knowledge) can invoke the decision procedure
    /// directly, once per distinct `(a, b)` pair, and reuse the result.
    /// The negative-result gate (`A` false at disclosure time) is the
    /// caller's responsibility — see [`Auditor::audit`].
    pub fn decide_sets(&self, cube: &Cube, a: &WorldSet, b: &WorldSet) -> Decision {
        self.decide_sets_deadline(cube, a, b, &Deadline::none())
    }

    /// [`Auditor::decide_sets`] under a [`Deadline`]: the expensive
    /// decision procedures stop cooperatively once it fires and the
    /// result is an [`Finding::Inconclusive`] decision with
    /// [`Decision::undecided`] set — never `Safe` (fail closed).
    pub fn decide_sets_deadline(
        &self,
        cube: &Cube,
        a: &WorldSet,
        b: &WorldSet,
        deadline: &Deadline,
    ) -> Decision {
        self.decide_sets_observed(cube, a, b, deadline, &mut |_, _| {})
    }

    /// [`Auditor::decide_sets_deadline`] reporting each attempted stage
    /// check and its wall time (in microseconds) to `observe`, so a
    /// caller building per-request traces or stage-latency histograms
    /// sees where a decision spent its time. Observation is a pure side
    /// channel: the decision is identical with any observer.
    ///
    /// The product pipeline reports every stage it attempted, including
    /// ones that did not decide (their rejection still cost time). The
    /// log-supermodular refutation search runs outside the staged
    /// pipeline and reports nothing here — callers wanting to time it
    /// should wrap this call and attribute the elapsed time to their
    /// own refutation-search bucket (the decision comes back with
    /// [`Decision::stage`] `None`, which identifies that path).
    pub fn decide_sets_observed(
        &self,
        cube: &Cube,
        a: &WorldSet,
        b: &WorldSet,
        deadline: &Deadline,
        observe: StageObserver<'_>,
    ) -> Decision {
        // The score of a *safe* decision is the uniform-prior confidence
        // ratio; anything not decided safe saturates. Computed once — it
        // is the same exact count arithmetic on every path.
        let safe_risk = UniformMargin::from_sets(a, b).risk_micros();
        let flagged_risk = RISK_SCALE as u32;
        match self.assumption {
            PriorAssumption::Unrestricted => {
                let started = std::time::Instant::now();
                let safe = unrestricted::safe_unrestricted(a, b);
                observe(
                    Stage::Unconditional,
                    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                );
                if safe {
                    Decision {
                        finding: Finding::Safe,
                        explanation: SafeEvidence::Unconditional.to_string(),
                        stage: Some(Stage::Unconditional),
                        boxes_processed: 0,
                        undecided: None,
                        risk_micros: safe_risk,
                    }
                } else {
                    let r = unrestricted::refute_unrestricted(a, b)
                        .expect("refutation exists when the condition fails");
                    Decision {
                        finding: Finding::Flagged,
                        explanation: format!(
                            "two-point prior raises P[A] from {} to {}",
                            r.prior_confidence, r.posterior_confidence
                        ),
                        stage: Some(Stage::Unconditional),
                        boxes_processed: 0,
                        undecided: None,
                        risk_micros: flagged_risk,
                    }
                }
            }
            PriorAssumption::Product => {
                let decision = decide_product_pipeline_observed(
                    cube,
                    a,
                    b,
                    self.product_options,
                    deadline,
                    observe,
                );
                let boxes_processed = decision.boxes_processed;
                match decision.verdict {
                    Verdict::Safe(ev) => Decision {
                        finding: Finding::Safe,
                        explanation: format!("{} via {}", ev, decision.stage.label()),
                        stage: Some(decision.stage),
                        boxes_processed,
                        undecided: None,
                        risk_micros: safe_risk,
                    },
                    Verdict::Unsafe(w) => Decision {
                        finding: Finding::Flagged,
                        explanation: format!(
                            "product prior p = {:?} gains {} (stage {})",
                            w.probs.iter().map(|r| r.to_f64()).collect::<Vec<_>>(),
                            (-w.gap.to_f64()),
                            decision.stage.label()
                        ),
                        stage: Some(decision.stage),
                        boxes_processed,
                        undecided: None,
                        risk_micros: flagged_risk,
                    },
                    Verdict::Unknown => {
                        let reason = decision
                            .undecided
                            .unwrap_or(UndecidedReason::BudgetExhausted);
                        Decision {
                            finding: Finding::Inconclusive,
                            explanation: format!(
                                "{} at stage {}",
                                reason,
                                Stage::BranchAndBound.label()
                            ),
                            stage: Some(Stage::BranchAndBound),
                            boxes_processed,
                            undecided: Some(reason),
                            risk_micros: flagged_risk,
                        }
                    }
                }
            }
            PriorAssumption::LogSupermodular => {
                // The refutation search is not deadline-threaded; honor
                // the deadline up front so an already-expired request
                // fails closed instead of burning the whole budget.
                if let Err(reason) = deadline.check() {
                    let reason = UndecidedReason::from(reason);
                    return Decision {
                        finding: Finding::Inconclusive,
                        explanation: format!("{reason} before refutation search"),
                        stage: None,
                        boxes_processed: 0,
                        undecided: Some(reason),
                        risk_micros: flagged_risk,
                    };
                }
                let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
                let verdict = logsupermod::decide_supermodular(
                    cube,
                    a,
                    b,
                    SupermodularSearchOptions::default(),
                    &mut rng,
                );
                match verdict {
                    Verdict::Safe(ev) => Decision {
                        finding: Finding::Safe,
                        explanation: ev.to_string(),
                        stage: None,
                        boxes_processed: 0,
                        undecided: None,
                        risk_micros: safe_risk,
                    },
                    Verdict::Unsafe(w) => Decision {
                        finding: Finding::Flagged,
                        explanation: format!(
                            "log-supermodular prior gains {} ({:?})",
                            w.gain, w.source
                        ),
                        stage: None,
                        boxes_processed: 0,
                        undecided: None,
                        risk_micros: flagged_risk,
                    },
                    Verdict::Unknown => Decision {
                        finding: Finding::Inconclusive,
                        explanation: "criteria inconclusive and no refutation found".into(),
                        stage: None,
                        boxes_processed: 0,
                        undecided: Some(UndecidedReason::BudgetExhausted),
                        risk_micros: flagged_risk,
                    },
                }
            }
        }
    }

    /// Audits a log against the audit query `A`, producing per-disclosure
    /// and per-user cumulative findings.
    ///
    /// Entries where `A` was false at disclosure time are reported `Safe`
    /// with the "negative result not protected" explanation — this is the
    /// Alice/Cindy-vs-Mallory distinction of the introduction.
    pub fn audit(&self, log: &AuditLog, audit_query: &Query) -> AuditReport {
        let schema = log.schema();
        let cube = schema.cube();
        let a = audit_query.compile(schema);
        // Plan every report entry first: the gated ones (A false at
        // disclosure time) are already decided, the rest carry the
        // disclosed set to run through the decision procedure.
        struct Planned {
            user: String,
            time: u64,
            kind: EntryKind,
            prefix: String,
            disclosed: Option<WorldSet>,
        }
        let mut plan: Vec<Planned> = Vec::new();
        for (d, state) in log.entries_with_state() {
            if !a.contains(WorldId(state.mask())) {
                plan.push(Planned {
                    user: d.user.clone(),
                    time: d.time,
                    kind: EntryKind::Single,
                    prefix: "audited property was false at disclosure time (negative results are not protected)".into(),
                    disclosed: None,
                });
                continue;
            }
            plan.push(Planned {
                user: d.user.clone(),
                time: d.time,
                kind: EntryKind::Single,
                prefix: format!("query `{}` answered {}", d.query.display(schema), d.answer),
                disclosed: Some(d.disclosed_set(schema)),
            });
        }
        // Cumulative per user. The same protection rule as for single
        // entries applies: a positive result of A is protected, a negative
        // one is not — so the cumulative check is gated on A being true at
        // the user's last disclosure (the state their combined knowledge
        // refers to).
        for user in log.users() {
            let relevant: Vec<(&Disclosure, crate::schema::DatabaseState)> = log
                .entries_with_state()
                .filter(|(d, _)| d.user == user)
                .collect();
            let Some((last, last_state)) = relevant.last() else {
                continue;
            };
            if relevant.len() < 2 {
                continue; // cumulative coincides with the single entry
            }
            if !a.contains(WorldId(last_state.mask())) {
                plan.push(Planned {
                    user: user.to_owned(),
                    time: last.time,
                    kind: EntryKind::Cumulative,
                    prefix: "audited property was false at the last disclosure (negative results are not protected)".into(),
                    disclosed: None,
                });
                continue;
            }
            plan.push(Planned {
                user: user.to_owned(),
                time: last.time,
                kind: EntryKind::Cumulative,
                prefix: format!("{} disclosures combined", relevant.len()),
                disclosed: Some(log.cumulative_disclosure(user, last.time)),
            });
        }
        // Decide the open entries in parallel. `parallel_map` preserves
        // order and the default solver mode is deterministic, so the
        // report is the same at any worker count.
        let decisions: Vec<Option<Decision>> = Pool::global().parallel_map(&plan, |item| {
            item.disclosed
                .as_ref()
                .map(|b| self.decide_sets(&cube, &a, b))
        });
        let entries = plan
            .iter()
            .zip(decisions)
            .map(|(item, decision)| match decision {
                None => ReportEntry {
                    user: item.user.clone(),
                    time: item.time,
                    kind: item.kind,
                    finding: Finding::Safe,
                    explanation: item.prefix.clone(),
                    // A negative-gated entry revealed nothing protected.
                    risk_micros: Some(0),
                    budget_remaining_micros: None,
                },
                Some(d) => ReportEntry {
                    user: item.user.clone(),
                    time: item.time,
                    kind: item.kind,
                    finding: d.finding,
                    explanation: format!("{}: {}", item.prefix, d.explanation),
                    risk_micros: Some(u64::from(d.risk_micros)),
                    budget_remaining_micros: None,
                },
            })
            .collect();
        AuditReport {
            audit_query: audit_query.display(schema).to_string(),
            assumption: self.assumption,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse;
    use crate::schema::{DatabaseState, RecordId, Schema};

    fn schema() -> Schema {
        Schema::from_names(&["hiv_pos", "transfusions"]).unwrap()
    }

    /// The introduction's timeline: Alice and Cindy learn Bob's status
    /// before he contracts HIV; Mallory after. Only Mallory is flagged.
    #[test]
    fn intro_timeline_flags_only_mallory() {
        let schema = schema();
        let mut log = AuditLog::new(schema.clone());
        let healthy = DatabaseState::from_mask(0);
        let infected = healthy.with(RecordId(0));
        let q = parse("hiv_pos", &schema).unwrap();
        log.record("alice", 2005, q.clone(), healthy).unwrap();
        log.record("cindy", 2005, q.clone(), healthy).unwrap();
        log.record("mallory", 2007, q.clone(), infected).unwrap();

        let auditor = Auditor::new(PriorAssumption::Unrestricted);
        let report = auditor.audit(&log, &q);
        assert_eq!(report.flagged_users(), vec!["mallory"]);
        // Alice/Cindy entries cite the negative-result rule.
        let alice = report.entries.iter().find(|e| e.user == "alice").unwrap();
        assert_eq!(alice.finding, Finding::Safe);
        assert!(alice.explanation.contains("not protected"));
    }

    /// §1.1: disclosing `hiv_pos -> transfusions` is safe for `hiv_pos`
    /// under every assumption, even though they share a critical record.
    #[test]
    fn hiv_implication_safe_under_all_assumptions() {
        let schema = schema();
        let a = parse("hiv_pos", &schema).unwrap();
        let b = parse("hiv_pos -> transfusions", &schema).unwrap();
        let db = DatabaseState::from_present([RecordId(0), RecordId(1)]);
        for assumption in [
            PriorAssumption::Unrestricted,
            PriorAssumption::Product,
            PriorAssumption::LogSupermodular,
        ] {
            let mut log = AuditLog::new(schema.clone());
            log.record("alice", 1, b.clone(), db).unwrap();
            let report = Auditor::new(assumption).audit(&log, &a);
            assert!(
                report.flagged_users().is_empty(),
                "{assumption:?} must accept the implication disclosure:\n{}",
                report.render()
            );
        }
    }

    /// Asking `hiv_pos` directly while it is true is flagged under every
    /// assumption.
    #[test]
    fn direct_query_flagged() {
        let schema = schema();
        let a = parse("hiv_pos", &schema).unwrap();
        let db = DatabaseState::from_present([RecordId(0)]);
        for assumption in [
            PriorAssumption::Unrestricted,
            PriorAssumption::Product,
            PriorAssumption::LogSupermodular,
        ] {
            let mut log = AuditLog::new(schema.clone());
            log.record("mallory", 1, a.clone(), db).unwrap();
            let report = Auditor::new(assumption).audit(&log, &a);
            assert_eq!(report.flagged_users(), vec!["mallory"], "{assumption:?}");
        }
    }

    /// Composition: two individually-safe disclosures can combine into a
    /// breach; the cumulative entry catches it.
    #[test]
    fn cumulative_breach_detected() {
        let schema = Schema::from_names(&["secret", "marker_a", "marker_b"]).unwrap();
        let a = parse("secret", &schema).unwrap();
        // B₁ = secret | marker_a, B₂ = secret | !marker_a: each individually
        // allows confidence loss only… but their intersection pins `secret`.
        let b1 = parse("secret | marker_a", &schema).unwrap();
        let b2 = parse("secret | !marker_a", &schema).unwrap();
        let db = DatabaseState::from_present([RecordId(0), RecordId(1)]);
        let mut log = AuditLog::new(schema.clone());
        log.record("eve", 1, b1, db).unwrap();
        log.record("eve", 2, b2, db).unwrap();
        let report = Auditor::new(PriorAssumption::Unrestricted).audit(&log, &a);
        let cumulative = report
            .entries
            .iter()
            .find(|e| e.kind == EntryKind::Cumulative)
            .expect("cumulative entry present");
        assert_eq!(cumulative.finding, Finding::Flagged);
        assert!(report.render().contains("FLAGGED"));
    }

    /// A timed-out decision must fail closed: Inconclusive with the
    /// reason recorded, never Safe.
    #[test]
    fn expired_deadline_fails_closed() {
        use std::time::Duration;
        let schema = Schema::from_names(&["a", "b", "c"]).unwrap();
        let cube = schema.cube();
        // Remark 5.12 shape: defeats every criterion, forcing the
        // expensive tail where the deadline is consulted.
        let a = cube.set_from_masks([0b011, 0b100, 0b110, 0b111]);
        let b = cube.set_from_masks([0b010, 0b101, 0b110, 0b111]);
        let expired = Deadline::within(Duration::ZERO);
        for assumption in [PriorAssumption::Product, PriorAssumption::LogSupermodular] {
            let d = Auditor::new(assumption).decide_sets_deadline(&cube, &a, &b, &expired);
            assert_eq!(d.finding, Finding::Inconclusive, "{assumption:?}");
            assert_eq!(
                d.undecided,
                Some(UndecidedReason::DeadlineExceeded),
                "{assumption:?}"
            );
        }
        // Unrestricted decisions are closed-form and always complete.
        let d = Auditor::new(PriorAssumption::Unrestricted)
            .decide_sets_deadline(&cube, &a, &b, &expired);
        assert_ne!(d.finding, Finding::Inconclusive);
    }

    #[test]
    fn report_rendering_mentions_stage() {
        let schema = schema();
        let a = parse("hiv_pos", &schema).unwrap();
        let b = parse("hiv_pos -> transfusions", &schema).unwrap();
        let db = DatabaseState::from_present([RecordId(0), RecordId(1)]);
        let mut log = AuditLog::new(schema.clone());
        log.record("alice", 1, b, db).unwrap();
        let report = Auditor::new(PriorAssumption::Product).audit(&log, &a);
        let rendered = report.render();
        assert!(rendered.contains("hiv_pos"), "{rendered}");
        assert!(rendered.contains("safe"), "{rendered}");
    }
}
