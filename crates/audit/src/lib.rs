//! # epi-audit
//!
//! The retroactive (offline) query-auditing application built on the
//! *Epistemic Privacy* framework — the deployment scenario that motivates
//! the paper (Section 1): users issue Boolean queries over database
//! records, receive truthful answers, and an auditor later determines which
//! disclosures could have let their recipients *gain confidence* in a
//! sensitive audit query.
//!
//! * [`schema`] — records, schemas, database states (the relevant-record
//!   universe `Ω = {0,1}ⁿ`);
//! * [`query`] — the Boolean query language (`r1 & !r2 -> r3`), with a
//!   parser, compiler to world sets, and monotonicity analysis;
//! * [`log`] — chronological disclosure logs over evolving database
//!   states, with cumulative per-user knowledge (Section 3.3);
//! * [`auditor`] — the offline auditor: per-disclosure and cumulative
//!   findings under unrestricted, product, or log-supermodular prior
//!   assumptions, with criteria-stage provenance in the report;
//! * [`workload`] — scenario generators, including the paper's hospital
//!   timeline (Alice/Cindy/Mallory/Dave);
//! * [`online`] — the proactive-auditing extension the paper's conclusion
//!   calls for: strategy-aware users, implicit disclosures of denials, and
//!   strategy audits (the intro's Bob example as an executable theorem).
//!
//! # Quick start
//!
//! ```
//! use epi_audit::auditor::{Auditor, PriorAssumption};
//! use epi_audit::query::parse;
//! use epi_audit::workload::hospital_scenario;
//!
//! let scenario = hospital_scenario();
//! let audit_query = parse("hiv_pos", &scenario.schema).unwrap();
//! let report = Auditor::new(PriorAssumption::Unrestricted)
//!     .audit(&scenario.log, &audit_query);
//! assert_eq!(report.flagged_users(), vec!["mallory"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auditor;
pub mod log;
pub mod online;
pub mod query;
pub mod schema;
pub mod wire;
pub mod workload;

pub use auditor::{AuditReport, Auditor, Decision, Finding, PriorAssumption};
pub use log::{AuditLog, Disclosure};
pub use query::Query;
pub use schema::{DatabaseState, Record, RecordId, Schema};
