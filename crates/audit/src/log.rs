//! Disclosure logs — the input of retroactive (offline) auditing.
//!
//! In the paper's scenario (Section 1), users issue queries over time and
//! receive truthful answers; the auditor later replays the log against an
//! audit query. Each entry records who asked, what, when, and the answer
//! they received. The *disclosed property* of an entry is the knowledge set
//! associated with the answer: the query's world set when the answer was
//! `true`, its complement when `false` (the query-output knowledge set of
//! Section 2).

use crate::query::Query;
use crate::schema::{DatabaseState, Schema};
use epi_core::WorldSet;
use std::fmt;

/// One answered query.
#[derive(Clone, Debug, PartialEq)]
pub struct Disclosure {
    /// The user who received the answer.
    pub user: String,
    /// Logical time of the disclosure (monotone within a log).
    pub time: u64,
    /// The question asked.
    pub query: Query,
    /// The truthful answer, as evaluated against the database state at
    /// `time`.
    pub answer: bool,
}

impl Disclosure {
    /// The disclosed property `B ⊆ Ω`: worlds consistent with the answer.
    pub fn disclosed_set(&self, schema: &Schema) -> WorldSet {
        let q = self.query.compile(schema);
        if self.answer {
            q
        } else {
            q.complement()
        }
    }
}

/// A chronological log of disclosures, with the database state at each
/// point in time (the state may evolve between disclosures, as in the
/// Alice/Cindy/Mallory example of the introduction).
#[derive(Clone, Debug, PartialEq)]
pub struct AuditLog {
    schema: Schema,
    entries: Vec<(Disclosure, DatabaseState)>,
}

/// Errors while appending to a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// Entries must be appended in non-decreasing time order.
    OutOfOrder {
        /// Time of the offending entry.
        time: u64,
        /// Time of the last accepted entry.
        last: u64,
    },
    /// The recorded answer contradicts the database state at that time.
    UntruthfulAnswer {
        /// Index the entry would have had.
        index: usize,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::OutOfOrder { time, last } => {
                write!(f, "disclosure at time {time} appended after time {last}")
            }
            LogError::UntruthfulAnswer { index } => write!(
                f,
                "entry {index}: recorded answer contradicts the database state (the model assumes truthful answers)"
            ),
        }
    }
}

impl std::error::Error for LogError {}

impl AuditLog {
    /// An empty log over a schema.
    pub fn new(schema: Schema) -> AuditLog {
        AuditLog {
            schema,
            entries: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends an answered query, checking chronology and truthfulness
    /// against the given database state.
    pub fn record(
        &mut self,
        user: impl Into<String>,
        time: u64,
        query: Query,
        state: DatabaseState,
    ) -> Result<&Disclosure, LogError> {
        if let Some((last, _)) = self.entries.last() {
            if time < last.time {
                return Err(LogError::OutOfOrder {
                    time,
                    last: last.time,
                });
            }
        }
        let answer = query.eval(state.mask());
        self.entries.push((
            Disclosure {
                user: user.into(),
                time,
                query,
                answer,
            },
            state,
        ));
        Ok(&self.entries.last().expect("just pushed").0)
    }

    /// All entries in order.
    pub fn entries(&self) -> impl Iterator<Item = &Disclosure> {
        self.entries.iter().map(|(d, _)| d)
    }

    /// Entries with the database state at disclosure time.
    pub fn entries_with_state(&self) -> impl Iterator<Item = (&Disclosure, DatabaseState)> {
        self.entries.iter().map(|(d, s)| (d, *s))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct users appearing in the log, in first-seen order.
    pub fn users(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (d, _) in &self.entries {
            if !out.contains(&d.user.as_str()) {
                out.push(&d.user);
            }
        }
        out
    }

    /// The cumulative disclosed set of one user up to and including `time`:
    /// the intersection of the individual disclosures (Section 3.3 —
    /// acquiring `B₁` then `B₂` equals acquiring `B₁ ∩ B₂`).
    pub fn cumulative_disclosure(&self, user: &str, up_to: u64) -> WorldSet {
        let mut acc = self.schema.cube().full_set();
        for (d, _) in &self.entries {
            if d.user == user && d.time <= up_to {
                acc.intersect_with(&d.disclosed_set(&self.schema));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse;
    use crate::schema::{RecordId, Schema};

    fn setup() -> (Schema, AuditLog) {
        let schema = Schema::from_names(&["hiv_pos", "transfusions"]).unwrap();
        let log = AuditLog::new(schema.clone());
        (schema, log)
    }

    #[test]
    fn truthful_answers_recorded() {
        let (schema, mut log) = setup();
        let db = DatabaseState::from_present([RecordId(0)]); // HIV+, no transfusions
        let q = parse("hiv_pos -> transfusions", &schema).unwrap();
        let d = log.record("alice", 1, q, db).unwrap();
        assert!(
            !d.answer,
            "HIV+ without transfusions falsifies the implication"
        );
        // Disclosed set is the complement of the query set.
        let set = d.disclosed_set(&schema).clone();
        assert_eq!(set, WorldSet::from_indices(4, [1])); // only world 01 (hiv, no transf)
    }

    #[test]
    fn chronology_enforced() {
        let (schema, mut log) = setup();
        let db = DatabaseState::from_mask(0);
        let q = parse("hiv_pos", &schema).unwrap();
        log.record("alice", 5, q.clone(), db).unwrap();
        assert!(matches!(
            log.record("bob", 3, q.clone(), db),
            Err(LogError::OutOfOrder { time: 3, last: 5 })
        ));
        // Equal timestamps are fine.
        assert!(log.record("bob", 5, q, db).is_ok());
    }

    #[test]
    fn cumulative_disclosure_is_intersection() {
        let (schema, mut log) = setup();
        let db = DatabaseState::from_present([RecordId(0), RecordId(1)]);
        log.record(
            "alice",
            1,
            parse("hiv_pos | transfusions", &schema).unwrap(),
            db,
        )
        .unwrap();
        log.record("alice", 2, parse("transfusions", &schema).unwrap(), db)
            .unwrap();
        log.record("mallory", 3, parse("hiv_pos", &schema).unwrap(), db)
            .unwrap();
        // Alice knows: (hiv|transf) ∩ transf = {01?...}: worlds with bit1.
        let alice = log.cumulative_disclosure("alice", 10);
        assert_eq!(alice, WorldSet::from_indices(4, [2, 3]));
        // Before time 2 only the first disclosure counts.
        let alice_early = log.cumulative_disclosure("alice", 1);
        assert_eq!(alice_early, WorldSet::from_indices(4, [1, 2, 3]));
        // Unknown user: vacuous knowledge.
        assert!(log.cumulative_disclosure("nobody", 10).is_full());
        assert_eq!(log.users(), vec!["alice", "mallory"]);
    }

    #[test]
    fn evolving_database_states() {
        // The intro's timeline: Bob contracts HIV between disclosures.
        let (schema, mut log) = setup();
        let before = DatabaseState::from_mask(0);
        let after = before.with(RecordId(0));
        let q = parse("hiv_pos", &schema).unwrap();
        let d1 = log.record("alice", 2005, q.clone(), before).unwrap();
        assert!(!d1.answer);
        let d2 = log.record("mallory", 2007, q, after).unwrap();
        assert!(d2.answer);
    }
}
