//! Online (proactive) auditing — the paper's stated future-work direction.
//!
//! In the proactive scenario (Section 1) the database system must decide,
//! *before* seeing how the world evolves, whether to answer or deny each
//! query; and "the denial, when it occurs, is also an 'answer' to some
//! (implicit) query that depends on the auditor's privacy enforcement
//! strategy". The conclusion names this the open extension: "apply the new
//! frameworks to online (proactive) auditing, which will require the
//! modeling of a user's knowledge about the auditor's query-answering
//! strategy".
//!
//! This module implements that modeling for deterministic strategies over
//! finite worlds: a [`Strategy`] maps (database state, query) to an
//! [`Observation`] (`True`, `False`, or `Deny`); a strategy-aware user who
//! receives observation `o` learns the *pre-image set*
//! `S_o = {ω : strategy(ω, q) = o}` — not the query's answer set. Privacy
//! of `A` against the strategy demands that no reachable observation's
//! pre-image gives a confidence gain. The intro's Bob example falls out as
//! a theorem of the implementation: the strategy "truthfully report
//! HIV-negative, deny otherwise" is breached by the denial, while
//! "always deny" and "always answer only safe queries" are not.

use crate::query::Query;
use crate::schema::Schema;
use epi_core::{unrestricted, WorldId, WorldSet};
use std::fmt;

/// What the user observes when issuing a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Observation {
    /// The system answered "true".
    True,
    /// The system answered "false".
    False,
    /// The system refused to answer.
    Deny,
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::True => write!(f, "true"),
            Observation::False => write!(f, "false"),
            Observation::Deny => write!(f, "deny"),
        }
    }
}

/// A deterministic query-answering strategy. The strategy is public: users
/// are assumed to know it and condition on it (the implicit-query effect).
pub trait Strategy {
    /// The observation produced in world `world` for `query`.
    fn respond(&self, schema: &Schema, world: u32, query: &Query) -> Observation;

    /// Short name for reports.
    fn name(&self) -> &str;
}

/// Always answer truthfully.
pub struct AlwaysAnswer;

impl Strategy for AlwaysAnswer {
    fn respond(&self, _schema: &Schema, world: u32, query: &Query) -> Observation {
        if query.eval(world) {
            Observation::True
        } else {
            Observation::False
        }
    }
    fn name(&self) -> &str {
        "always-answer"
    }
}

/// Always deny — the intro's "safest bet for Bob".
pub struct AlwaysDeny;

impl Strategy for AlwaysDeny {
    fn respond(&self, _schema: &Schema, _world: u32, _query: &Query) -> Observation {
        Observation::Deny
    }
    fn name(&self) -> &str {
        "always-deny"
    }
}

/// The intro's flawed strategy: answer truthfully while the sensitive
/// property is false, deny once it becomes true ("I am HIV-negative as
/// long as it is true").
pub struct DenyWhenSensitive {
    /// The sensitive property that triggers denial.
    pub sensitive: Query,
}

impl Strategy for DenyWhenSensitive {
    fn respond(&self, _schema: &Schema, world: u32, query: &Query) -> Observation {
        if self.sensitive.eval(world) {
            Observation::Deny
        } else if query.eval(world) {
            Observation::True
        } else {
            Observation::False
        }
    }
    fn name(&self) -> &str {
        "deny-when-sensitive"
    }
}

/// A simulatable-style strategy: deny iff answering could breach under the
/// *unconditional* test (Theorem 3.11) — crucially deciding from the
/// query alone (both possible answer sets), never from the actual data, so
/// the denial itself carries no information about the world.
pub struct DataIndependentDeny {
    /// The audited property the strategy protects.
    pub audited: Query,
}

impl DataIndependentDeny {
    fn would_deny(&self, schema: &Schema, query: &Query) -> bool {
        let a = self.audited.compile(schema);
        let q = query.compile(schema);
        // Deny unless BOTH possible answers are unconditionally safe.
        !(unrestricted::safe_unrestricted(&a, &q)
            && unrestricted::safe_unrestricted(&a, &q.complement()))
    }
}

impl Strategy for DataIndependentDeny {
    fn respond(&self, schema: &Schema, world: u32, query: &Query) -> Observation {
        if self.would_deny(schema, query) {
            Observation::Deny
        } else if query.eval(world) {
            Observation::True
        } else {
            Observation::False
        }
    }
    fn name(&self) -> &str {
        "data-independent-deny"
    }
}

/// The pre-image sets of a strategy for one query: what a strategy-aware
/// user learns from each observation.
pub fn observation_preimages(
    schema: &Schema,
    strategy: &dyn Strategy,
    query: &Query,
) -> Vec<(Observation, WorldSet)> {
    let cube = schema.cube();
    [Observation::True, Observation::False, Observation::Deny]
        .into_iter()
        .map(|o| {
            let set = cube.set_from_predicate(|w| strategy.respond(schema, w, query) == o);
            (o, set)
        })
        .filter(|(_, s)| !s.is_empty())
        .collect()
}

/// A proactive breach: an observation whose pre-image could raise a user's
/// confidence in the audited property.
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineBreach {
    /// The breaching observation.
    pub observation: Observation,
    /// Its pre-image (the implicit disclosed set).
    pub implicit_disclosure: WorldSet,
    /// A world where the breach occurs.
    pub world: WorldId,
}

/// Audits a strategy against an audit query for one user query, under
/// unrestricted priors: every reachable observation `o` with a world
/// `ω ∈ A ∩ S_o` must have `Safe(A, S_o)`. (Only observations made while
/// `A` is true are protected, as in the offline model.)
pub fn audit_strategy(
    schema: &Schema,
    strategy: &dyn Strategy,
    audited: &Query,
    query: &Query,
) -> Result<(), OnlineBreach> {
    let a = audited.compile(schema);
    for (o, pre) in observation_preimages(schema, strategy, query) {
        let protected = a.intersection(&pre);
        if protected.is_empty() {
            continue; // A false whenever this observation occurs
        }
        if !unrestricted::safe_unrestricted(&a, &pre) {
            return Err(OnlineBreach {
                observation: o,
                world: protected.first().expect("non-empty"),
                implicit_disclosure: pre,
            });
        }
    }
    Ok(())
}

/// Audits a strategy against every query in a workload; returns the
/// breaching queries with their breaches.
pub fn audit_strategy_workload<'q>(
    schema: &Schema,
    strategy: &dyn Strategy,
    audited: &Query,
    queries: &'q [Query],
) -> Vec<(&'q Query, OnlineBreach)> {
    queries
        .iter()
        .filter_map(|q| {
            audit_strategy(schema, strategy, audited, q)
                .err()
                .map(|b| (q, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse;

    fn schema() -> Schema {
        Schema::from_names(&["hiv_pos", "transfusions"]).unwrap()
    }

    /// The intro's argument, executable: Bob's "answer while negative"
    /// strategy is breached by the denial, which reveals `hiv_pos`.
    #[test]
    fn intro_deny_when_sensitive_breaches() {
        let s = schema();
        let audited = parse("hiv_pos", &s).unwrap();
        let strategy = DenyWhenSensitive {
            sensitive: audited.clone(),
        };
        let query = parse("hiv_pos", &s).unwrap();
        let breach = audit_strategy(&s, &strategy, &audited, &query).unwrap_err();
        assert_eq!(breach.observation, Observation::Deny);
        // The denial's pre-image is exactly the sensitive set.
        assert_eq!(breach.implicit_disclosure, audited.compile(&s));
    }

    /// "The safest bet for Bob is to always refuse an answer."
    #[test]
    fn always_deny_is_safe() {
        let s = schema();
        let audited = parse("hiv_pos", &s).unwrap();
        for q in ["hiv_pos", "transfusions", "hiv_pos -> transfusions"] {
            let query = parse(q, &s).unwrap();
            assert!(
                audit_strategy(&s, &AlwaysDeny, &audited, &query).is_ok(),
                "always-deny must be safe for {q}"
            );
        }
    }

    /// Truthfully answering the sensitive query itself breaches — and so
    /// does proactively answering the §1.1 implication, through its FALSE
    /// branch. This is exactly footnote 2 of the paper: the offline
    /// disclosure of `B = true` is safe, but "if Bob proactively tells
    /// Alice 'If I am HIV-positive, then I had blood transfusions', a
    /// privacy breach of A may occur" — the strategy's false-answer
    /// pre-image is `hiv ∧ ¬transfusions ⊆ A`.
    #[test]
    fn always_answer_breaches_direct_query() {
        let s = schema();
        let audited = parse("hiv_pos", &s).unwrap();
        let breach = audit_strategy(&s, &AlwaysAnswer, &audited, &audited).unwrap_err();
        assert_eq!(breach.observation, Observation::True);
        // Footnote 2, executable:
        let implication = parse("hiv_pos -> transfusions", &s).unwrap();
        let breach = audit_strategy(&s, &AlwaysAnswer, &audited, &implication).unwrap_err();
        assert_eq!(breach.observation, Observation::False);
        assert!(breach.implicit_disclosure.is_subset(&audited.compile(&s)));
    }

    /// The data-independent denial strategy never leaks through denials:
    /// the pre-image of Deny is either ∅ or all of Ω.
    #[test]
    fn data_independent_denials_are_uninformative() {
        let s = schema();
        let audited = parse("hiv_pos", &s).unwrap();
        let strategy = DataIndependentDeny {
            audited: audited.clone(),
        };
        let queries = [
            "hiv_pos",
            "transfusions",
            "hiv_pos -> transfusions",
            "hiv_pos & transfusions",
            "!hiv_pos | transfusions",
            "true",
        ];
        for q in queries {
            let query = parse(q, &s).unwrap();
            for (o, pre) in observation_preimages(&s, &strategy, &query) {
                if o == Observation::Deny {
                    assert!(
                        pre.is_full(),
                        "a non-trivial denial pre-image would leak: {q}"
                    );
                }
            }
            assert!(
                audit_strategy(&s, &strategy, &audited, &query).is_ok(),
                "data-independent strategy must be safe for {q}"
            );
        }
    }

    /// Workload-level audit collects exactly the breaching queries.
    #[test]
    fn workload_audit_collects_breaches() {
        let s = schema();
        let audited = parse("hiv_pos", &s).unwrap();
        let queries: Vec<Query> = ["hiv_pos", "hiv_pos -> transfusions", "transfusions"]
            .iter()
            .map(|q| parse(q, &s).unwrap())
            .collect();
        let breaches = audit_strategy_workload(&s, &AlwaysAnswer, &audited, &queries);
        let breached: Vec<String> = breaches
            .iter()
            .map(|(q, _)| q.display(&s).to_string())
            .collect();
        // Under always-answer EVERY one of these queries breaches
        // proactively: the direct query via "true"; the implication via
        // its "false" branch (footnote 2); `transfusions` under correlated
        // priors (Thm 3.11).
        assert_eq!(breached.len(), 3);
    }

    /// Pre-images partition Ω for every strategy/query.
    #[test]
    fn preimages_partition() {
        let s = schema();
        let query = parse("hiv_pos & transfusions", &s).unwrap();
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(AlwaysAnswer),
            Box::new(AlwaysDeny),
            Box::new(DenyWhenSensitive {
                sensitive: parse("hiv_pos", &s).unwrap(),
            }),
        ];
        for strategy in &strategies {
            let pres = observation_preimages(&s, strategy.as_ref(), &query);
            let total: usize = pres.iter().map(|(_, p)| p.len()).sum();
            assert_eq!(total, 4, "{}", strategy.name());
        }
    }
}
