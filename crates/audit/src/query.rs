//! The Boolean query language over record-presence atoms.
//!
//! Queries are the `A` and `B` of the paper: Boolean properties of the
//! database. Each query compiles to the set of worlds satisfying it; the
//! §1.1 example query "if Bob is HIV-positive then he had blood
//! transfusions" is `hiv_pos -> transfusions`.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! query   ::= implies
//! implies ::= or ( "->" implies )?          (right associative)
//! or      ::= and ( "|" and )*
//! and     ::= unary ( "&" unary )*
//! unary   ::= "!" unary | "(" query ")" | "true" | "false" | IDENT
//! ```

use crate::schema::{RecordId, Schema};
use epi_core::WorldSet;
use std::fmt;

/// A Boolean query over record presence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Query {
    /// The constant query.
    Const(bool),
    /// "record is present in the database".
    Present(RecordId),
    /// Negation.
    Not(Box<Query>),
    /// Conjunction.
    And(Box<Query>, Box<Query>),
    /// Disjunction.
    Or(Box<Query>, Box<Query>),
    /// Implication (`p -> q` ≡ `!p | q`), kept as a node so audit reports
    /// can render queries the way users wrote them.
    Implies(Box<Query>, Box<Query>),
}

impl Query {
    /// Atom constructor.
    pub fn present(id: RecordId) -> Query {
        Query::Present(id)
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)] // constructor family: Query::not(q) mirrors and/or/implies
    pub fn not(q: Query) -> Query {
        Query::Not(Box::new(q))
    }

    /// Conjunction helper.
    pub fn and(a: Query, b: Query) -> Query {
        Query::And(Box::new(a), Box::new(b))
    }

    /// Disjunction helper.
    pub fn or(a: Query, b: Query) -> Query {
        Query::Or(Box::new(a), Box::new(b))
    }

    /// Implication helper.
    pub fn implies(a: Query, b: Query) -> Query {
        Query::Implies(Box::new(a), Box::new(b))
    }

    /// Evaluates the query on a presence bitmask.
    pub fn eval(&self, world: u32) -> bool {
        match self {
            Query::Const(b) => *b,
            Query::Present(id) => world >> id.0 & 1 == 1,
            Query::Not(q) => !q.eval(world),
            Query::And(a, b) => a.eval(world) && b.eval(world),
            Query::Or(a, b) => a.eval(world) || b.eval(world),
            Query::Implies(a, b) => !a.eval(world) || b.eval(world),
        }
    }

    /// Compiles to the set of satisfying worlds over the schema's cube.
    pub fn compile(&self, schema: &Schema) -> WorldSet {
        schema.cube().set_from_predicate(|w| self.eval(w))
    }

    /// Semantic monotonicity: `true` iff the compiled set is an up-set
    /// (the "positive facts" of Remark 5.6).
    pub fn is_monotone(&self, schema: &Schema) -> bool {
        let cube = schema.cube();
        cube.is_up_set(&self.compile(schema))
    }

    /// The record ids mentioned by the query.
    pub fn atoms(&self) -> Vec<RecordId> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms(&self, out: &mut Vec<RecordId>) {
        match self {
            Query::Const(_) => {}
            Query::Present(id) => out.push(*id),
            Query::Not(q) => q.collect_atoms(out),
            Query::And(a, b) | Query::Or(a, b) | Query::Implies(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// Renders with the schema's record names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            schema,
        }
    }
}

/// Pretty-printer bound to a schema.
pub struct QueryDisplay<'a> {
    query: &'a Query,
    schema: &'a Schema,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(q: &Query, schema: &Schema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match q {
                Query::Const(b) => write!(f, "{b}"),
                Query::Present(id) => write!(f, "{}", schema.record(*id).name),
                Query::Not(inner) => {
                    write!(f, "!")?;
                    paren(inner, schema, f)
                }
                Query::And(a, b) => {
                    paren(a, schema, f)?;
                    write!(f, " & ")?;
                    paren(b, schema, f)
                }
                Query::Or(a, b) => {
                    paren(a, schema, f)?;
                    write!(f, " | ")?;
                    paren(b, schema, f)
                }
                Query::Implies(a, b) => {
                    paren(a, schema, f)?;
                    write!(f, " -> ")?;
                    paren(b, schema, f)
                }
            }
        }
        fn paren(q: &Query, schema: &Schema, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match q {
                Query::Const(_) | Query::Present(_) | Query::Not(_) => go(q, schema, f),
                _ => {
                    write!(f, "(")?;
                    go(q, schema, f)?;
                    write!(f, ")")
                }
            }
        }
        go(self.query, self.schema, f)
    }
}

/// Query parse errors, with byte offsets into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the query language (see module docs for the grammar) against a
/// schema.
pub fn parse(input: &str, schema: &Schema) -> Result<Query, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        schema,
    };
    let q = p.implies()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(q)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    schema: &'a Schema,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn implies(&mut self) -> Result<Query, ParseError> {
        let lhs = self.or()?;
        if self.eat("->") {
            let rhs = self.implies()?; // right associative
            Ok(Query::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Query, ParseError> {
        let mut q = self.and()?;
        while self.eat("|") {
            let rhs = self.and()?;
            q = Query::or(q, rhs);
        }
        Ok(q)
    }

    fn and(&mut self) -> Result<Query, ParseError> {
        let mut q = self.unary()?;
        while self.eat("&") {
            let rhs = self.unary()?;
            q = Query::and(q, rhs);
        }
        Ok(q)
    }

    fn unary(&mut self) -> Result<Query, ParseError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(Query::not(self.unary()?));
        }
        if self.eat("(") {
            let q = self.implies()?;
            if !self.eat(")") {
                return Err(self.error("expected ')'"));
            }
            return Ok(q);
        }
        // Identifier.
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a record name, 'true', 'false', '!' or '('"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
        match name {
            "true" => Ok(Query::Const(true)),
            "false" => Ok(Query::Const(false)),
            _ => self
                .schema
                .record_id(name)
                .map(Query::Present)
                .ok_or_else(|| ParseError {
                    message: format!("unknown record {name:?}"),
                    offset: start,
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::from_names(&["hiv_pos", "transfusions", "diabetic"]).unwrap()
    }

    #[test]
    fn parse_and_eval_basic() {
        let s = schema();
        let q = parse("hiv_pos -> transfusions", &s).unwrap();
        // world bits: 0 = hiv, 1 = transfusions, 2 = diabetic.
        assert!(q.eval(0b000));
        assert!(q.eval(0b010));
        assert!(!q.eval(0b001));
        assert!(q.eval(0b011));
    }

    #[test]
    fn parse_precedence() {
        let s = schema();
        // & binds tighter than |, which binds tighter than ->.
        let q = parse("hiv_pos | transfusions & diabetic -> hiv_pos", &s).unwrap();
        match q {
            Query::Implies(lhs, _) => match *lhs {
                Query::Or(_, rhs) => assert!(matches!(*rhs, Query::And(_, _))),
                other => panic!("expected Or on the left, got {other:?}"),
            },
            other => panic!("expected Implies at top, got {other:?}"),
        }
        // -> is right associative.
        let q = parse("hiv_pos -> transfusions -> diabetic", &s).unwrap();
        match q {
            Query::Implies(_, rhs) => assert!(matches!(*rhs, Query::Implies(_, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        let s = schema();
        assert!(parse("unknown_rec", &s).is_err());
        assert!(parse("hiv_pos &", &s).is_err());
        assert!(parse("(hiv_pos", &s).is_err());
        assert!(parse("hiv_pos extra", &s).is_err());
        assert!(parse("", &s).is_err());
    }

    #[test]
    fn compile_matches_eval() {
        let s = schema();
        let q = parse("!(hiv_pos & !transfusions) | diabetic", &s).unwrap();
        let set = q.compile(&s);
        for w in 0..8u32 {
            assert_eq!(set.contains(epi_core::WorldId(w)), q.eval(w));
        }
    }

    #[test]
    fn monotonicity_detection() {
        let s = schema();
        assert!(parse("hiv_pos & transfusions", &s).unwrap().is_monotone(&s));
        assert!(parse("hiv_pos | diabetic", &s).unwrap().is_monotone(&s));
        assert!(!parse("!hiv_pos", &s).unwrap().is_monotone(&s));
        assert!(!parse("hiv_pos -> transfusions", &s)
            .unwrap()
            .is_monotone(&s));
        assert!(parse("true", &s).unwrap().is_monotone(&s));
    }

    #[test]
    fn atoms_and_display() {
        let s = schema();
        let q = parse("diabetic -> hiv_pos & diabetic", &s).unwrap();
        assert_eq!(q.atoms(), vec![RecordId(0), RecordId(2)]);
        let rendered = q.display(&s).to_string();
        assert_eq!(rendered, "diabetic -> (hiv_pos & diabetic)");
        // Round-trip.
        let q2 = parse(&rendered, &s).unwrap();
        for w in 0..8u32 {
            assert_eq!(q.eval(w), q2.eval(w));
        }
    }

    fn arb_query(depth: u32) -> BoxedStrategy<Query> {
        let leaf = prop_oneof![
            (0u32..3).prop_map(|i| Query::Present(RecordId(i))),
            any::<bool>().prop_map(Query::Const),
        ];
        leaf.prop_recursive(depth, 32, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(Query::not),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Query::and(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Query::or(a, b)),
                (inner.clone(), inner).prop_map(|(a, b)| Query::implies(a, b)),
            ]
        })
        .boxed()
    }

    proptest! {
        /// Display → parse round-trips semantically.
        #[test]
        fn prop_display_parse_roundtrip(q in arb_query(4)) {
            let s = schema();
            let rendered = q.display(&s).to_string();
            let q2 = parse(&rendered, &s).unwrap();
            for w in 0..8u32 {
                prop_assert_eq!(q.eval(w), q2.eval(w));
            }
        }

        /// Compilation respects the Boolean algebra.
        #[test]
        fn prop_compile_homomorphic(a in arb_query(3), b in arb_query(3)) {
            let s = schema();
            let sa = a.compile(&s);
            let sb = b.compile(&s);
            prop_assert_eq!(Query::and(a.clone(), b.clone()).compile(&s), sa.intersection(&sb));
            prop_assert_eq!(Query::or(a.clone(), b.clone()).compile(&s), sa.union(&sb));
            prop_assert_eq!(Query::not(a.clone()).compile(&s), sa.complement());
            prop_assert_eq!(
                Query::implies(a, b).compile(&s),
                sa.complement().union(&sb)
            );
        }
    }
}
