//! Records, schemas and database states.
//!
//! Following the paper's setting, a database is a subset of a universe of
//! *records*; the auditor fixes the set of records relevant to an audit
//! (the paper notes in Section 6 that after PROJECT/SELECT the "number `N`
//! of possible relevant worlds could be very small"), and the possible
//! worlds are the `2ⁿ` presence patterns over those `n` records.

use epi_boolean::Cube;
use std::fmt;

/// Identifier of a record within a schema (index into the record list).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RecordId(pub u32);

/// A record under audit: an atomic fact whose presence in the database is
/// the unit of disclosure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// Short unique name, usable in the query language (e.g. `hiv_pos`).
    pub name: String,
    /// Human-readable description for audit reports.
    pub description: String,
}

/// The set of records relevant to one audit, fixing `Ω = {0,1}ⁿ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    records: Vec<Record>,
}

impl Schema {
    /// Builds a schema from records; names must be unique, non-empty,
    /// and start with a letter (so the query parser can reference them).
    pub fn new(records: Vec<Record>) -> Result<Schema, SchemaError> {
        if records.is_empty() || records.len() > epi_boolean::cube::MAX_DIMS {
            return Err(SchemaError::BadSize(records.len()));
        }
        for (i, r) in records.iter().enumerate() {
            let mut chars = r.name.chars();
            let head_ok = chars
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
            if !head_ok
                || !r
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                return Err(SchemaError::BadName(r.name.clone()));
            }
            if records[..i].iter().any(|other| other.name == r.name) {
                return Err(SchemaError::DuplicateName(r.name.clone()));
            }
        }
        Ok(Schema { records })
    }

    /// Convenience: a schema of records named after the given strings.
    pub fn from_names<S: Into<String> + Clone>(names: &[S]) -> Result<Schema, SchemaError> {
        Schema::new(
            names
                .iter()
                .map(|n| Record {
                    name: n.clone().into(),
                    description: String::new(),
                })
                .collect(),
        )
    }

    /// Number of records `n`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff the schema has no records (not constructible).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The Boolean cube `{0,1}ⁿ` of presence patterns.
    pub fn cube(&self) -> Cube {
        Cube::new(self.records.len())
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Looks a record up by name.
    pub fn record_id(&self, name: &str) -> Option<RecordId> {
        self.records
            .iter()
            .position(|r| r.name == name)
            .map(|i| RecordId(i as u32))
    }

    /// The record behind an id.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.0 as usize]
    }
}

/// A database state: which relevant records are present.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DatabaseState {
    mask: u32,
}

impl DatabaseState {
    /// State from a presence bitmask (bit `i` = record `i` present).
    pub fn from_mask(mask: u32) -> DatabaseState {
        DatabaseState { mask }
    }

    /// State from the list of present records.
    pub fn from_present(ids: impl IntoIterator<Item = RecordId>) -> DatabaseState {
        DatabaseState {
            mask: ids.into_iter().fold(0, |m, id| m | (1 << id.0)),
        }
    }

    /// The presence bitmask (the world `ω* ∈ {0,1}ⁿ`).
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Whether a record is present.
    pub fn contains(&self, id: RecordId) -> bool {
        self.mask >> id.0 & 1 == 1
    }

    /// State with one record inserted (e.g. Bob contracting HIV in 2006:
    /// the database evolves between disclosures).
    pub fn with(&self, id: RecordId) -> DatabaseState {
        DatabaseState {
            mask: self.mask | (1 << id.0),
        }
    }

    /// State with one record removed.
    pub fn without(&self, id: RecordId) -> DatabaseState {
        DatabaseState {
            mask: self.mask & !(1 << id.0),
        }
    }
}

/// Schema construction errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// No records, or more than the supported maximum.
    BadSize(usize),
    /// A record name is not a valid identifier.
    BadName(String),
    /// Two records share a name.
    DuplicateName(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::BadSize(n) => write!(
                f,
                "schema must have 1..={} records, got {n}",
                epi_boolean::cube::MAX_DIMS
            ),
            SchemaError::BadName(n) => write!(f, "record name {n:?} is not a valid identifier"),
            SchemaError::DuplicateName(n) => write!(f, "duplicate record name {n:?}"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_construction_and_lookup() {
        let s = Schema::from_names(&["hiv_pos", "transfusions"]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.record_id("hiv_pos"), Some(RecordId(0)));
        assert_eq!(s.record_id("transfusions"), Some(RecordId(1)));
        assert_eq!(s.record_id("nope"), None);
        assert_eq!(s.cube().dims(), 2);
    }

    #[test]
    fn schema_validation() {
        assert!(matches!(
            Schema::from_names::<&str>(&[]),
            Err(SchemaError::BadSize(0))
        ));
        assert!(matches!(
            Schema::from_names(&["ok", "ok"]),
            Err(SchemaError::DuplicateName(_))
        ));
        assert!(matches!(
            Schema::from_names(&["1bad"]),
            Err(SchemaError::BadName(_))
        ));
        assert!(matches!(
            Schema::from_names(&["bad name"]),
            Err(SchemaError::BadName(_))
        ));
        assert!(Schema::from_names(&["_ok", "a1"]).is_ok());
    }

    #[test]
    fn database_state_transitions() {
        let db = DatabaseState::from_present([RecordId(1)]);
        assert!(db.contains(RecordId(1)));
        assert!(!db.contains(RecordId(0)));
        let db2 = db.with(RecordId(0));
        assert_eq!(db2.mask(), 0b11);
        assert_eq!(db2.without(RecordId(1)).mask(), 0b01);
        assert_eq!(DatabaseState::from_mask(0b10), db);
    }
}
