//! JSON wire format for audit findings and reports.
//!
//! These encodings are what `epi-service` puts on the socket: a
//! [`ReportEntry`] is one NDJSON decision line, an [`AuditReport`] is the
//! response to a full offline replay. Derivable field-by-field encodings,
//! deterministic key order (insertion order of the underlying
//! [`Json::Obj`](epi_json::Json)), no optional fields.

use crate::auditor::{AuditReport, Decision, EntryKind, Finding, PriorAssumption, ReportEntry};
use epi_core::risk::{f64_to_micros, micros_to_f64};
use epi_json::{field, opt_field, Deserialize, Json, JsonError, Serialize};
use epi_solver::Stage;

impl Serialize for PriorAssumption {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                PriorAssumption::Unrestricted => "unrestricted",
                PriorAssumption::Product => "product",
                PriorAssumption::LogSupermodular => "log_supermodular",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for PriorAssumption {
    fn from_json(v: &Json) -> Result<PriorAssumption, JsonError> {
        match v.as_str() {
            Some("unrestricted") => Ok(PriorAssumption::Unrestricted),
            Some("product") => Ok(PriorAssumption::Product),
            Some("log_supermodular") => Ok(PriorAssumption::LogSupermodular),
            _ => Err(JsonError::decode("unknown prior assumption")),
        }
    }
}

impl Serialize for Finding {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Finding::Safe => "safe",
                Finding::Flagged => "flagged",
                Finding::Inconclusive => "inconclusive",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for Finding {
    fn from_json(v: &Json) -> Result<Finding, JsonError> {
        match v.as_str() {
            Some("safe") => Ok(Finding::Safe),
            Some("flagged") => Ok(Finding::Flagged),
            Some("inconclusive") => Ok(Finding::Inconclusive),
            _ => Err(JsonError::decode("unknown finding")),
        }
    }
}

impl Serialize for EntryKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                EntryKind::Single => "single",
                EntryKind::Cumulative => "cumulative",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for EntryKind {
    fn from_json(v: &Json) -> Result<EntryKind, JsonError> {
        match v.as_str() {
            Some("single") => Ok(EntryKind::Single),
            Some("cumulative") => Ok(EntryKind::Cumulative),
            _ => Err(JsonError::decode("unknown entry kind")),
        }
    }
}

impl Serialize for Decision {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("finding", self.finding.to_json()),
            ("explanation", Json::from(self.explanation.as_str())),
            (
                "stage",
                match self.stage {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            ("boxes_processed", Json::from(self.boxes_processed)),
        ];
        // Emitted only when set so decided lines stay byte-identical to
        // pre-deadline builds.
        if let Some(reason) = self.undecided {
            fields.push(("undecided", reason.to_json()));
        }
        // Zero risk is also the decode default, so it stays off the wire
        // the same way zero box counts predate the counter.
        if self.risk_micros > 0 {
            fields.push((
                "risk",
                Json::from(micros_to_f64(u64::from(self.risk_micros))),
            ));
        }
        Json::obj(fields)
    }
}

impl Deserialize for Decision {
    fn from_json(v: &Json) -> Result<Decision, JsonError> {
        Ok(Decision {
            finding: field(v, "finding")?,
            explanation: field(v, "explanation")?,
            stage: opt_field::<Stage>(v, "stage")?,
            // Absent in decisions recorded before the box counter existed.
            boxes_processed: opt_field(v, "boxes_processed")?.unwrap_or(0),
            undecided: opt_field(v, "undecided")?,
            // Absent in decisions recorded before risk scoring existed.
            risk_micros: opt_field::<f64>(v, "risk")?.map_or(0, |r| f64_to_micros(r) as u32),
        })
    }
}

impl Serialize for ReportEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("user", Json::from(self.user.as_str())),
            ("time", Json::from(self.time)),
            ("kind", self.kind.to_json()),
            ("finding", self.finding.to_json()),
            ("explanation", Json::from(self.explanation.as_str())),
        ];
        // Both members are emitted only when set: entries from pre-risk
        // builds round-trip byte-identically, and `budget_remaining`
        // appears only on service replies with a configured budget cap.
        if let Some(risk) = self.risk_micros {
            fields.push(("risk", Json::from(micros_to_f64(risk))));
        }
        if let Some(remaining) = self.budget_remaining_micros {
            fields.push(("budget_remaining", Json::from(micros_to_f64(remaining))));
        }
        Json::obj(fields)
    }
}

impl Deserialize for ReportEntry {
    fn from_json(v: &Json) -> Result<ReportEntry, JsonError> {
        Ok(ReportEntry {
            user: field(v, "user")?,
            time: field(v, "time")?,
            kind: field(v, "kind")?,
            finding: field(v, "finding")?,
            explanation: field(v, "explanation")?,
            risk_micros: opt_field::<f64>(v, "risk")?.map(f64_to_micros),
            budget_remaining_micros: opt_field::<f64>(v, "budget_remaining")?.map(f64_to_micros),
        })
    }
}

impl Serialize for AuditReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("audit_query", Json::from(self.audit_query.as_str())),
            ("assumption", self.assumption.to_json()),
            ("entries", self.entries.to_json()),
        ])
    }
}

impl Deserialize for AuditReport {
    fn from_json(v: &Json) -> Result<AuditReport, JsonError> {
        Ok(AuditReport {
            audit_query: field(v, "audit_query")?,
            assumption: field(v, "assumption")?,
            entries: field(v, "entries")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> AuditReport {
        AuditReport {
            audit_query: "infected(mallory)".to_owned(),
            assumption: PriorAssumption::Product,
            entries: vec![
                ReportEntry {
                    user: "alice".to_owned(),
                    time: 2005,
                    kind: EntryKind::Single,
                    finding: Finding::Safe,
                    explanation: "criterion: cancellation".to_owned(),
                    risk_micros: Some(250_000),
                    budget_remaining_micros: None,
                },
                ReportEntry {
                    user: "mallory".to_owned(),
                    time: 2007,
                    kind: EntryKind::Cumulative,
                    finding: Finding::Flagged,
                    explanation: "product prior gains 1/4".to_owned(),
                    risk_micros: Some(1_000_000),
                    budget_remaining_micros: Some(333_333),
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_byte_for_byte() {
        let report = sample_report();
        let text = report.to_json().render();
        let back = AuditReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        // Re-render rather than derive PartialEq on the report: the wire
        // contract the service relies on is byte-stability of the encoding.
        assert_eq!(back.to_json().render(), text);
        assert_eq!(back.flagged_users(), vec!["mallory"]);
    }

    #[test]
    fn fieldless_enums_roundtrip() {
        for a in [
            PriorAssumption::Unrestricted,
            PriorAssumption::Product,
            PriorAssumption::LogSupermodular,
        ] {
            let j = Json::parse(&a.to_json().render()).unwrap();
            assert_eq!(PriorAssumption::from_json(&j).unwrap(), a);
        }
        for f in [Finding::Safe, Finding::Flagged, Finding::Inconclusive] {
            let j = Json::parse(&f.to_json().render()).unwrap();
            assert_eq!(Finding::from_json(&j).unwrap(), f);
        }
        for k in [EntryKind::Single, EntryKind::Cumulative] {
            let j = Json::parse(&k.to_json().render()).unwrap();
            assert_eq!(EntryKind::from_json(&j).unwrap(), k);
        }
    }

    #[test]
    fn decision_roundtrips_with_and_without_stage() {
        for d in [
            Decision {
                finding: Finding::Safe,
                explanation: "unconditional".to_owned(),
                stage: Some(Stage::Unconditional),
                boxes_processed: 0,
                undecided: None,
                risk_micros: 500_000,
            },
            Decision {
                finding: Finding::Inconclusive,
                explanation: "no refutation found".to_owned(),
                stage: None,
                boxes_processed: 4096,
                undecided: Some(epi_solver::UndecidedReason::BudgetExhausted),
                risk_micros: 1_000_000,
            },
            Decision {
                finding: Finding::Inconclusive,
                explanation: "deadline exceeded".to_owned(),
                stage: Some(Stage::BranchAndBound),
                boxes_processed: 12,
                undecided: Some(epi_solver::UndecidedReason::DeadlineExceeded),
                risk_micros: 1_000_000,
            },
        ] {
            let j = Json::parse(&d.to_json().render()).unwrap();
            assert_eq!(Decision::from_json(&j).unwrap(), d);
        }
        // Decided lines carry no `undecided` key (byte compatibility).
        let decided = Decision {
            finding: Finding::Safe,
            explanation: "ok".to_owned(),
            stage: None,
            boxes_processed: 0,
            undecided: None,
            risk_micros: 0,
        };
        assert!(!decided.to_json().render().contains("undecided"));
        assert!(
            !decided.to_json().render().contains("risk"),
            "zero risk stays off the wire"
        );
    }

    #[test]
    fn legacy_entries_decode_without_risk_members() {
        let j = Json::parse(
            r#"{"user":"bob","time":3,"kind":"single","finding":"safe","explanation":"ok"}"#,
        )
        .unwrap();
        let e = ReportEntry::from_json(&j).unwrap();
        assert_eq!(e.risk_micros, None);
        assert_eq!(e.budget_remaining_micros, None);
        // And an entry without budget members re-renders without them.
        assert!(!e.to_json().render().contains("risk"));
        assert!(!e.to_json().render().contains("budget_remaining"));
    }

    #[test]
    fn risk_members_round_trip_exactly() {
        let e = ReportEntry {
            user: "carol".to_owned(),
            time: 11,
            kind: EntryKind::Single,
            finding: Finding::Safe,
            explanation: "ok".to_owned(),
            risk_micros: Some(333_333),
            budget_remaining_micros: Some(666_667),
        };
        let text = e.to_json().render();
        let back = ReportEntry::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e, "micro-unit scores survive the f64 wire");
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn missing_fields_are_rejected() {
        let j = Json::parse(r#"{"user":"bob","time":1}"#).unwrap();
        assert!(ReportEntry::from_json(&j).is_err());
    }
}
