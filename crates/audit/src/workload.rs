//! Workload generators for the auditing experiments (E1, E12): random
//! schemas, random query mixes shaped like real SELECT/implication
//! workloads, and random disclosure logs.

use crate::log::AuditLog;
use crate::query::Query;
use crate::schema::{DatabaseState, RecordId, Schema};
use rand::Rng;

/// Parameters of a random audit-log workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Number of records in the schema.
    pub records: usize,
    /// Number of users issuing queries.
    pub users: usize,
    /// Number of disclosures in the log.
    pub disclosures: usize,
    /// Probability that each record is present in the initial database.
    pub record_density: f64,
    /// Probability that the database state mutates between disclosures.
    pub churn: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            records: 4,
            users: 3,
            disclosures: 12,
            record_density: 0.5,
            churn: 0.1,
        }
    }
}

/// A generated workload: schema, final database state, and log.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The schema.
    pub schema: Schema,
    /// The log of truthful answered queries.
    pub log: AuditLog,
    /// The database state after the last disclosure.
    pub final_state: DatabaseState,
}

/// A random query in the shapes users actually issue: atoms, conjunctions,
/// disjunctions, implications and their negations.
pub fn random_query(schema: &Schema, rng: &mut impl Rng) -> Query {
    let n = schema.len() as u32;
    let atom = |rng: &mut dyn rand::RngCore| Query::Present(RecordId(rng.gen_range(0..n)));
    match rng.gen_range(0..6) {
        0 => atom(rng),
        1 => Query::not(atom(rng)),
        2 => Query::and(atom(rng), atom(rng)),
        3 => Query::or(atom(rng), atom(rng)),
        4 => Query::implies(atom(rng), atom(rng)),
        _ => Query::and(Query::or(atom(rng), atom(rng)), Query::not(atom(rng))),
    }
}

/// Generates a full random workload.
pub fn random_workload(params: WorkloadParams, rng: &mut impl Rng) -> Workload {
    let names: Vec<String> = (0..params.records).map(|i| format!("r{i}")).collect();
    let schema = Schema::from_names(&names).expect("generated names are valid");
    let mut log = AuditLog::new(schema.clone());
    let mut state = DatabaseState::from_mask(
        (0..params.records)
            .filter(|_| rng.gen::<f64>() < params.record_density)
            .fold(0u32, |m, i| m | (1 << i)),
    );
    for t in 0..params.disclosures {
        if rng.gen::<f64>() < params.churn {
            let rec = RecordId(rng.gen_range(0..params.records as u32));
            state = if state.contains(rec) {
                state.without(rec)
            } else {
                state.with(rec)
            };
        }
        let user = format!("user{}", rng.gen_range(0..params.users));
        let query = random_query(&schema, rng);
        log.record(user, t as u64, query, state)
            .expect("monotone timestamps");
    }
    Workload {
        schema,
        log,
        final_state: state,
    }
}

/// The hospital scenario of the paper's introduction and Section 1.1,
/// returned as a ready-to-audit workload: records `hiv_pos` and
/// `transfusions`; Alice and Cindy query Bob's status in 2005 (healthy),
/// Mallory in 2007 (infected); Dave receives the §1.1 implication
/// disclosure in 2008.
pub fn hospital_scenario() -> Workload {
    let schema = Schema::new(vec![
        crate::schema::Record {
            name: "hiv_pos".into(),
            description: "Bob is HIV-positive".into(),
        },
        crate::schema::Record {
            name: "transfusions".into(),
            description: "Bob had blood transfusions".into(),
        },
    ])
    .expect("valid schema");
    let hiv = Query::Present(RecordId(0));
    let implication = Query::implies(Query::Present(RecordId(0)), Query::Present(RecordId(1)));
    let healthy = DatabaseState::from_mask(0);
    let infected = DatabaseState::from_present([RecordId(0), RecordId(1)]);
    let mut log = AuditLog::new(schema.clone());
    log.record("alice", 2005, hiv.clone(), healthy).unwrap();
    log.record("cindy", 2005, hiv.clone(), healthy).unwrap();
    log.record("mallory", 2007, hiv, infected).unwrap();
    log.record("dave", 2008, implication, infected).unwrap();
    Workload {
        schema,
        log,
        final_state: infected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, Finding, PriorAssumption};
    use crate::query::parse;
    use rand::SeedableRng;

    #[test]
    fn random_workload_is_well_formed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(257);
        let w = random_workload(WorkloadParams::default(), &mut rng);
        assert_eq!(w.log.len(), 12);
        assert!(w.log.users().len() <= 3);
        // All answers truthful by construction: re-evaluate.
        for (d, state) in w.log.entries_with_state() {
            assert_eq!(d.answer, d.query.eval(state.mask()));
        }
    }

    #[test]
    fn hospital_scenario_full_audit() {
        let w = hospital_scenario();
        let audit_query = parse("hiv_pos", &w.schema).unwrap();
        let report = Auditor::new(PriorAssumption::Unrestricted).audit(&w.log, &audit_query);
        // Mallory flagged; Alice, Cindy safe (negative result), Dave safe
        // (the §1.1 implication disclosure).
        assert_eq!(report.flagged_users(), vec!["mallory"]);
        let dave = report.entries.iter().find(|e| e.user == "dave").unwrap();
        assert_eq!(dave.finding, Finding::Safe);
    }

    #[test]
    fn random_audits_never_panic_and_flag_direct_hits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(263);
        for _ in 0..10 {
            let w = random_workload(
                WorkloadParams {
                    records: 3,
                    disclosures: 8,
                    ..Default::default()
                },
                &mut rng,
            );
            let audit_query = parse("r0", &w.schema).unwrap();
            for assumption in [PriorAssumption::Unrestricted, PriorAssumption::Product] {
                let report = Auditor::new(assumption).audit(&w.log, &audit_query);
                assert_eq!(report.entries.is_empty(), w.log.is_empty());
            }
        }
    }
}
