//! E10 — the Theorem 6.2 hard family: Positivstellensatz refutation time
//! on MAX-CUT threshold systems as the graph grows. The superpolynomial
//! growth of this curve is the practical face of the theorem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_sdp::SdpOptions;
use epi_solver::hardness::{maxcut_system, Graph};
use epi_sos::psatz_refute;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_hardness");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    for t in [3usize, 4, 5] {
        let graph = Graph::random(t, 0.6, &mut rng);
        let k = graph.max_cut() + 1; // empty K: refutation exists
        let (ineqs, eqs) = maxcut_system(&graph, k);
        g.bench_with_input(BenchmarkId::new("maxcut_exhaustive", t), &t, |bench, _| {
            bench.iter(|| black_box(&graph).max_cut())
        });
        g.bench_with_input(BenchmarkId::new("psatz_refute_d1", t), &t, |bench, _| {
            bench.iter(|| {
                psatz_refute(
                    black_box(&ineqs),
                    black_box(&eqs),
                    1,
                    2,
                    SdpOptions::default(),
                )
                .is_some()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
