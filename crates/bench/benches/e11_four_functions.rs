//! E11 — the Four Functions Theorem machinery: the pointwise condition
//! (quadratic in `2ⁿ`), log-supermodularity checks, Ising sampling, and
//! the Π_m⁺ criteria built on them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::PairShape;
use epi_boolean::criteria::supermodular;
use epi_boolean::distributions::{is_log_supermodular, IsingModel};
use epi_boolean::four_functions::{pointwise_condition, CubeFn};
use epi_boolean::Cube;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_four_functions");
    for n in [3usize, 4, 5] {
        let cube = Cube::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let p = IsingModel::random(n, 0.8, 1.2, &mut rng).to_distribution();
        let f = CubeFn::new(p.weights().to_vec());
        g.bench_with_input(
            BenchmarkId::new("pointwise_condition", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    pointwise_condition(
                        black_box(&cube),
                        black_box(&f),
                        black_box(&f),
                        black_box(&f),
                        black_box(&f),
                        1e-12,
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("is_log_supermodular", n),
            &n,
            |bench, _| bench.iter(|| is_log_supermodular(black_box(&cube), black_box(&p), 1e-9)),
        );
        g.bench_with_input(
            BenchmarkId::new("ising_to_distribution", n),
            &n,
            |bench, _| {
                let m = IsingModel::random(n, 0.8, 1.2, &mut rng);
                bench.iter(|| black_box(&m).to_distribution())
            },
        );
        let (a, b) = PairShape::MonotoneNo.sample(&cube, &mut rng);
        g.bench_with_input(
            BenchmarkId::new("prop_5_4_sufficient", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    supermodular::sufficient_supermodular(
                        black_box(&cube),
                        black_box(&a),
                        black_box(&b),
                    )
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("prop_5_2_necessary", n), &n, |bench, _| {
            bench.iter(|| {
                supermodular::necessary_supermodular(black_box(&cube), black_box(&a), black_box(&b))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
