//! E12 — end-to-end audit throughput: full audits of random disclosure
//! logs under each prior assumption, and the hospital scenario as the
//! fixed reference point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_audit::auditor::{Auditor, PriorAssumption};
use epi_audit::query::parse;
use epi_audit::workload::{hospital_scenario, random_workload, WorkloadParams};
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_composition");
    g.sample_size(10);

    let scenario = hospital_scenario();
    let hiv = parse("hiv_pos", &scenario.schema).unwrap();
    for assumption in [
        PriorAssumption::Unrestricted,
        PriorAssumption::Product,
        PriorAssumption::LogSupermodular,
    ] {
        g.bench_function(
            BenchmarkId::new("hospital_scenario", format!("{assumption:?}")),
            |bench| {
                let auditor = Auditor::new(assumption);
                bench.iter(|| auditor.audit(black_box(&scenario.log), black_box(&hiv)))
            },
        );
    }

    for records in [3usize, 4, 5] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let w = random_workload(
            WorkloadParams {
                records,
                users: 3,
                disclosures: 12,
                ..Default::default()
            },
            &mut rng,
        );
        let q = parse("r0", &w.schema).unwrap();
        g.bench_with_input(
            BenchmarkId::new("random_log_product_audit", records),
            &records,
            |bench, _| {
                let auditor = Auditor::new(PriorAssumption::Product);
                bench.iter(|| auditor.audit(black_box(&w.log), black_box(&q)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
