//! E13 — auditing-service throughput.
//!
//! Measures the daemon's batched path (8 workers, verdict cache,
//! request coalescing) against a single-threaded baseline that calls the
//! decision procedure once per request with no reuse, on a
//! duplicate-heavy workload: a handful of distinct `(A, B)` decision
//! keys, each requested many times — the shape a real audit service
//! sees, where many users ask variations of the same few questions.
//!
//! Run with `cargo bench -p epi-bench --bench e13_service_throughput`.
//! The acceptance line is the final `speedup:` figure (target ≥ 4x).

use epi_audit::auditor::{Auditor, PriorAssumption};
use epi_audit::query::parse;
use epi_audit::{Query, Schema};
use epi_core::WorldId;
use epi_service::{AuditOutcome, AuditService, LocalClient, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

const WORKERS: usize = 8;
const REPEATS: usize = 40;
/// Database state for every request: all eight records present, so the
/// audited property `r0` is true and nothing is excused by the
/// negative-result gate.
const STATE_MASK: u32 = 0xFF;
const AUDIT_QUERY: &str = "r0";

/// The distinct questions users keep re-asking. Eight records (256
/// worlds) make each pipeline run expensive enough that the decision —
/// not request plumbing — dominates, which is the regime the service's
/// cache and coalescing are built for.
const QUERIES: [&str; 6] = [
    "r0 -> r1",
    "(r1 | r2) & (r4 | r5)",
    "r0 | (r3 & r6)",
    "(r1 | r2) & !r7",
    "(r2 & r4) -> r0",
    "(r1 & r3) | (r5 & r7)",
];

fn schema() -> Schema {
    Schema::from_names(&["r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"]).unwrap()
}

/// One request in the duplicate-heavy stream.
struct Ask {
    user: String,
    time: u64,
    query_text: &'static str,
    query: Query,
}

fn workload(schema: &Schema) -> Vec<Ask> {
    let mut asks = Vec::new();
    let mut time = 0;
    for round in 0..REPEATS {
        for (qi, text) in QUERIES.iter().enumerate() {
            time += 1;
            asks.push(Ask {
                user: format!("user{}", (round + qi) % 7),
                time,
                query_text: text,
                query: parse(text, schema).unwrap(),
            });
        }
    }
    asks
}

/// Baseline: one thread, one full pipeline run per request.
fn run_unbatched(schema: &Schema, asks: &[Ask]) -> (f64, usize) {
    let auditor = Auditor::new(PriorAssumption::Product);
    let cube = schema.cube();
    let audit = parse(AUDIT_QUERY, schema).unwrap().compile(schema);
    let started = Instant::now();
    let mut flagged = 0;
    for ask in asks {
        let q = ask.query.compile(schema);
        let disclosed = if q.contains(WorldId(STATE_MASK)) {
            q
        } else {
            q.complement()
        };
        let decision = auditor.decide_sets(&cube, &audit, &disclosed);
        if decision.finding == epi_audit::Finding::Flagged {
            flagged += 1;
        }
    }
    (started.elapsed().as_secs_f64(), flagged)
}

/// Batched path: the service with `WORKERS` decision threads, cache and
/// coalescing, driven by `WORKERS` client threads splitting the stream.
fn run_service(schema: &Schema, asks: &[Ask]) -> (f64, usize, epi_service::Snapshot) {
    let service = Arc::new(AuditService::new(
        schema.clone(),
        ServiceConfig {
            assumption: PriorAssumption::Product,
            workers: WORKERS,
            ..ServiceConfig::default()
        },
    ));
    let started = Instant::now();
    let threads: Vec<_> = (0..WORKERS)
        .map(|t| {
            let service = Arc::clone(&service);
            let slice: Vec<(String, u64, &'static str)> = asks
                .iter()
                .enumerate()
                .filter(|(i, _)| i % WORKERS == t)
                .map(|(_, a)| (format!("t{t}:{}", a.user), a.time, a.query_text))
                .collect();
            std::thread::spawn(move || {
                let mut client = LocalClient::new(service);
                let mut flagged = 0;
                for (user, time, query) in slice {
                    let outcome = client
                        .disclose(&user, time, query, STATE_MASK, AUDIT_QUERY)
                        .expect("disclose");
                    if let AuditOutcome::Entry(e) = outcome {
                        if e.finding == epi_audit::Finding::Flagged {
                            flagged += 1;
                        }
                    }
                }
                flagged
            })
        })
        .collect();
    let flagged = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    (elapsed, flagged, service.metrics())
}

fn main() {
    let schema = schema();
    let asks = workload(&schema);
    println!(
        "E13: service throughput — {} requests over {} distinct (A, B) keys",
        asks.len(),
        QUERIES.len()
    );

    // Warm both paths once so compilation/allocator effects wash out.
    let _ = run_unbatched(&schema, &asks[..QUERIES.len()]);

    let (base_secs, base_flagged) = run_unbatched(&schema, &asks);
    let base_rps = asks.len() as f64 / base_secs;
    println!(
        "  unbatched 1-thread : {:>10.1} req/s  ({base_secs:.3}s, {base_flagged} flagged)",
        base_rps
    );

    let (svc_secs, svc_flagged, stats) = run_service(&schema, &asks);
    let svc_rps = asks.len() as f64 / svc_secs;
    println!(
        "  service {WORKERS}-worker  : {:>10.1} req/s  ({svc_secs:.3}s, {svc_flagged} flagged)",
        svc_rps
    );
    println!(
        "  cache: {} hits / {} misses / {} coalesced — {} computed of {} decide requests",
        stats.cache_hits,
        stats.cache_misses,
        stats.coalesced,
        stats.computed,
        stats.decide_requests
    );
    assert_eq!(
        base_flagged, svc_flagged,
        "both paths must reach identical findings"
    );

    let speedup = svc_rps / base_rps;
    println!("  speedup: {speedup:.1}x (target >= 4x at {WORKERS} workers)");
}
