//! E14 — the parallel solver engine on the hard family: thread-count
//! sweep in deterministic mode, plus the dense-kernel ablation against
//! the pre-engine sequential baseline (`dense_kernel: false, threads: 1`,
//! i.e. the seed solver's eager `BTreeMap` rational gap assembly).
//!
//! The machine-readable companion is `cargo run --release --bin
//! perf_trajectory`, which times the same instances (including the n ≥ 10
//! construction-bound ones that are too slow for a Criterion sweep) and
//! writes `BENCH_PR2.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::{hard_family, PairShape};
use epi_boolean::Cube;
use epi_solver::{decide_product_safety, ProductSolverOptions};
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_parallel_scaling");
    g.sample_size(10);

    // Box-search-bound: the n=5 Remark 5.12 ⊗ §1.1 tensor.
    let (_, cube, a, b) = hard_family().swap_remove(0);
    let base = ProductSolverOptions {
        max_boxes: 2_000,
        coordinate_ascent: false,
        sos_fallback: false,
        ..Default::default()
    };
    for threads in [1usize, 2, 8] {
        let opts = ProductSolverOptions { threads, ..base };
        g.bench_with_input(
            BenchmarkId::new("r512xhiv_threads", threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    decide_product_safety(black_box(&cube), black_box(&a), black_box(&b), opts)
                })
            },
        );
    }
    g.bench_function(
        BenchmarkId::new("r512xhiv_threads", "legacy_seq"),
        |bench| {
            let opts = ProductSolverOptions {
                dense_kernel: false,
                threads: 1,
                ..base
            };
            bench.iter(|| {
                decide_product_safety(black_box(&cube), black_box(&a), black_box(&b), opts)
            })
        },
    );

    // Construction-bound: a dense monotone-no pair at n=9 (safe by FKG;
    // the baseline pays the exact-rational BTreeMap assembly per solve).
    let cube9 = Cube::new(9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let (a9, b9) = PairShape::MonotoneNo.sample(&cube9, &mut rng);
    let base9 = ProductSolverOptions {
        max_boxes: 512,
        coordinate_ascent: false,
        sos_fallback: false,
        ..Default::default()
    };
    for (tag, opts) in [
        (
            "legacy_seq",
            ProductSolverOptions {
                dense_kernel: false,
                threads: 1,
                ..base9
            },
        ),
        (
            "dense_8t",
            ProductSolverOptions {
                threads: 8,
                ..base9
            },
        ),
    ] {
        g.bench_function(BenchmarkId::new("monotone_no_n9", tag), |bench| {
            bench.iter(|| {
                decide_product_safety(black_box(&cube9), black_box(&a9), black_box(&b9), opts)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
