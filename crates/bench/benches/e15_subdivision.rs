//! E15 — microbenches for the incremental subdivision kernel: the
//! `Interval` ring primitives on the legacy bound path, point evaluation
//! (`Multilinear::eval_f64_with` contraction vs a Bernstein vertex-
//! coefficient lookup, which is free once a box carries its tensor), and
//! the tentpole comparison — de Casteljau halving of a parent Bernstein
//! tensor vs recomputing the child tensor from scratch
//! (`restrict_to_box` + `bernstein_coefficients`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::hard_family;
use epi_num::Interval;
use epi_poly::{indicator, subdivision, Multilinear};
use epi_solver::bernstein::DenseTensor;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_subdivision");

    // Interval ring ops: the inner loop of the legacy interval bound.
    let x = Interval::new(0.125, 0.625);
    let y = Interval::new(0.25, 0.875);
    g.bench_function("interval_add_mul", |b| {
        b.iter(|| {
            let mut acc = Interval::point(0.0);
            for _ in 0..64 {
                acc = acc + black_box(x) * black_box(y);
            }
            acc
        })
    });

    for (name, cube, a, b_set) in hard_family() {
        let n = cube.dims();
        let pow3 = indicator::safety_gap_pow3::<f64>(n, &a, &b_set);
        let tensor = DenseTensor::from_dense_pow3(&pow3);
        let mut bern = tensor.coeffs().to_vec();
        subdivision::pow3_to_bernstein(&mut bern, n);

        // Point evaluation: multilinear contraction at a corner vs the
        // vertex-coefficient lookup the incremental engine gets for free.
        let ml: Multilinear<f64> = Multilinear::from_set(n, &a);
        let corner: Vec<f64> = (0..n).map(|i| f64::from((i % 2) as u8)).collect();
        let mask: u32 = corner
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0.5)
            .map(|(i, _)| 1u32 << i)
            .sum();
        g.bench_with_input(
            BenchmarkId::new("eval_multilinear_contraction", name),
            &n,
            |bench, _| {
                let mut scratch = Vec::new();
                bench.iter(|| ml.eval_f64_with(black_box(&corner), &mut scratch))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("eval_bernstein_vertex_lookup", name),
            &n,
            |bench, _| bench.iter(|| bern[subdivision::vertex_index(n, black_box(mask))]),
        );

        // The tentpole: halving the parent tensor along one axis vs
        // rebuilding both child tensors from the root polynomial.
        let dim = n / 2;
        g.bench_with_input(
            BenchmarkId::new("split_incremental_halving", name),
            &n,
            |bench, _| {
                let mut left = Vec::new();
                let mut right = Vec::new();
                bench.iter(|| {
                    subdivision::split_halves(black_box(&bern), n, dim, &mut left, &mut right);
                    (left[0], right[0])
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("split_recompute_from_root", name),
            &n,
            |bench, _| {
                let mut lo = vec![0.0; n];
                let mut hi = vec![1.0; n];
                bench.iter(|| {
                    hi[dim] = 0.5;
                    let left = tensor
                        .restrict_to_box(black_box(&lo), &hi)
                        .bernstein_coefficients();
                    hi[dim] = 1.0;
                    lo[dim] = 0.5;
                    let right = tensor
                        .restrict_to_box(&lo, black_box(&hi))
                        .bernstein_coefficients();
                    lo[dim] = 0.0;
                    (left[0], right[0])
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
