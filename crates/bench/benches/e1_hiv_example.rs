//! E1 — §1.1 HIV example: latency of each decision route on the paper's
//! headline pair (the auditor's hot path for a single disclosure).

use criterion::{criterion_group, criterion_main, Criterion};
use epi_bench::hiv_pair;
use epi_core::{possibilistic, unrestricted, PossKnowledge};
use epi_solver::{decide_product_pipeline, ProductSolverOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (cube, a, b) = hiv_pair();
    let k = PossKnowledge::unrestricted(cube.size());

    let mut g = c.benchmark_group("e1_hiv_example");
    g.bench_function("theorem_3_11_closed_form", |bench| {
        bench.iter(|| unrestricted::safe_unrestricted(black_box(&a), black_box(&b)))
    });
    g.bench_function("definition_3_1_explicit_k", |bench| {
        bench.iter(|| possibilistic::is_safe(black_box(&k), black_box(&a), black_box(&b)))
    });
    g.bench_function("product_pipeline", |bench| {
        bench.iter(|| {
            decide_product_pipeline(
                black_box(&cube),
                black_box(&a),
                black_box(&b),
                ProductSolverOptions::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
