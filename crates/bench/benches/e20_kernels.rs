//! E20 — Bernstein microkernel sweep: ns/element for the four hot
//! kernels (`coefficient_range`, `widest_derivative_axis`,
//! `midpoint_and_split_axis`, `split_halves`) across tensor sizes and
//! instruction sets. The per-element view makes the kernels comparable
//! across `n` (all four are linear passes over the `3ⁿ` tensor, the
//! probe `n`-linear), and the ISA axis shows what the `simd` feature
//! buys at each size. Without the feature only the scalar rows run —
//! `force_isa` clamps to what the build provides.
//!
//! The tensors are the safety-gap Bernstein coefficients of random
//! nonempty pairs, i.e. exactly the data the solver's wave sweeps see.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_boolean::{generate, Cube};
use epi_poly::{indicator, subdivision};
use rand::SeedableRng;
use std::hint::black_box;

/// Safety-gap Bernstein tensor of a random pair over `{0,1}ⁿ`.
fn gap_tensor(n: usize) -> Vec<f64> {
    let cube = Cube::new(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(20 + n as u64);
    let a = generate::random_nonempty_set(&cube, 0.4, &mut rng);
    let b = generate::random_nonempty_set(&cube, 0.4, &mut rng);
    let pow3 = indicator::safety_gap_pow3::<f64>(n, &a, &b);
    let mut bern = epi_solver::bernstein::DenseTensor::from_dense_pow3(&pow3)
        .coeffs()
        .to_vec();
    subdivision::pow3_to_bernstein(&mut bern, n);
    bern
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e20_kernels");
    for n in [6usize, 9, 10] {
        let bern = gap_tensor(n);
        let len = bern.len();
        for isa in [
            subdivision::Isa::Scalar,
            subdivision::Isa::Sse2,
            subdivision::Isa::Avx2,
        ] {
            if subdivision::force_isa(Some(isa)) != isa {
                continue; // not provided by this build / CPU
            }
            let tag = format!("n{n}_{}", isa.label());
            g.bench_with_input(
                BenchmarkId::new("coefficient_range", &tag),
                &len,
                |bench, _| bench.iter(|| subdivision::coefficient_range(black_box(&bern))),
            );
            g.bench_with_input(
                BenchmarkId::new("widest_derivative_axis", &tag),
                &len,
                |bench, _| bench.iter(|| subdivision::widest_derivative_axis(black_box(&bern), n)),
            );
            g.bench_with_input(
                BenchmarkId::new("midpoint_and_split_axis", &tag),
                &len,
                |bench, _| {
                    let mut scratch = Vec::new();
                    bench.iter(|| {
                        subdivision::midpoint_and_split_axis(black_box(&bern), n, &mut scratch)
                    })
                },
            );
            g.bench_with_input(BenchmarkId::new("split_halves", &tag), &len, |bench, _| {
                let mut left = Vec::new();
                let mut right = Vec::new();
                let axis = n / 2;
                bench.iter(|| {
                    subdivision::split_halves_min(black_box(&bern), n, axis, &mut left, &mut right)
                })
            });
        }
        subdivision::force_isa(None);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
