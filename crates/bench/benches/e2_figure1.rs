//! E2 — Figure 1: the interval machinery on the 14×7 rectangle grid, and
//! the batch-audit payoff of precomputing the safety margin β
//! (Proposition 4.1's "compute the mapping β once, use it to test every
//! Bᵢ").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use epi_core::families::RectangleFamily;
use epi_core::intervals::margin::SafetyMargin;
use epi_core::intervals::minimal::minimal_intervals;
use epi_core::intervals::{safe_via_intervals, IntervalOracle};
use epi_core::WorldSet;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn figure1_not_a(f: &RectangleFamily) -> WorldSet {
    let mut not_a = WorldSet::empty(f.universe_size());
    for (x, y) in [
        (3, 3),
        (4, 2),
        (5, 1),
        (4, 4),
        (5, 3),
        (6, 2),
        (6, 1),
        (5, 4),
        (6, 3),
        (7, 2),
        (7, 1),
        (6, 4),
        (7, 3),
        (8, 2),
        (8, 3),
        (7, 4),
        (8, 4),
        (9, 2),
        (9, 3),
    ] {
        not_a.insert(f.pixel(x, y));
    }
    not_a
}

fn bench(c: &mut Criterion) {
    let f = RectangleFamily::figure1();
    let not_a = figure1_not_a(&f);
    let a = not_a.complement();
    let w1 = f.pixel(1, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let disclosures: Vec<WorldSet> = (0..64)
        .map(|_| WorldSet::from_predicate(f.universe_size(), |_| rng.gen::<f64>() < 0.5))
        .collect();

    let mut g = c.benchmark_group("e2_figure1");
    g.bench_function("interval_query", |bench| {
        bench.iter(|| f.interval(black_box(w1), black_box(f.pixel(8, 2))))
    });
    g.bench_function("minimal_intervals_to_not_a", |bench| {
        bench.iter(|| minimal_intervals(black_box(&f), black_box(w1), black_box(&not_a)))
    });
    g.bench_function("safe_via_intervals_one_disclosure", |bench| {
        bench.iter(|| safe_via_intervals(black_box(&f), black_box(&a), black_box(&disclosures[0])))
    });
    // The batch-audit comparison Proposition 4.1 motivates.
    g.bench_function("batch64_direct", |bench| {
        bench.iter(|| {
            disclosures
                .iter()
                .filter(|b| safe_via_intervals(&f, &a, b))
                .count()
        })
    });
    g.bench_function("batch64_margin_precomputed", |bench| {
        bench.iter_batched(
            || SafetyMargin::compute(&f, &a, true),
            |margin| disclosures.iter().filter(|b| margin.screen(b)).count(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
