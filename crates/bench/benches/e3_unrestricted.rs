//! E3 — Theorem 3.11: the closed-form unconditional test vs the explicit
//! Definition 3.1 evaluation, as the universe grows. The closed form is
//! the pipeline's stage-1 screen; this measures the gap it buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_core::{possibilistic, unrestricted, PossKnowledge, WorldSet};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_unrestricted");
    for n in [4usize, 8, 12] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = WorldSet::from_predicate(n, |_| rng.gen());
        let b = WorldSet::from_predicate(n, |_| rng.gen());
        g.bench_with_input(BenchmarkId::new("closed_form", n), &n, |bench, _| {
            bench.iter(|| unrestricted::safe_unrestricted(black_box(&a), black_box(&b)))
        });
        // The explicit K has n·2^(n−1) pairs; n = 12 is the practical cap.
        let k = PossKnowledge::unrestricted(n);
        g.bench_with_input(BenchmarkId::new("definition_3_1", n), &n, |bench, _| {
            bench.iter(|| possibilistic::is_safe(black_box(&k), black_box(&a), black_box(&b)))
        });
    }
    // Refutation construction cost.
    let n = 64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let a = WorldSet::from_predicate(n, |_| rng.gen());
    let b = WorldSet::from_predicate(n, |_| rng.gen());
    g.bench_function("refute_unrestricted_n64", |bench| {
        bench.iter(|| unrestricted::refute_unrestricted(black_box(&a), black_box(&b)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
