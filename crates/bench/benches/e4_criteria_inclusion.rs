//! E4 — Theorem 5.11: cost of the exhaustive inclusion check, and the
//! per-criterion cost on single pairs as `n` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::PairShape;
use epi_boolean::criteria::{cancellation, miklau_suciu, monotonicity};
use epi_boolean::Cube;
use epi_core::world::all_nonempty_subsets;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_criteria_inclusion");
    // Exhaustive Theorem 5.11 validation at n = 2 (the n = 3 sweep runs in
    // the experiments binary; 65k pairs is too slow for a sampling bench).
    g.bench_function("exhaustive_n2", |bench| {
        let cube = Cube::new(2);
        bench.iter(|| {
            let mut ok = true;
            for a in all_nonempty_subsets(4) {
                for b in all_nonempty_subsets(4) {
                    let ms = miklau_suciu::independent(&cube, &a, &b);
                    let mono = monotonicity::safe_monotone(&cube, &a, &b);
                    if ms || mono {
                        ok &= cancellation::cancellation(&cube, &a, &b);
                    }
                }
            }
            ok
        })
    });
    // Per-criterion single-pair cost.
    for n in [4usize, 6, 8, 10] {
        let cube = Cube::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (a, b) = PairShape::Random.sample(&cube, &mut rng);
        g.bench_with_input(BenchmarkId::new("miklau_suciu", n), &n, |bench, _| {
            bench.iter(|| miklau_suciu::independent(black_box(&cube), black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("monotonicity", n), &n, |bench, _| {
            bench.iter(|| {
                monotonicity::safe_monotone(black_box(&cube), black_box(&a), black_box(&b))
            })
        });
        g.bench_with_input(BenchmarkId::new("cancellation", n), &n, |bench, _| {
            bench
                .iter(|| cancellation::cancellation(black_box(&cube), black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
