//! E5 — Remark 5.12: cost of detecting the cancellation gap and of closing
//! it with the §6 machinery (deficit report, SOS certificate, full
//! pipeline) on the paper's counterexample pair.

use criterion::{criterion_group, criterion_main, Criterion};
use epi_bench::remark_5_12_pair;
use epi_boolean::criteria::cancellation;
use epi_num::Rational;
use epi_poly::indicator;
use epi_solver::{decide_product_safety, ProductSolverOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (cube, a, b) = remark_5_12_pair();
    let gap = indicator::safety_gap_polynomial::<Rational>(3, &a, &b).map_coeffs(|x| x.to_f64());

    let mut g = c.benchmark_group("e5_cancellation_gap");
    g.bench_function("cancellation_criterion", |bench| {
        bench.iter(|| cancellation::cancellation(black_box(&cube), black_box(&a), black_box(&b)))
    });
    g.bench_function("deficit_report", |bench| {
        bench.iter(|| {
            cancellation::cancellation_deficits(black_box(&cube), black_box(&a), black_box(&b))
        })
    });
    g.bench_function("gap_polynomial_construction", |bench| {
        bench.iter(|| indicator::safety_gap_polynomial::<Rational>(3, black_box(&a), black_box(&b)))
    });
    g.sample_size(20);
    g.bench_function("sos_box_certificate", |bench| {
        bench.iter(|| epi_sos::certify_nonneg_on_box(black_box(&gap), 0, Default::default()))
    });
    g.bench_function("full_solver_with_sos_fallback", |bench| {
        bench.iter(|| {
            decide_product_safety(
                black_box(&cube),
                black_box(&a),
                black_box(&b),
                ProductSolverOptions::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
