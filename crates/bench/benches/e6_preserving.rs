//! E6 — K-preservation (Definition 3.9): checking preservation and the
//! composition rule on explicit knowledge sets of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_core::{preserving, PossKnowledge, WorldSet};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_preserving");
    for n in [4usize, 8, 12] {
        let k = PossKnowledge::unrestricted(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let b: WorldSet = WorldSet::from_predicate(n, |_| rng.gen());
        g.bench_with_input(
            BenchmarkId::new("is_preserving_unrestricted", n),
            &n,
            |bench, _| bench.iter(|| preserving::is_preserving_poss(black_box(&k), black_box(&b))),
        );
    }
    // Sequential acquisition over long disclosure chains.
    let n = 256;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let s = WorldSet::full(n);
    let chain: Vec<WorldSet> = (0..64)
        .map(|_| WorldSet::from_predicate(n, |_| rng.gen::<f64>() < 0.9))
        .collect();
    let refs: Vec<&WorldSet> = chain.iter().collect();
    g.bench_function("acquire_sequence_64_disclosures_n256", |bench| {
        bench.iter(|| preserving::acquire_sequence(black_box(&s), black_box(&refs)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
