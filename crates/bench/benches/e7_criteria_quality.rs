//! E7 — criteria throughput on mixed workloads, plus the cancellation
//! ablation: the grouped one-pass `Circ(w)` counting vs the naive `3ⁿ`
//! per-vector scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::PairShape;
use epi_boolean::criteria::{cancellation, necessary, supermodular};
use epi_boolean::Cube;
use epi_core::WorldSet;
use rand::SeedableRng;
use std::hint::black_box;

fn pairs(cube: &Cube, count: usize, seed: u64) -> Vec<(WorldSet, WorldSet)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| PairShape::all()[i % 4].sample(cube, &mut rng))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_criteria_quality");
    for n in [4usize, 6, 8] {
        let cube = Cube::new(n);
        let workload = pairs(&cube, 16, 8);
        g.bench_with_input(
            BenchmarkId::new("cancellation_grouped", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    workload
                        .iter()
                        .filter(|(a, b)| cancellation::cancellation(black_box(&cube), a, b))
                        .count()
                })
            },
        );
        // The naive ablation is 3ⁿ-per-pair; cap it at n = 6.
        if n <= 6 {
            g.bench_with_input(BenchmarkId::new("cancellation_naive", n), &n, |bench, _| {
                bench.iter(|| {
                    workload
                        .iter()
                        .filter(|(a, b)| cancellation::cancellation_naive(black_box(&cube), a, b))
                        .count()
                })
            });
        }
        g.bench_with_input(BenchmarkId::new("box_necessary", n), &n, |bench, _| {
            bench.iter(|| {
                workload
                    .iter()
                    .filter(|(a, b)| necessary::necessary_product(black_box(&cube), a, b))
                    .count()
            })
        });
        g.bench_with_input(
            BenchmarkId::new("supermodular_sufficient", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    workload
                        .iter()
                        .filter(|(a, b)| {
                            supermodular::sufficient_supermodular(black_box(&cube), a, b)
                        })
                        .count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
