//! E8 — the complete product-distribution solver: scaling in `n` and the
//! ablations called out in DESIGN.md (coordinate-ascent warm start,
//! Bernstein vs interval bounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::{remark_5_12_pair, PairShape};
use epi_boolean::Cube;
use epi_core::WorldSet;
use epi_solver::product::BoundMethod;
use epi_solver::{decide_product_safety, ProductSolverOptions};
use rand::SeedableRng;
use std::hint::black_box;

fn workload(cube: &Cube, count: usize) -> Vec<(WorldSet, WorldSet)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    (0..count)
        .map(|i| PairShape::all()[i % 4].sample(cube, &mut rng))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_product_solver");
    g.sample_size(10);
    for n in [3usize, 4, 5, 6] {
        let cube = Cube::new(n);
        let pairs = workload(&cube, 8);
        g.bench_with_input(BenchmarkId::new("pipeline_mixed8", n), &n, |bench, _| {
            bench.iter(|| {
                pairs
                    .iter()
                    .filter(|(a, b)| {
                        decide_product_safety(
                            black_box(&cube),
                            a,
                            b,
                            ProductSolverOptions::default(),
                        )
                        .0
                        .is_safe()
                    })
                    .count()
            })
        });
    }
    // Ablations on the hard safe instance (Remark 5.12).
    let (cube, a, b) = remark_5_12_pair();
    let configs: Vec<(&str, ProductSolverOptions)> = vec![
        ("default", ProductSolverOptions::default()),
        (
            "no_ascent",
            ProductSolverOptions {
                coordinate_ascent: false,
                ..Default::default()
            },
        ),
        (
            "interval_bounds_budget2k",
            ProductSolverOptions {
                bound_method: BoundMethod::Interval,
                max_boxes: 2_000,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in configs {
        g.bench_function(BenchmarkId::new("remark512_ablation", name), |bench| {
            bench.iter(|| {
                decide_product_safety(black_box(&cube), black_box(&a), black_box(&b), opts)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
