//! E9 — the SOS/SDP stack: Gram membership, the box certificate, and the
//! projection-method ablation (Douglas–Rachford vs POCS vs Dykstra).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epi_bench::remark_5_12_pair;
use epi_num::Rational;
use epi_poly::{indicator, Polynomial};
use epi_sdp::{ProjectionMethod, SdpOptions};
use epi_sos::{certify_nonneg_on_box, is_sos, WeightedSosProgram};
use std::hint::black_box;

fn sos_instance(vars: usize) -> Polynomial<f64> {
    // Σᵢ (xᵢ − xᵢ₊₁)² + (x₀·x₁ − 1)² — SOS by construction, growing basis.
    let mut f = Polynomial::zero(vars);
    for i in 0..vars - 1 {
        let d = Polynomial::<f64>::var(vars, i).sub(&Polynomial::var(vars, i + 1));
        f = f.add(&d.pow(2));
    }
    let xy = Polynomial::<f64>::var(vars, 0)
        .mul(&Polynomial::var(vars, 1))
        .sub(&Polynomial::constant(vars, 1.0));
    f.add(&xy.pow(2))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_sos");
    g.sample_size(10);
    for vars in [2usize, 3, 4] {
        let f = sos_instance(vars);
        g.bench_with_input(BenchmarkId::new("is_sos", vars), &vars, |bench, _| {
            bench.iter(|| is_sos(black_box(&f)))
        });
    }
    // Box certificate on the paper's hard pair.
    let (_, a, b) = remark_5_12_pair();
    let gap = indicator::safety_gap_polynomial::<Rational>(3, &a, &b).map_coeffs(|x| x.to_f64());
    for method in [
        ProjectionMethod::DouglasRachford,
        ProjectionMethod::Alternating,
        ProjectionMethod::Dykstra,
    ] {
        // Iteration cap keeps the stalled baselines (POCS/Dykstra never
        // converge on this degenerate instance; see EXPERIMENTS.md) at a
        // bench-friendly per-call cost while DR converges well within it.
        let options = SdpOptions {
            method,
            max_iterations: 1200,
            stall_detection: true,
            ..Default::default()
        };
        g.bench_function(
            BenchmarkId::new("box_certificate_method", format!("{method:?}")),
            |bench| bench.iter(|| certify_nonneg_on_box(black_box(&gap), 0, options)),
        );
    }
    // Raw SDP assembly cost.
    g.bench_function("assemble_weighted_program", |bench| {
        bench.iter(|| {
            let mut prog = WeightedSosProgram::new(gap.clone());
            prog.add_sos_block(Polynomial::constant(3, 1.0), 2);
            prog.assemble().constraint_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
