//! A counting global allocator for allocation benchmarks.
//!
//! Wraps the system allocator and reports every allocation (and every
//! growing reallocation) into the process-wide heap gauge of
//! [`epi_par`], so benchmark binaries can measure **allocations per
//! box** on the solver hot path and tests can assert the steady-state
//! search stays off the heap. Install it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: epi_bench::alloc::CountingAllocator = epi_bench::alloc::CountingAllocator;
//! ```
//!
//! Counting happens on the allocating thread with two relaxed atomic
//! increments — cheap enough that wall-clock numbers measured under the
//! counting allocator remain representative. Binaries that do not
//! install it leave the gauge at zero, which the solver's debug
//! assertion treats as "no allocator instrumented; nothing to check".

// The one unavoidable `unsafe`: implementing `GlobalAlloc` for the
// wrapper. It delegates verbatim to `System`, adding only counter
// bumps, so its safety argument is exactly `System`'s.
#[allow(unsafe_code)]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};

    /// System allocator wrapper that records every allocation into
    /// [`epi_par::record_heap_alloc`].
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            epi_par::record_heap_alloc(layout.size());
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            epi_par::record_heap_alloc(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            if new_size > layout.size() {
                epi_par::record_heap_alloc(new_size - layout.size());
            }
            System.realloc(ptr, layout, new_size)
        }
    }
}

pub use imp::CountingAllocator;
