//! CI regression gate for solver throughput, per core.
//!
//! Reads the committed `BENCH_PR10.json`, re-measures the E15
//! adversarial instances with the incremental batched engine on one
//! thread (one pinned core, so per-core boxes/sec equals aggregate),
//! and **fails (exit 1) if the measured per-core boxes/sec drops below
//! 80% of the recorded number** — a >20% throughput regression. The
//! recording carries one baseline per feature configuration — kernels
//! differ by 1.5x+ between the scalar and `simd` builds, so each build
//! is gated against its own recording (`bench_gate_baseline_*_scalar`
//! or `*_simd`, chosen at compile time). CI machines are noisy, so the
//! gate compares aggregate throughput (box counts are deterministic;
//! only wall time varies) and uses the best of nine runs — matching
//! `perf_trajectory`'s timing methodology, so the recorded and measured
//! minima estimate the same quantity.
//!
//! Run:  `cargo run --release --bin bench_gate [-- BENCH_PR10.json]`
//!
//! An explicit path to an older recording (e.g. `BENCH_PR5.json`) still
//! works: the gate falls back to its `e15_aggregate_boxes_per_sec_1t`
//! field when the per-core baselines are absent.
//!
//! Skip in CI by including `[bench-skip]` in the commit message (the
//! workflow step checks the message, not this binary).

use epi_bench::hard_family;
use epi_json::Json;
use epi_solver::{decide_product_safety, ProductSolverOptions, SubdivisionMode};
use std::time::Instant;

/// Regression threshold: fail below this fraction of recorded throughput.
const MIN_FRACTION: f64 = 0.8;

/// The per-core baseline matching this build's kernel configuration.
const BASELINE_KEY: &str = if cfg!(feature = "simd") {
    "bench_gate_baseline_boxes_per_sec_per_core_simd"
} else {
    "bench_gate_baseline_boxes_per_sec_per_core_scalar"
};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("bench gate: cannot read {path}: {e}"));
    let doc = Json::parse(&text).expect("bench gate: malformed BENCH json");
    let (key, recorded) = match doc.get(BASELINE_KEY).and_then(Json::as_f64) {
        Some(v) => (BASELINE_KEY, v),
        None => (
            "e15_aggregate_boxes_per_sec_1t",
            doc.get("e15_aggregate_boxes_per_sec_1t")
                .and_then(Json::as_f64)
                .expect("bench gate: no per-core or e15 aggregate baseline in recording"),
        ),
    };
    println!("baseline: {key} = {recorded:.0} boxes/sec/core from {path}");

    let mut total_boxes = 0.0f64;
    let mut total_secs = 0.0f64;
    for (name, cube, a, b) in hard_family() {
        let opts = ProductSolverOptions {
            max_boxes: if cube.dims() >= 9 { 1_000 } else { 8_000 },
            coordinate_ascent: false,
            sos_fallback: false,
            subdivision: SubdivisionMode::Incremental,
            threads: 1,
            ..Default::default()
        };
        // Warm caches and arenas, then keep the best of nine runs — the
        // gate hunts real regressions, not scheduler noise, and the rep
        // count must match the recording side or the recorded minimum is
        // systematically deeper than the measured one.
        let (_, stats) = decide_product_safety(&cube, &a, &b, opts);
        let mut best = f64::INFINITY;
        for _ in 0..9 {
            let t = Instant::now();
            let _ = decide_product_safety(&cube, &a, &b, opts);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "{name}: {} boxes in {:.1}ms ({:.0} boxes/sec)",
            stats.boxes_processed,
            best * 1e3,
            stats.boxes_processed as f64 / best
        );
        total_boxes += stats.boxes_processed as f64;
        total_secs += best;
    }
    // threads=1 pins one core, so the measured aggregate IS per-core.
    let measured = total_boxes / total_secs;
    let fraction = measured / recorded;
    println!(
        "aggregate: measured {measured:.0} boxes/sec/core, recorded {recorded:.0} \
         ({:.0}% of recorded, gate at {:.0}%)",
        fraction * 100.0,
        MIN_FRACTION * 100.0
    );
    if fraction < MIN_FRACTION {
        eprintln!(
            "bench gate FAILED: throughput regressed more than {:.0}% \
             (commit with [bench-skip] to bypass on known-noisy changes)",
            (1.0 - MIN_FRACTION) * 100.0
        );
        std::process::exit(1);
    }
    println!("bench gate passed");
}
