//! Regenerates every experiment table of EXPERIMENTS.md (experiments
//! E1–E12 of DESIGN.md). Timing-focused measurements live in the Criterion
//! benches; this binary produces the *result* tables — verdicts, counts,
//! acceptance rates, reproduction checks against the paper's reported
//! values.
//!
//! Run all experiments:  `cargo run --release --bin experiments`
//! Run a subset:         `cargo run --release --bin experiments -- e4 e7`

use epi_audit::auditor::{Auditor, PriorAssumption};
use epi_audit::query::parse;
use epi_audit::workload::{hospital_scenario, random_workload, WorkloadParams};
use epi_bench::{hiv_pair, remark_5_12_pair, PairShape};
use epi_boolean::criteria::{cancellation, miklau_suciu, monotonicity, necessary, supermodular};
use epi_boolean::distributions::{is_log_supermodular, IsingModel};
use epi_boolean::four_functions::{pointwise_condition, set_condition_exhaustive, CubeFn};
use epi_boolean::{Cube, MatchVector};
use epi_core::families::{RectangleFamily, TrivialFamily};
use epi_core::intervals::margin::SafetyMargin;
use epi_core::intervals::minimal::minimal_intervals;
use epi_core::intervals::{safe_via_intervals, IntervalOracle};
use epi_core::world::all_nonempty_subsets;
use epi_core::{possibilistic, preserving, unrestricted, PossKnowledge, WorldSet};
use epi_solver::hardness::{decide_cut_threshold, Graph};
use epi_solver::logsupermod::{self, SupermodularSearchOptions};
use epi_solver::{decide_product_pipeline, decide_product_safety, ProductSolverOptions, Stage};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let known = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
    ];
    for a in &args {
        if !known.contains(&a.as_str()) {
            eprintln!("warning: unknown experiment {a:?} (known: e1..e12)");
        }
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("# Epistemic Privacy — experiment tables\n");
    if want("e1") {
        e1_hiv_example();
    }
    if want("e2") {
        e2_figure1();
    }
    if want("e3") {
        e3_unrestricted();
    }
    if want("e4") {
        e4_criteria_inclusion();
    }
    if want("e5") {
        e5_cancellation_gap();
    }
    if want("e6") {
        e6_preserving();
    }
    if want("e7") {
        e7_criteria_quality();
    }
    if want("e8") {
        e8_product_solver();
    }
    if want("e9") {
        e9_sos();
    }
    if want("e10") {
        e10_hardness();
    }
    if want("e11") {
        e11_four_functions();
    }
    if want("e12") {
        e12_composition();
    }
}

/// E1 — §1.1 possible-worlds table (the HIV/transfusion example).
fn e1_hiv_example() {
    println!("## E1 — §1.1 HIV example (possible-worlds table)\n");
    let (cube, a, b) = hiv_pair();
    println!("paper: disclosing `hiv -> transfusions` rules out one cell (✗) and");
    println!("can only lower the odds of A; safe despite a shared critical record.\n");
    println!(
        "ruled-out worlds |Ω − B| = {} (paper: 1), ruled-out ⊆ A: {}",
        b.complement().len(),
        b.complement().is_subset(&a)
    );
    println!(
        "unrestricted-prior safety (Thm 3.11): {}",
        unrestricted::safe_unrestricted(&a, &b)
    );
    println!(
        "Miklau–Suciu independence:            {} (paper: fails — shared record)",
        miklau_suciu::independent(&cube, &a, &b)
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut worst: f64 = f64::NEG_INFINITY;
    for _ in 0..100_000 {
        let p = epi_core::Distribution::from_unnormalized(
            (0..4).map(|_| rng.gen::<f64>() + 1e-9).collect(),
        )
        .unwrap();
        worst = worst.max(p.prob(&a.intersection(&b)) - p.prob(&a) * p.prob(&b));
    }
    println!("max gain over 100k arbitrary priors: {worst:.3e} (must be ≤ 0)\n");
}

/// E2 — Figure 1 (Example 4.9).
fn e2_figure1() {
    println!("## E2 — Figure 1 (integer-rectangle family, Example 4.9)\n");
    let f = RectangleFamily::figure1();
    let w1 = f.pixel(1, 1);
    let i1 = f.as_rect(&f.interval(w1, f.pixel(3, 3)).unwrap()).unwrap();
    let i2 = f.as_rect(&f.interval(w1, f.pixel(8, 2)).unwrap()).unwrap();
    println!("| quantity | paper | measured |");
    println!("|---|---|---|");
    println!(
        "| I_K(ω₁, ω₂)  | (1,1)–(4,4) | {:?}–{:?} |",
        i1.corner_form().0,
        i1.corner_form().1
    );
    println!(
        "| I_K(ω₁, ω₂′) | (1,1)–(9,3) | {:?}–{:?} |",
        i2.corner_form().0,
        i2.corner_form().1
    );
    let mut not_a = WorldSet::empty(f.universe_size());
    for (x, y) in [
        (3, 3),
        (4, 2),
        (5, 1),
        (4, 4),
        (5, 3),
        (6, 2),
        (6, 1),
        (5, 4),
        (6, 3),
        (7, 2),
        (7, 1),
        (6, 4),
        (7, 3),
        (8, 2),
        (8, 3),
        (7, 4),
        (8, 4),
        (9, 2),
        (9, 3),
    ] {
        not_a.insert(f.pixel(x, y));
    }
    let mut corners: Vec<String> = minimal_intervals(&f, w1, &not_a)
        .into_iter()
        .map(|m| {
            let r = f.as_rect(&m.interval).unwrap();
            format!("{:?}–{:?}", r.corner_form().0, r.corner_form().1)
        })
        .collect();
    corners.sort();
    println!(
        "| minimal intervals ω₁→Ā | (1,1)–(4,4), (1,1)–(5,3), (1,1)–(6,2) | {} |",
        corners.join(", ")
    );
    let a = not_a.complement();
    let margin = SafetyMargin::compute_checked(&f, &a);
    println!(
        "| tight intervals / exact β | yes (Cor 4.14 applies) | {} |\n",
        margin.is_exact()
    );
}

/// E3 — Theorem 3.11, validated exhaustively.
fn e3_unrestricted() {
    println!("## E3 — Theorem 3.11 (unrestricted priors), exhaustive validation\n");
    println!("| |Ω| | (A,B) pairs | closed form ⟺ Def 3.1 | refutations verified |");
    println!("|---|---|---|---|");
    for n in [2usize, 3, 4] {
        let k = PossKnowledge::unrestricted(n);
        let mut pairs = 0usize;
        let mut refutations = 0usize;
        let mut agree = true;
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                pairs += 1;
                let closed = unrestricted::safe_unrestricted(&a, &b);
                agree &= closed == possibilistic::is_safe(&k, &a, &b);
                if let Some(r) = unrestricted::refute_unrestricted(&a, &b) {
                    refutations += 1;
                    assert!(r.posterior_confidence > r.prior_confidence);
                }
            }
        }
        println!("| {n} | {pairs} | {agree} | {refutations} |");
    }
    println!();
}

/// E4 — Theorem 5.11: criteria inclusion, exhaustive counts.
fn e4_criteria_inclusion() {
    println!("## E4 — Theorem 5.11 (criteria inclusion), exhaustive counts\n");
    println!(
        "| n | pairs | Miklau–Suciu | monotonicity | MS ∪ mono | cancellation | Thm 5.11 holds |"
    );
    println!("|---|---|---|---|---|---|---|");
    for n in [2usize, 3] {
        let cube = Cube::new(n);
        let (mut ms, mut mono, mut union, mut canc) = (0usize, 0usize, 0usize, 0usize);
        let mut pairs = 0usize;
        let mut holds = true;
        for a in all_nonempty_subsets(1 << n) {
            for b in all_nonempty_subsets(1 << n) {
                pairs += 1;
                let m = miklau_suciu::independent(&cube, &a, &b);
                let mo = monotonicity::safe_monotone(&cube, &a, &b);
                let c = cancellation::cancellation(&cube, &a, &b);
                ms += m as usize;
                mono += mo as usize;
                union += (m || mo) as usize;
                canc += c as usize;
                holds &= !(m || mo) || c;
            }
        }
        println!("| {n} | {pairs} | {ms} | {mono} | {union} | {canc} | {holds} |");
    }
    println!("\n(cancellation strictly dominates MS ∪ monotonicity, as Thm 5.11 claims)\n");
}

/// E5 — Remark 5.12: the cancellation gap and its §6 resolution.
fn e5_cancellation_gap() {
    println!("## E5 — Remark 5.12 (cancellation is not necessary)\n");
    let (cube, a, b) = remark_5_12_pair();
    let deficits = cancellation::cancellation_deficits(&cube, &a, &b);
    let all_stars = MatchVector::new(cube.full_mask(), 0);
    let d = deficits.iter().find(|d| d.vector == all_stars).unwrap();
    println!("| quantity | paper | measured |");
    println!("|---|---|---|");
    println!("| |AB̄×ĀB ∩ Circ(***)| | 0 | {} |", d.positive);
    println!("| |AB×ĀB̄ ∩ Circ(***)| | 2 | {} |", d.negative);
    println!(
        "| cancellation criterion | fails | {} |",
        if cancellation::cancellation(&cube, &a, &b) {
            "passes"
        } else {
            "fails"
        }
    );
    let t = Instant::now();
    let decision = decide_product_pipeline(&cube, &a, &b, ProductSolverOptions::default());
    println!(
        "| Safe_Πm0(A,B) | holds | {} via {} ({:?}) |",
        if decision.verdict.is_safe() {
            "holds"
        } else {
            "FAILS"
        },
        decision.stage.label(),
        t.elapsed()
    );
    println!("\n(gap polynomial factors as p₁(1−p₁)(p₃−p₂)² — zero on an interior");
    println!("surface; decided by the §6.2 SOS certificate, not by subdivision)\n");
}

/// E6 — Remark 4.2: K-preservation and composition.
fn e6_preserving() {
    println!("## E6 — Remark 4.2 / Prop 3.10 (K-preservation and composition)\n");
    let f = TrivialFamily::new(3);
    let k = f.to_knowledge();
    let a = WorldSet::from_indices(3, [2]);
    let b1 = WorldSet::from_indices(3, [0, 2]);
    let b2 = WorldSet::from_indices(3, [1, 2]);
    println!("| quantity | paper | measured |");
    println!("|---|---|---|");
    println!("| Safe(A,B₁) | yes | {} |", safe_via_intervals(&f, &a, &b1));
    println!("| Safe(A,B₂) | yes | {} |", safe_via_intervals(&f, &a, &b2));
    println!(
        "| Safe(A,B₁∩B₂) | **no** | {} |",
        safe_via_intervals(&f, &a, &b1.intersection(&b2))
    );
    println!(
        "| B₁ K-preserving | no | {} |",
        preserving::is_preserving_poss(&k, &b1)
    );
    // Composition always holds under the (preserving-closed) unrestricted K.
    let n = 4;
    let k = PossKnowledge::unrestricted(n);
    let mut checked = 0usize;
    let mut violations = 0usize;
    let subsets: Vec<WorldSet> = all_nonempty_subsets(n).collect();
    for a in &subsets {
        for b1 in &subsets {
            if !possibilistic::is_safe(&k, a, b1) {
                continue;
            }
            for b2 in &subsets {
                if possibilistic::is_safe(&k, a, b2) && b1.intersects(b2) {
                    checked += 1;
                    if !possibilistic::is_safe(&k, a, &b1.intersection(b2)) {
                        violations += 1;
                    }
                }
            }
        }
    }
    println!(
        "| Prop 3.10(2) over unrestricted K, n=4 | 0 violations | {violations} / {checked} |\n"
    );
}

/// E7 — criteria quality against the complete solver.
fn e7_criteria_quality() {
    println!("## E7 — criteria vs exact solver (acceptance and precision)\n");
    let trials = 300usize;
    println!("| n | shape | exact safe | MS | mono | canc | canc recall | nec-box refutes | stage: BnB/SOS used |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for n in [3usize, 4, 5] {
        let cube = Cube::new(n);
        for shape in PairShape::all() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + n as u64);
            let (mut exact_safe, mut ms, mut mono, mut canc, mut canc_on_safe) =
                (0usize, 0usize, 0usize, 0usize, 0usize);
            let mut nec_refutes = 0usize;
            let mut deep_stage = 0usize;
            for _ in 0..trials {
                let (a, b) = shape.sample(&cube, &mut rng);
                let decision =
                    decide_product_pipeline(&cube, &a, &b, ProductSolverOptions::default());
                let safe = decision.verdict.is_safe();
                exact_safe += safe as usize;
                let c = cancellation::cancellation(&cube, &a, &b);
                ms += miklau_suciu::independent(&cube, &a, &b) as usize;
                mono += monotonicity::safe_monotone(&cube, &a, &b) as usize;
                canc += c as usize;
                canc_on_safe += (c && safe) as usize;
                nec_refutes += (!necessary::necessary_product(&cube, &a, &b)) as usize;
                deep_stage += (decision.stage == Stage::BranchAndBound) as usize;
            }
            let recall = if exact_safe > 0 {
                format!("{:.2}", canc_on_safe as f64 / exact_safe as f64)
            } else {
                "—".into()
            };
            println!(
                "| {n} | {} | {exact_safe}/{trials} | {ms} | {mono} | {canc} | {recall} | {nec_refutes} | {deep_stage} |",
                shape.label()
            );
        }
    }
    println!(
        "\n(canc recall = fraction of exactly-safe pairs the cancellation criterion certifies)\n"
    );
}

/// E8 — the product solver: verdict mix and ablations.
fn e8_product_solver() {
    println!("## E8 — product-distribution solver (§6.1 substitute)\n");
    println!("| n | trials | safe | unsafe | unknown | median boxes (safe) | total time |");
    println!("|---|---|---|---|---|---|---|");
    for n in [3usize, 4, 5, 6] {
        let cube = Cube::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7 + n as u64);
        let trials = 200usize;
        let (mut safe, mut unsafe_, mut unknown) = (0usize, 0usize, 0usize);
        let mut boxes: Vec<usize> = Vec::new();
        let t = Instant::now();
        for i in 0..trials {
            let shape = PairShape::all()[i % 4];
            let (a, b) = shape.sample(&cube, &mut rng);
            let (v, stats) = decide_product_safety(&cube, &a, &b, ProductSolverOptions::default());
            if v.is_safe() {
                safe += 1;
                boxes.push(stats.boxes_processed);
            } else if v.is_unsafe() {
                unsafe_ += 1;
            } else {
                unknown += 1;
            }
        }
        boxes.sort_unstable();
        let median = boxes.get(boxes.len() / 2).copied().unwrap_or(0);
        println!(
            "| {n} | {trials} | {safe} | {unsafe_} | {unknown} | {median} | {:?} |",
            t.elapsed()
        );
    }
    // Ablations on a fixed workload.
    println!("\nablations (n = 4, 100 mixed pairs):\n");
    println!("| configuration | agree with default | time |");
    println!("|---|---|---|");
    let cube = Cube::new(4);
    let base_opts = ProductSolverOptions::default();
    let configs: Vec<(&str, ProductSolverOptions)> = vec![
        ("default (Bernstein + ascent + SOS)", base_opts),
        (
            "no coordinate ascent",
            ProductSolverOptions {
                coordinate_ascent: false,
                ..base_opts
            },
        ),
        (
            "interval bounds (no Bernstein)",
            ProductSolverOptions {
                bound_method: epi_solver::product::BoundMethod::Interval,
                max_boxes: 5_000,
                ..base_opts
            },
        ),
        (
            "no SOS fallback",
            ProductSolverOptions {
                sos_fallback: false,
                ..base_opts
            },
        ),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let pairs: Vec<_> = (0..100)
        .map(|i| PairShape::all()[i % 4].sample(&cube, &mut rng))
        .collect();
    let reference: Vec<bool> = pairs
        .iter()
        .map(|(a, b)| decide_product_safety(&cube, a, b, configs[0].1).0.is_safe())
        .collect();
    for (name, opts) in &configs {
        let t = Instant::now();
        let mut agree = 0usize;
        let mut decided = 0usize;
        for ((a, b), &ref_safe) in pairs.iter().zip(&reference) {
            let v = decide_product_safety(&cube, a, b, *opts).0;
            if !v.is_unknown() {
                decided += 1;
                agree += (v.is_safe() == ref_safe) as usize;
            }
        }
        println!("| {name} | {agree}/{decided} decided | {:?} |", t.elapsed());
    }
    println!();
}

/// E9 — the SOS heuristic: success rates and certificate quality.
fn e9_sos() {
    println!("## E9 — sum-of-squares heuristic (§6.2)\n");
    println!("\"works remarkably well in practice\", quantified on safe instances");
    println!("with non-trivial gap polynomials. Tier 1 = paired-box multipliers");
    println!("(fast); tier 2 = facet-product Schmüdgen multipliers (complete for");
    println!("more instances, larger SDPs). Instances are safe non-independent");
    println!("pairs sampled from the mixed workload shapes.\n");
    println!("| n | instances | tier-1 certified | tier-2 rescues (of attempts) | mean residual | time |");
    println!("|---|---|---|---|---|---|");
    for n in [2usize, 3, 4] {
        let cube = Cube::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut tier1 = 0usize;
        let mut tier2 = 0usize;
        let mut tier2_attempts = 0usize;
        let mut tried = 0usize;
        let mut residuals = Vec::new();
        let t = Instant::now();
        let mut attempts = 0;
        let target = if n >= 4 { 20 } else { 30 };
        let rescue_budget = 3;
        while tried < target && attempts < 4000 {
            attempts += 1;
            let shape = PairShape::all()[attempts % 4];
            let (a, b) = shape.sample(&cube, &mut rng);
            let no_sos = ProductSolverOptions {
                sos_fallback: false,
                max_boxes: 2000,
                ..Default::default()
            };
            let (v, _) = decide_product_safety(&cube, &a, &b, no_sos);
            if v.is_unsafe() {
                continue;
            }
            let gap = epi_poly::indicator::safety_gap_polynomial::<epi_num::Rational>(n, &a, &b)
                .map_coeffs(|c| c.to_f64());
            if gap.is_zero() {
                continue; // independence: trivially certified, not informative
            }
            tried += 1;
            let t1 = epi_sos::certify_nonneg_on_box_with(
                &gap,
                0,
                Default::default(),
                epi_sos::BoxMultipliers::PairedBoxes,
            );
            if let Some(c) = t1 {
                tier1 += 1;
                residuals.push(c.residual);
            } else if tier2_attempts < rescue_budget {
                tier2_attempts += 1;
                // Bounded tier-2 attempt: smaller block set and iteration
                // budget, so a stalled SDP costs seconds, not minutes.
                let opts = epi_sdp::SdpOptions {
                    max_iterations: 800,
                    ..Default::default()
                };
                if let Some(c) = epi_sos::certify_nonneg_on_box_with(
                    &gap,
                    0,
                    opts,
                    epi_sos::BoxMultipliers::FacetProducts { dim_budget: 140 },
                ) {
                    tier2 += 1;
                    residuals.push(c.residual);
                }
            }
        }
        let mean_res = if residuals.is_empty() {
            0.0
        } else {
            residuals.iter().sum::<f64>() / residuals.len() as f64
        };
        println!(
            "| {n} | {tried} | {tier1} | {tier2}/{tier2_attempts} | {mean_res:.2e} | {:?} |",
            t.elapsed()
        );
    }
    // The instance class that motivates the SOS stage: interior-zero
    // surfaces (Remark 5.12 and its liftings), where subdivision cannot
    // terminate but tier 1 certifies instantly.
    println!("\ninterior-zero-surface class (B&B-undecidable; the SOS stage's raison d'être):\n");
    println!("| instance | tier-1 certified | time |");
    println!("|---|---|---|");
    for n in [3usize, 4, 5] {
        let cube = Cube::new(n);
        let a = cube.set_from_predicate(|w| [0b011, 0b100, 0b110, 0b111].contains(&(w & 0b111)));
        let b = cube.set_from_predicate(|w| [0b010, 0b101, 0b110, 0b111].contains(&(w & 0b111)));
        let gap = epi_poly::indicator::safety_gap_polynomial::<epi_num::Rational>(n, &a, &b)
            .map_coeffs(|c| c.to_f64());
        let t = Instant::now();
        let cert = epi_sos::certify_nonneg_on_box_with(
            &gap,
            0,
            Default::default(),
            epi_sos::BoxMultipliers::PairedBoxes,
        );
        println!(
            "| Remark 5.12 lifted to n={n} | {} | {:?} |",
            cert.is_some(),
            t.elapsed()
        );
    }
    println!();
}

/// E10 — the MAX-CUT-flavored hard family (Theorem 6.2).
fn e10_hardness() {
    println!("## E10 — hard algebraic family (Theorem 6.2 flavor)\n");
    println!("Instances: G(t, 0.6) with k = maxcut + 1 (empty K); the psatz");
    println!("refutation step is where the Thm 6.2 hardness bites.\n");
    println!("| vertices | edges | maxcut | refuted at D=1 | refuted at D=2 | time (D=2) |");
    println!("|---|---|---|---|---|---|");
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    for t in [3usize, 4, 5, 6] {
        let g = Graph::random(t, 0.6, &mut rng);
        let mc = g.max_cut();
        let k = mc + 1;
        let d1 = decide_cut_threshold(&g, k, 1);
        let start = Instant::now();
        let d2 = decide_cut_threshold(&g, k, 2);
        let elapsed = start.elapsed();
        println!(
            "| {t} | {} | {mc} | {} | {} | {elapsed:?} |",
            g.edges.len(),
            d1.refuted,
            d2.refuted
        );
        assert!(!d1.feasible && !d2.feasible);
    }
    println!();
}

/// E11 — Four Functions Theorem and Π_m⁺ criteria validation.
fn e11_four_functions() {
    println!("## E11 — Four Functions Theorem (Thm 5.3) and Π_m⁺ criteria\n");
    let cube = Cube::new(3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
    let mut pointwise_pass = 0usize;
    let mut set_pass = 0usize;
    for _ in 0..50 {
        let p = IsingModel::random(3, 0.8, 1.2, &mut rng).to_distribution();
        let f = CubeFn::new(p.weights().to_vec());
        if pointwise_condition(&cube, &f, &f, &f, &f, 1e-12) {
            pointwise_pass += 1;
            if set_condition_exhaustive(&cube, &f, &f, &f, &f, 1e-9) {
                set_pass += 1;
            }
        }
    }
    println!("Ising priors passing the pointwise condition: {pointwise_pass}/50");
    println!("…of which satisfy the set-level conclusion:    {set_pass}/{pointwise_pass} (Thm 5.3 forward direction)\n");

    // Π_m⁺ criteria against the refuter.
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(23);
    let (mut nec_fail, mut refuted_of_those, mut suf_pass, mut suf_contradicted) =
        (0usize, 0usize, 0usize, 0usize);
    for _ in 0..150 {
        let (a, b) = PairShape::Random.sample(&cube, &mut rng2);
        let suf = supermodular::sufficient_supermodular(&cube, &a, &b);
        let nec = supermodular::necessary_supermodular(&cube, &a, &b);
        let verdict = logsupermod::search_supermodular(
            &cube,
            &a,
            &b,
            SupermodularSearchOptions::default(),
            &mut rng2,
        );
        if !nec {
            nec_fail += 1;
            if verdict.is_unsafe() {
                refuted_of_those += 1;
            }
        }
        if suf {
            suf_pass += 1;
            if verdict.is_unsafe() {
                suf_contradicted += 1;
            }
        }
    }
    println!("| quantity | expected | measured |");
    println!("|---|---|---|");
    println!("| Prop 5.2 failures refuted by an explicit Π_m⁺ prior | all | {refuted_of_those}/{nec_fail} |");
    println!(
        "| Prop 5.4 passes contradicted by the refuter | 0 | {suf_contradicted}/{suf_pass} |\n"
    );
    if let Some(w) = logsupermod::search_supermodular(
        &cube,
        &cube.set_from_masks([0b111]),
        &cube.set_from_masks([0b111]),
        SupermodularSearchOptions::default(),
        &mut rng2,
    )
    .witness()
    {
        assert!(is_log_supermodular(&cube, &w.prior, 1e-9));
    }
}

/// E12 — audit-log composition (Section 3.3 / Prop 3.10 at scale).
fn e12_composition() {
    println!("## E12 — audit pipeline on logs (composition)\n");
    let scenario = hospital_scenario();
    let q = parse("hiv_pos", &scenario.schema).unwrap();
    println!("hospital scenario (intro timeline):");
    for assumption in [
        PriorAssumption::Unrestricted,
        PriorAssumption::Product,
        PriorAssumption::LogSupermodular,
    ] {
        let report = Auditor::new(assumption).audit(&scenario.log, &q);
        println!(
            "  {assumption:?}: flagged {:?} (paper: suspicion on Mallory only)",
            report.flagged_users()
        );
    }
    // Random logs: statistics of findings + cumulative-only breaches.
    let mut rng = rand::rngs::StdRng::seed_from_u64(29);
    let mut totals: HashMap<&'static str, usize> = HashMap::new();
    let mut cumulative_only = 0usize;
    let runs = 60usize;
    for _ in 0..runs {
        let w = random_workload(
            WorkloadParams {
                records: 4,
                users: 3,
                disclosures: 10,
                ..Default::default()
            },
            &mut rng,
        );
        let q = parse("r0", &w.schema).unwrap();
        let report = Auditor::new(PriorAssumption::Product).audit(&w.log, &q);
        let mut single_flagged: Vec<&str> = Vec::new();
        for e in &report.entries {
            let key = match e.finding {
                epi_audit::Finding::Safe => "safe",
                epi_audit::Finding::Flagged => "flagged",
                epi_audit::Finding::Inconclusive => "inconclusive",
            };
            *totals.entry(key).or_default() += 1;
            if e.finding == epi_audit::Finding::Flagged {
                if e.kind == epi_audit::auditor::EntryKind::Single {
                    single_flagged.push(e.user.as_str());
                } else if !single_flagged.contains(&e.user.as_str()) {
                    cumulative_only += 1;
                }
            }
        }
    }
    println!("\nrandom product-prior audits ({runs} logs × 10 disclosures):");
    let mut rows: Vec<_> = totals.iter().collect();
    rows.sort();
    for (k, v) in rows {
        println!("  {k:<13} {v}");
    }
    println!("  breaches visible only cumulatively: {cumulative_only}\n");
}
