//! Perf-trajectory harness for the solver engine: times the E8 (product
//! solver), E12 (audit composition), E14 (parallel scaling / dense
//! kernel), E15 (incremental subdivision / zero-allocation hot path)
//! E16 (disclosure throughput vs. durability policy), E17
//! (concurrent-connection throughput, reactor vs. thread-per-conn), E18
//! (goodput under an overload storm with adaptive admission), E19
//! (O(1) exhausted-budget denial vs. the full solver path) and E20
//! (SIMD microkernel ns/element sweep plus batched single-core wave
//! throughput vs. the PR 5 recording) workloads against the recorded
//! baselines and writes the results to `BENCH_PR10.json` alongside the
//! human-readable tables, so future PRs can diff the numbers
//! machine-readably.
//!
//! Run:  `cargo run --release --bin perf_trajectory [-- out.json [baseline.json]]`
//!
//! The `legacy_seq` configuration (`dense_kernel: false, threads: 1`) is
//! the seed solver verbatim: eager exact-rational gap assembly through
//! the `BTreeMap` polynomial followed by the same Bernstein
//! branch-and-bound. E15 additionally compares the incremental
//! subdivision engine against the recompute-per-box path and against the
//! committed `BENCH_PR2.json` numbers, reporting boxes/sec and — thanks
//! to the counting global allocator this binary installs —
//! allocations/box. On this container `available_parallelism` may be 1,
//! in which case the thread-count sweep is flat and every reported
//! speedup is algorithmic; the JSON records the core count so readers
//! can tell the two apart.

use epi_bench::{hard_family, PairShape};
use epi_boolean::{generate, Cube};
use epi_core::WorldSet;
use epi_json::Json;
use epi_poly::{indicator, subdivision};
use epi_solver::{decide_product_safety, ProductSolverOptions, SubdivisionMode, Verdict};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Every allocation in this binary goes through the counting allocator,
/// so the E15 rows can report allocations per box on the solver hot path.
#[global_allocator]
static ALLOC: epi_bench::alloc::CountingAllocator = epi_bench::alloc::CountingAllocator;

/// Best-of-9 wall time in milliseconds. Box counts are deterministic —
/// only scheduling noise varies between runs — so the minimum is the
/// faithful estimate of a configuration's cost (a single descheduled
/// run would skew a mean, and can even skew a median-of-3).
fn time_ms(mut f: impl FnMut()) -> f64 {
    (0..9)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn verdict_tag(v: &Verdict<epi_solver::ProductWitness>) -> &'static str {
    match v {
        Verdict::Safe(_) => "safe",
        Verdict::Unsafe(_) => "unsafe",
        Verdict::Unknown => "unknown",
    }
}

fn e8(configs: &[(&str, ProductSolverOptions)]) -> Json {
    println!("\n## E8 — product solver, mixed workload (8 pairs per n)\n");
    let mut rows = Vec::new();
    for n in [3usize, 4, 5, 6] {
        let cube = Cube::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let pairs: Vec<(WorldSet, WorldSet)> = (0..8)
            .map(|i| PairShape::all()[i % 4].sample(&cube, &mut rng))
            .collect();
        let mut walls = Vec::new();
        for (tag, opts) in configs {
            let wall = time_ms(|| {
                for (a, b) in &pairs {
                    let _ = decide_product_safety(&cube, a, b, *opts);
                }
            });
            walls.push((*tag, wall));
        }
        let speedup = walls[0].1 / walls.last().unwrap().1;
        println!(
            "n={n}: {}  speedup={speedup:.2}x",
            walls
                .iter()
                .map(|(t, w)| format!("{t}={w:.1}ms"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        rows.push(Json::obj(
            [("n", Json::from(n)), ("speedup", Json::from(speedup))]
                .into_iter()
                .chain(
                    walls
                        .iter()
                        .map(|(t, w)| (*t, Json::obj([("wall_ms", Json::from(*w))]))),
                )
                .collect::<Vec<_>>(),
        ));
    }
    Json::arr(rows)
}

fn e12() -> Json {
    use epi_audit::auditor::{Auditor, PriorAssumption};
    use epi_audit::query::parse;
    use epi_audit::workload::{hospital_scenario, random_workload, WorkloadParams};

    println!("\n## E12 — audit composition, product-prior assumption\n");
    let legacy_opts = ProductSolverOptions {
        dense_kernel: false,
        threads: 1,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let scenario = hospital_scenario();
    let hiv = parse("hiv_pos", &scenario.schema).unwrap();
    let mut workloads = vec![("hospital_scenario", scenario.schema, scenario.log, hiv)];
    for records in [4usize, 5] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let w = random_workload(
            WorkloadParams {
                records,
                users: 3,
                disclosures: 12,
                ..Default::default()
            },
            &mut rng,
        );
        let q = parse("r0", &w.schema).unwrap();
        let name: &'static str = if records == 4 {
            "random_log_r4"
        } else {
            "random_log_r5"
        };
        workloads.push((name, w.schema, w.log, q));
    }
    for (name, _schema, log, query) in &workloads {
        let legacy = Auditor::new(PriorAssumption::Product).with_product_options(legacy_opts);
        let dense = Auditor::new(PriorAssumption::Product);
        let wall_legacy = time_ms(|| {
            let _ = legacy.audit(log, query);
        });
        let wall_dense = time_ms(|| {
            let _ = dense.audit(log, query);
        });
        let speedup = wall_legacy / wall_dense;
        println!(
            "{name}: legacy_seq={wall_legacy:.1}ms engine={wall_dense:.1}ms speedup={speedup:.2}x"
        );
        rows.push(Json::obj([
            ("workload", Json::from(*name)),
            ("legacy_seq_wall_ms", Json::from(wall_legacy)),
            ("engine_wall_ms", Json::from(wall_dense)),
            ("speedup", Json::from(speedup)),
        ]));
    }
    Json::arr(rows)
}

/// The E14 instance set: the structured hard family (Remark 5.12 tensors
/// whose gaps vanish on interior surfaces — box-search-bound) plus dense
/// monotone-no pairs (up-set vs. down-set, safe for every product prior by
/// FKG — construction-bound, where the `BTreeMap` baseline pays seconds of
/// exact-rational assembly the dense kernel does in microseconds).
fn e14_instances() -> Vec<(String, Cube, WorldSet, WorldSet, usize)> {
    let mut out: Vec<(String, Cube, WorldSet, WorldSet, usize)> = hard_family()
        .into_iter()
        .map(|(name, cube, a, b)| {
            let budget = if cube.dims() >= 9 { 1_000 } else { 8_000 };
            (name.to_string(), cube, a, b, budget)
        })
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    for n in [9usize, 10, 12] {
        let cube = Cube::new(n);
        let (a, b) = PairShape::MonotoneNo.sample(&cube, &mut rng);
        out.push((format!("monotone_no_n{n}"), cube, a, b, 512));
    }
    out
}

fn e14() -> (Json, f64) {
    println!("\n## E14 — parallel engine vs sequential baseline (hard family)\n");
    // Per-core normalization: an 8-thread request on a 2-core container
    // runs on 2 cores, so boxes/sec/core divides by the effective count,
    // not the requested one.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let eff_8t = 8.min(cores.max(1));
    let mut rows = Vec::new();
    let mut total_legacy = 0.0;
    let mut total_8t = 0.0;
    for (name, cube, a, b, max_boxes) in e14_instances() {
        // Ascent and the SOS fallback are identical in both engines and
        // orthogonal to what E14 measures (gap assembly + box search);
        // E8 ablates them separately.
        let base = ProductSolverOptions {
            max_boxes,
            coordinate_ascent: false,
            sos_fallback: false,
            ..Default::default()
        };
        let configs = [
            (
                "legacy_seq",
                ProductSolverOptions {
                    dense_kernel: false,
                    threads: 1,
                    ..base
                },
            ),
            ("dense_1t", ProductSolverOptions { threads: 1, ..base }),
            ("dense_2t", ProductSolverOptions { threads: 2, ..base }),
            ("dense_8t", ProductSolverOptions { threads: 8, ..base }),
        ];
        let mut walls = Vec::new();
        let mut verdicts = Vec::new();
        let mut boxes = 0usize;
        for (tag, opts) in configs {
            let wall = time_ms(|| {
                let _ = decide_product_safety(&cube, &a, &b, opts);
            });
            let (v, stats) = decide_product_safety(&cube, &a, &b, opts);
            boxes = stats.boxes_processed;
            verdicts.push(verdict_tag(&v));
            walls.push((tag, wall));
        }
        assert!(
            verdicts.iter().all(|v| *v == verdicts[0]),
            "{name}: deterministic engine must agree across configs"
        );
        let speedup = walls[0].1 / walls[3].1;
        total_legacy += walls[0].1;
        total_8t += walls[3].1;
        println!(
            "{name} (n={}, {} boxes, {}): {}  speedup_8t={speedup:.2}x",
            cube.dims(),
            boxes,
            verdicts[0],
            walls
                .iter()
                .map(|(t, w)| format!("{t}={w:.1}ms"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        rows.push(Json::obj(
            [
                ("instance", Json::from(name.as_str())),
                ("n", Json::from(cube.dims())),
                ("max_boxes", Json::from(max_boxes)),
                ("boxes_processed", Json::from(boxes)),
                ("verdict", Json::from(verdicts[0])),
                ("speedup_8t_vs_sequential", Json::from(speedup)),
                ("threads_effective_8t", Json::from(eff_8t)),
                (
                    "dense_8t_boxes_per_sec_per_core",
                    Json::from(boxes as f64 / (walls[3].1 / 1e3) / eff_8t as f64),
                ),
            ]
            .into_iter()
            .chain(
                walls
                    .iter()
                    .map(|(t, w)| (*t, Json::obj([("wall_ms", Json::from(*w))]))),
            )
            .collect::<Vec<_>>(),
        ));
    }
    let aggregate = total_legacy / total_8t;
    println!("\naggregate speedup (Σ legacy_seq / Σ dense_8t): {aggregate:.2}x");
    (Json::arr(rows), aggregate)
}

/// The E15 instance set: the adversarial (verdict-unknown) rows of the
/// E14 hard family — the instances where the branch-and-bound grinds its
/// full box budget, so per-box kernel cost is exactly what the wall
/// clock measures.
fn e15_instances() -> Vec<(String, Cube, WorldSet, WorldSet, usize)> {
    hard_family()
        .into_iter()
        .map(|(name, cube, a, b)| {
            let budget = if cube.dims() >= 9 { 1_000 } else { 8_000 };
            (name.to_string(), cube, a, b, budget)
        })
        .collect()
}

/// Per-instance `dense_1t` boxes/sec recorded in `BENCH_PR2.json`, keyed
/// by instance name. Missing file or rows simply yield no baseline (the
/// speedup fields are then omitted).
fn pr2_baseline(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = Json::parse(&text) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let Some(Json::Arr(rows)) = doc.get("e14") else {
        return Vec::new();
    };
    for row in rows {
        let (Some(name), Some(boxes), Some(wall_ms)) = (
            row.get("instance").and_then(Json::as_str),
            row.get("boxes_processed").and_then(Json::as_f64),
            row.get("dense_1t")
                .and_then(|w| w.get("wall_ms"))
                .and_then(Json::as_f64),
        ) else {
            continue;
        };
        if wall_ms > 0.0 {
            out.push((name.to_owned(), boxes / (wall_ms / 1e3)));
        }
    }
    out
}

fn e15(baseline_path: &str) -> (Json, f64, Option<f64>) {
    println!("\n## E15 — incremental subdivision kernel (adversarial hard family)\n");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let eff_8t = 8.min(cores.max(1));
    let baseline = pr2_baseline(baseline_path);
    let mut rows = Vec::new();
    let mut total_boxes = 0.0f64;
    let mut total_secs = 0.0f64;
    let mut total_base_secs = 0.0f64;
    let mut have_all_baselines = !baseline.is_empty();
    for (name, cube, a, b, max_boxes) in e15_instances() {
        let base = ProductSolverOptions {
            max_boxes,
            coordinate_ascent: false,
            sos_fallback: false,
            ..Default::default()
        };
        let configs = [
            (
                "recompute_1t",
                ProductSolverOptions {
                    subdivision: SubdivisionMode::Recompute,
                    threads: 1,
                    ..base
                },
            ),
            (
                "incremental_1t",
                ProductSolverOptions {
                    subdivision: SubdivisionMode::Incremental,
                    threads: 1,
                    ..base
                },
            ),
            (
                "incremental_8t",
                ProductSolverOptions {
                    subdivision: SubdivisionMode::Incremental,
                    threads: 8,
                    ..base
                },
            ),
        ];
        let mut cells = Vec::new();
        let mut boxes = 0usize;
        let mut verdicts = Vec::new();
        for (tag, opts) in configs {
            // Warm the arenas first so the steady state is what's timed,
            // then measure allocations over one solve.
            let (v, stats) = decide_product_safety(&cube, &a, &b, opts);
            let allocs_before = epi_par::heap_allocations();
            let _ = decide_product_safety(&cube, &a, &b, opts);
            let allocs = epi_par::heap_allocations() - allocs_before;
            let wall = time_ms(|| {
                let _ = decide_product_safety(&cube, &a, &b, opts);
            });
            boxes = stats.boxes_processed;
            verdicts.push(verdict_tag(&v));
            let allocs_per_box = allocs as f64 / stats.boxes_processed.max(1) as f64;
            cells.push((tag, wall, allocs_per_box));
        }
        assert!(
            verdicts.iter().all(|v| *v == verdicts[0]),
            "{name}: subdivision engines must agree"
        );
        let inc_1t = cells[1].1;
        let inc_8t = cells[2].1;
        let boxes_per_sec_1t = boxes as f64 / (inc_1t / 1e3);
        total_boxes += boxes as f64;
        total_secs += inc_1t / 1e3;
        let base_bps = baseline
            .iter()
            .find(|(b_name, _)| b_name == &name)
            .map(|(_, bps)| *bps);
        if base_bps.is_none() {
            have_all_baselines = false;
        } else if let Some(bps) = base_bps {
            total_base_secs += boxes as f64 / bps;
        }
        println!(
            "{name} (n={}, {} boxes, {}): {}  boxes/sec_1t={boxes_per_sec_1t:.0}{}",
            cube.dims(),
            boxes,
            verdicts[0],
            cells
                .iter()
                .map(|(t, w, apb)| format!("{t}={w:.1}ms({apb:.2}allocs/box)"))
                .collect::<Vec<_>>()
                .join(" "),
            base_bps
                .map(|bps| format!(" speedup_vs_pr2={:.2}x", boxes_per_sec_1t / bps))
                .unwrap_or_default()
        );
        let mut fields = vec![
            ("instance", Json::from(name.as_str())),
            ("n", Json::from(cube.dims())),
            ("max_boxes", Json::from(max_boxes)),
            ("boxes_processed", Json::from(boxes)),
            ("verdict", Json::from(verdicts[0])),
            ("boxes_per_sec_1t", Json::from(boxes_per_sec_1t)),
            // threads=1 pins one core, so per-core == aggregate here;
            // the explicit field keeps the gate's metric uniform.
            ("boxes_per_sec_per_core_1t", Json::from(boxes_per_sec_1t)),
            ("speedup_8t_vs_1t", Json::from(inc_1t / inc_8t)),
            ("threads_effective_8t", Json::from(eff_8t)),
            (
                "incremental_8t_boxes_per_sec_per_core",
                Json::from(boxes as f64 / (inc_8t / 1e3) / eff_8t as f64),
            ),
        ];
        if let Some(bps) = base_bps {
            fields.push(("pr2_boxes_per_sec", Json::from(bps)));
            fields.push(("speedup_vs_pr2", Json::from(boxes_per_sec_1t / bps)));
        }
        fields.extend(cells.iter().map(|(t, w, apb)| {
            (
                *t,
                Json::obj([
                    ("wall_ms", Json::from(*w)),
                    ("allocs_per_box", Json::from(*apb)),
                ]),
            )
        }));
        rows.push(Json::obj(fields));
    }
    let aggregate_bps = total_boxes / total_secs;
    let aggregate_speedup =
        (have_all_baselines && total_base_secs > 0.0).then(|| total_base_secs / total_secs);
    println!("\naggregate incremental_1t throughput: {aggregate_bps:.0} boxes/sec");
    if let Some(s) = aggregate_speedup {
        println!("aggregate speedup vs PR2 dense_1t: {s:.2}x");
    }
    (Json::arr(rows), aggregate_bps, aggregate_speedup)
}

/// E16 — disclosure throughput under the three durability policies of
/// the write-ahead disclosure log. Every run gets a fresh data
/// directory and a fresh daemon; snapshots are disabled so the rows
/// isolate the append + fsync cost of the log itself (compaction is
/// amortised and measured nowhere near the hot path). `volatile` is the
/// pre-persistence daemon (no data dir), the baseline the fsync rows
/// are charged against.
fn e16() -> Json {
    use epi_audit::workload::hospital_scenario;
    use epi_audit::PriorAssumption;
    use epi_service::{AuditService, FsyncPolicy, Request, Response, ServiceConfig};
    use epi_wal::testdir::TempDir;
    use std::time::Duration;

    println!("\n## E16 — disclosure throughput vs durability policy\n");
    let w = hospital_scenario();
    let mut steps = Vec::new();
    for r in 0..12u64 {
        for (d, state) in w.log.entries_with_state() {
            steps.push((
                format!("r{r}:{}", d.user),
                d.time,
                d.query.display(w.log.schema()).to_string(),
                state.mask(),
            ));
        }
    }

    let configs: Vec<(&str, Option<FsyncPolicy>)> = vec![
        ("volatile", None),
        (
            "fsync_interval_100ms",
            Some(FsyncPolicy::Interval(Duration::from_millis(100))),
        ),
        ("fsync_always", Some(FsyncPolicy::Always)),
    ];
    let mut rows = Vec::new();
    let mut volatile_wall = f64::NAN;
    for (tag, fsync) in configs {
        let mut best = f64::INFINITY;
        let mut appends = 0u64;
        let mut fsyncs = 0u64;
        for run in 0..5 {
            let tmp = TempDir::new(&format!("e16-{tag}-{run}"));
            let config = ServiceConfig {
                assumption: PriorAssumption::Product,
                workers: 2,
                data_dir: fsync.as_ref().map(|_| tmp.path().to_path_buf()),
                wal_fsync: fsync.unwrap_or(FsyncPolicy::Never),
                wal_snapshot_every: 0,
                ..ServiceConfig::default()
            };
            let svc = AuditService::open(w.schema.clone(), config).expect("open daemon");
            let t = Instant::now();
            for (user, time, query, mask) in &steps {
                let resp = svc.handle(&Request::Disclose {
                    user: user.clone(),
                    time: *time,
                    query: query.clone(),
                    state_mask: *mask,
                    audit_query: "hiv_pos".to_owned(),
                });
                assert!(
                    matches!(resp, Response::Entry(_)),
                    "e16 disclosure for {user} failed: {resp:?}"
                );
            }
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
            let m = svc.metrics();
            appends = m.wal_appends;
            fsyncs = m.wal_fsyncs;
        }
        if tag == "volatile" {
            volatile_wall = best;
        }
        let per_sec = steps.len() as f64 / (best / 1e3);
        let slowdown = best / volatile_wall;
        println!(
            "{tag}: {best:.1}ms for {} disclosures ({per_sec:.0}/sec, {slowdown:.2}x vs volatile, \
             {appends} appends, {fsyncs} fsyncs)",
            steps.len()
        );
        rows.push(Json::obj([
            ("policy", Json::from(tag)),
            ("disclosures", Json::from(steps.len())),
            ("wall_ms", Json::from(best)),
            ("disclosures_per_sec", Json::from(per_sec)),
            ("slowdown_vs_volatile", Json::from(slowdown)),
            ("wal_appends", Json::from(appends)),
            ("wal_fsyncs", Json::from(fsyncs)),
        ]));
    }
    Json::arr(rows)
}

/// E17 — concurrent-connection throughput and per-connection memory:
/// the readiness reactor vs the thread-per-connection fallback at 64,
/// 512 and 2048 open connections. Each run opens the fanout idle (the
/// realistic shape of a large deployment: most connections quiet), then
/// 8 driver clients push pipelined 16-deep disclose batches; the row
/// reports aggregate decisions/sec, the heap bytes the fanout cost
/// (cumulative-allocation delta over setup, divided by connections —
/// an upper bound on per-connection state; thread stacks are mmapped
/// and invisible to it, which flatters the threaded rows), and the
/// open-connection gauge. The acceptance line for this PR: the reactor
/// at 2048 connections sustains at least the thread-per-conn
/// throughput at 64.
fn e17() -> Json {
    use epi_audit::{PriorAssumption, Schema};
    use epi_service::{
        AuditService, Client, Request, Response, Server, ServerMode, ServerOptions, ServiceConfig,
    };
    use std::net::{SocketAddr, TcpStream};
    use std::sync::Arc;
    use std::time::Duration;

    const DRIVERS: usize = 8;
    const BATCHES: usize = 6;
    const BATCH: usize = 16;

    fn drive(addr: SocketAddr, run: u64, batches: usize) {
        let handles: Vec<_> = (0..DRIVERS)
            .map(|d| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("driver connect");
                    for b in 0..batches {
                        let requests: Vec<Request> = (0..BATCH)
                            .map(|k| Request::Disclose {
                                user: format!("r{run}d{d}u{k}"),
                                time: (b + 1) as u64,
                                query: "hiv_pos".to_owned(),
                                state_mask: ((b + k) % 3 + 1) as u32,
                                audit_query: "hiv_pos".to_owned(),
                            })
                            .collect();
                        for response in client.pipeline(&requests).expect("pipeline") {
                            assert!(
                                matches!(response, Response::Entry(_)),
                                "e17 disclose failed: {response:?}"
                            );
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("driver thread");
        }
    }

    println!("\n## E17 — concurrent-connection throughput, reactor vs thread-per-conn\n");
    let schema = Schema::from_names(&["hiv_pos", "transfusions", "flu", "diabetes"]).unwrap();
    let mut rows = Vec::new();
    let mut legacy_64 = f64::NAN;
    let mut reactor_2048 = f64::NAN;
    let mut run = 0u64;
    for (mode_tag, mode) in [
        ("reactor", ServerMode::Reactor),
        ("threaded", ServerMode::Threaded),
    ] {
        for conns in [64usize, 512, 2048] {
            run += 1;
            let service = Arc::new(AuditService::new(
                schema.clone(),
                ServiceConfig {
                    assumption: PriorAssumption::Product,
                    workers: 2,
                    ..ServiceConfig::default()
                },
            ));
            let server = Server::spawn_with(
                Arc::clone(&service),
                "127.0.0.1:0",
                ServerOptions {
                    mode,
                    ..ServerOptions::default()
                },
            )
            .expect("bind");
            let addr = server.addr();

            let bytes_before = epi_par::heap_bytes_allocated();
            let idle: Vec<TcpStream> = (0..conns)
                .map(|_| TcpStream::connect(addr).expect("fanout connect"))
                .collect();
            // Let the server finish adopting the fanout before sampling
            // the allocation counter, so setup cost is fully included.
            std::thread::sleep(Duration::from_millis(100 + conns as u64 / 8));
            let bytes_per_conn =
                (epi_par::heap_bytes_allocated() - bytes_before) as f64 / conns as f64;
            let mut probe = Client::connect(addr).expect("probe connect");
            let open = probe.stats().expect("stats").connections_open;
            assert!(
                open as usize > conns,
                "{mode_tag}@{conns}: gauge reads {open} with the fanout open"
            );

            drive(addr, run, 1); // warm caches, sessions, driver paths
            run += 1;
            let t = Instant::now();
            drive(addr, run, BATCHES);
            let wall = t.elapsed().as_secs_f64();
            let decisions = DRIVERS * BATCHES * BATCH;
            let dps = decisions as f64 / wall;
            if mode == ServerMode::Threaded && conns == 64 {
                legacy_64 = dps;
            }
            if mode == ServerMode::Reactor && conns == 2048 {
                reactor_2048 = dps;
            }
            println!(
                "{mode_tag}@{conns}: {decisions} decisions in {:.1}ms ({dps:.0}/sec), \
                 {bytes_per_conn:.0} heap bytes/conn, gauge={open}",
                wall * 1e3
            );
            rows.push(Json::obj([
                ("mode", Json::from(mode_tag)),
                ("connections", Json::from(conns)),
                ("decisions", Json::from(decisions)),
                ("wall_ms", Json::from(wall * 1e3)),
                ("decisions_per_sec", Json::from(dps)),
                ("heap_bytes_per_conn", Json::from(bytes_per_conn)),
                ("connections_open_gauge", Json::from(open)),
            ]));
            drop(idle);
            drop(probe);
            server.shutdown();
        }
    }
    let ratio = reactor_2048 / legacy_64;
    println!(
        "\nreactor@2048 vs threaded@64: {ratio:.2}x \
         (acceptance: reactor under 32x the connections must not lose throughput)"
    );
    Json::obj([
        ("rows", Json::arr(rows)),
        ("reactor_2048_vs_threaded_64", Json::from(ratio)),
        ("meets_acceptance", Json::from(ratio >= 1.0)),
    ])
}

fn e18() -> Json {
    use epi_audit::{PriorAssumption, Schema};
    use epi_faults::StormPlan;
    use epi_json::Serialize;
    use epi_service::{
        AdmissionOptions, AuditService, Client, ClientError, FaultHook, LocalClient, Request,
        Response, RetryPolicy, Server, ServiceConfig,
    };
    use std::sync::Arc;
    use std::time::Duration;

    const ATOMS: [&str; 8] = [
        "hiv_pos",
        "transfusions",
        "flu",
        "diabetes",
        "asthma",
        "anemia",
        "gout",
        "measles",
    ];
    const TOTAL: u64 = 240;
    const SEED: u64 = 0xBEE5;
    const DECISION_COST: Duration = Duration::from_millis(3);

    fn mix(i: u64, salt: u64) -> u64 {
        let mut z =
            SEED ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    // The same seeded storm shape the overload chaos suite replays:
    // skewed users, compound queries, every mask holding the audited
    // property so no request is excused by the negative-result gate.
    fn request(plan: &StormPlan, i: u64) -> Request {
        let a = ATOMS[mix(i, 1) as usize % ATOMS.len()];
        let b = ATOMS[mix(i, 2) as usize % ATOMS.len()];
        let op = if mix(i, 3).is_multiple_of(2) {
            '&'
        } else {
            '|'
        };
        Request::Disclose {
            user: format!("u{}", plan.user(i)),
            time: i + 1,
            query: if a == b {
                a.to_owned()
            } else {
                format!("{a} {op} {b}")
            },
            state_mask: plan.state_mask(i, 8) | 1,
            audit_query: "hiv_pos".to_owned(),
        }
    }

    fn service() -> Arc<AuditService> {
        let hook: FaultHook = Arc::new(|_key| std::thread::sleep(DECISION_COST));
        Arc::new(AuditService::with_fault_hook(
            Schema::from_names(&ATOMS).unwrap(),
            ServiceConfig {
                assumption: PriorAssumption::Product,
                workers: 2,
                retry_after_ms: 5,
                admission: AdmissionOptions {
                    target_wait_micros: 2_000,
                    min_limit: 2,
                    max_limit: 8,
                    ..AdmissionOptions::default()
                },
                ..ServiceConfig::default()
            },
            Some(hook),
        ))
    }

    println!("\n## E18 — goodput under a 4x-capacity request storm\n");
    let plan = StormPlan::new(SEED);

    // Unloaded reference: every request in order against an idle twin.
    let mut sequential = LocalClient::new(service());
    let t = Instant::now();
    let baseline: Vec<String> = (0..TOTAL)
        .map(|i| match sequential.call(&request(&plan, i)) {
            Ok(Response::Entry(entry)) => entry.to_json().render(),
            other => panic!("e18 baseline request {i} got {other:?}"),
        })
        .collect();
    let baseline_wall = t.elapsed().as_secs_f64();

    let storm_service = service();
    let server = Server::spawn(Arc::clone(&storm_service), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let t = Instant::now();
    let handles: Vec<_> = (0..plan.users)
        .map(|user_id| {
            let work: Vec<u64> = (0..TOTAL).filter(|&i| plan.user(i) == user_id).collect();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr)
                        .expect("storm connect")
                        .with_retry(RetryPolicy {
                            max_attempts: 8,
                            base_ms: 1,
                            cap_ms: 10,
                            seed: SEED ^ ((user_id + 1) << 32),
                        });
                let plan = StormPlan::new(SEED);
                let mut landed: Vec<(u64, String)> = Vec::new();
                for i in work {
                    match client.call(&request(&plan, i)) {
                        Ok(Response::Entry(entry)) => {
                            landed.push((i, entry.to_json().render()));
                        }
                        Ok(other) => panic!("e18 storm request {i} got {other:?}"),
                        Err(ClientError::Remote { .. }) => {}
                        Err(e) => panic!("e18 transport failure: {e}"),
                    }
                }
                landed
            })
        })
        .collect();
    let mut landed = 0u64;
    let mut divergent = 0u64;
    for handle in handles {
        for (i, bytes) in handle.join().expect("storm driver") {
            landed += 1;
            if bytes != baseline[i as usize] {
                divergent += 1;
            }
        }
    }
    let storm_wall = t.elapsed().as_secs_f64();
    let stats = storm_service.metrics();
    server.shutdown();

    let goodput = landed as f64 / TOTAL as f64;
    println!(
        "storm: {landed}/{TOTAL} landed ({:.0}% goodput) in {:.0}ms \
         (baseline {:.0}ms), {divergent} divergent verdicts",
        goodput * 100.0,
        storm_wall * 1e3,
        baseline_wall * 1e3
    );
    println!(
        "rejects: limit={} degraded={} fairness={} deadline={} (requests={} for {TOTAL} disclosures)",
        stats.admission_rejects_limit,
        stats.admission_rejects_degraded,
        stats.admission_rejects_fairness,
        stats.admission_rejects_deadline,
        stats.requests
    );
    Json::obj([
        ("seed", Json::from(SEED)),
        ("total", Json::from(TOTAL)),
        ("landed", Json::from(landed)),
        ("goodput", Json::from(goodput)),
        ("divergent_verdicts", Json::from(divergent)),
        ("storm_wall_ms", Json::from(storm_wall * 1e3)),
        ("baseline_wall_ms", Json::from(baseline_wall * 1e3)),
        ("requests_with_retries", Json::from(stats.requests)),
        ("rejects_limit", Json::from(stats.admission_rejects_limit)),
        (
            "rejects_degraded",
            Json::from(stats.admission_rejects_degraded),
        ),
        (
            "meets_acceptance",
            Json::from(goodput >= 0.7 && divergent == 0),
        ),
    ])
}

fn e19() -> Json {
    use epi_audit::{PriorAssumption, Schema};
    use epi_service::{
        AuditService, BudgetOptions, ErrorCode, LocalClient, Request, Response, ServiceConfig,
    };
    use std::sync::Arc;

    const ATOMS: [&str; 8] = [
        "hiv_pos",
        "transfusions",
        "flu",
        "diabetes",
        "asthma",
        "anemia",
        "gout",
        "measles",
    ];
    const FULL_SOLVES: u64 = 64;
    const DENIALS: u64 = 20_000;

    println!("\n## E19 — O(1) exhausted-user denial vs the full solver path\n");

    let service = Arc::new(AuditService::new(
        Schema::from_names(&ATOMS).unwrap(),
        ServiceConfig {
            assumption: PriorAssumption::Product,
            workers: 2,
            budget: BudgetOptions {
                cap_micros: 2_000_000,
                ..BudgetOptions::default()
            },
            ..ServiceConfig::default()
        },
    ));
    let mut client = LocalClient::new(Arc::clone(&service));

    // Full-solve reference: one fresh user per request and 64 distinct
    // `a & b` formulas (the diagonal collapses to the single atom), so
    // every disclosure misses the verdict cache and walks the whole
    // pipeline — compile, solve, certify, ledger fold.
    let decide_before = service.metrics().decide_requests;
    let t = Instant::now();
    for i in 0..FULL_SOLVES {
        let (a, b) = (ATOMS[(i % 8) as usize], ATOMS[(i / 8) as usize]);
        let request = Request::Disclose {
            user: format!("s{i}"),
            time: i + 1,
            query: if a == b {
                a.to_owned()
            } else {
                format!("{a} & {b}")
            },
            state_mask: 0xFF,
            audit_query: "hiv_pos".to_owned(),
        };
        match client.call(&request) {
            Ok(Response::Entry(_)) => {}
            other => panic!("e19 full-solve request {i} got {other:?}"),
        }
    }
    let full_wall = t.elapsed().as_secs_f64();
    let full_solves = service.metrics().decide_requests - decide_before;
    assert_eq!(
        full_solves, FULL_SOLVES,
        "every reference request must reach the solver"
    );

    // Exhaust one user: two direct hits at risk 1.0 each spend the whole
    // 2.0 cap, putting the user on the deny threshold.
    for t in 1..=2 {
        let request = Request::Disclose {
            user: "mallory".to_owned(),
            time: t,
            query: "hiv_pos".to_owned(),
            state_mask: 0xFF,
            audit_query: "hiv_pos".to_owned(),
        };
        match client.call(&request) {
            Ok(Response::Entry(_)) => {}
            other => panic!("e19 exhaustion disclosure {t} got {other:?}"),
        }
    }

    // Denial phase: every further request from the exhausted user must
    // be refused in O(1) — a session read and a threshold compare —
    // before the solver queue, so `decide_requests` stays flat.
    let decide_before = service.metrics().decide_requests;
    let denial = Request::Disclose {
        user: "mallory".to_owned(),
        time: 3,
        query: "hiv_pos | transfusions".to_owned(),
        state_mask: 0xFF,
        audit_query: "hiv_pos".to_owned(),
    };
    let t = Instant::now();
    for i in 0..DENIALS {
        match client.call(&denial) {
            Ok(Response::Error {
                code: ErrorCode::BudgetExhausted,
                ..
            }) => {}
            other => panic!("e19 denial {i} got {other:?}"),
        }
    }
    let denial_wall = t.elapsed().as_secs_f64();
    let stats = service.metrics();
    let decide_flat = stats.decide_requests == decide_before;

    let full_per_sec = full_solves as f64 / full_wall;
    let denials_per_sec = DENIALS as f64 / denial_wall;
    let speedup = denials_per_sec / full_per_sec;
    println!(
        "full solver path: {full_solves} disclosures in {:.1}ms ({full_per_sec:.0}/s)",
        full_wall * 1e3
    );
    println!(
        "exhausted-user denials: {DENIALS} in {:.1}ms ({denials_per_sec:.0}/s), \
         {speedup:.0}x the full path, decide_requests flat: {decide_flat}",
        denial_wall * 1e3
    );
    assert_eq!(
        stats.budget_exhausted_denials, DENIALS,
        "every denial must be counted"
    );
    Json::obj([
        ("full_solves", Json::from(full_solves)),
        ("full_wall_ms", Json::from(full_wall * 1e3)),
        ("full_solves_per_sec", Json::from(full_per_sec)),
        ("denials", Json::from(DENIALS)),
        ("denial_wall_ms", Json::from(denial_wall * 1e3)),
        ("denials_per_sec", Json::from(denials_per_sec)),
        ("fast_path_speedup", Json::from(speedup)),
        ("decide_requests_flat", Json::from(decide_flat)),
        (
            "meets_acceptance",
            Json::from(decide_flat && speedup >= 1.0),
        ),
    ])
}

/// Safety-gap Bernstein tensor of a random pair over `{0,1}ⁿ` — the same
/// construction the `e20_kernels` criterion bench uses, so the ns/elem
/// rows here and there measure the same data shape.
fn gap_tensor(n: usize) -> Vec<f64> {
    let cube = Cube::new(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(20 + n as u64);
    let a = generate::random_nonempty_set(&cube, 0.4, &mut rng);
    let b = generate::random_nonempty_set(&cube, 0.4, &mut rng);
    let pow3 = indicator::safety_gap_pow3::<f64>(n, &a, &b);
    let mut bern = epi_solver::bernstein::DenseTensor::from_dense_pow3(&pow3)
        .coeffs()
        .to_vec();
    subdivision::pow3_to_bernstein(&mut bern, n);
    bern
}

/// Kernel ns/element across tensor sizes and every ISA this build and
/// CPU provide. All four kernels are linear passes over the `3ⁿ` tensor
/// (the probe `n`-linear), so ns/elem makes sizes comparable and the
/// ISA axis shows what the `simd` feature buys at each one.
fn e20_kernel_rows() -> Json {
    let mut rows = Vec::new();
    for n in [6usize, 9, 10] {
        let bern = gap_tensor(n);
        let len = bern.len();
        // Enough repetitions per timed pass that even the fastest
        // kernel×size cell is far above timer resolution.
        let reps = (1usize << 21) / len + 1;
        let axis = n / 2;
        for isa in [
            subdivision::Isa::Scalar,
            subdivision::Isa::Sse2,
            subdivision::Isa::Avx2,
        ] {
            if subdivision::force_isa(Some(isa)) != isa {
                continue; // not provided by this build / CPU
            }
            let per_elem = |wall_ms: f64| wall_ms * 1e6 / (reps * len) as f64;
            let range = per_elem(time_ms(|| {
                for _ in 0..reps {
                    black_box(subdivision::coefficient_range(black_box(&bern)));
                }
            }));
            let widest = per_elem(time_ms(|| {
                for _ in 0..reps {
                    black_box(subdivision::widest_derivative_axis(black_box(&bern), n));
                }
            }));
            let mut scratch = Vec::new();
            let probe = per_elem(time_ms(|| {
                for _ in 0..reps {
                    black_box(subdivision::midpoint_and_split_axis(
                        black_box(&bern),
                        n,
                        &mut scratch,
                    ));
                }
            }));
            let (mut l, mut r) = (Vec::new(), Vec::new());
            let split = per_elem(time_ms(|| {
                for _ in 0..reps {
                    black_box(subdivision::split_halves_min(
                        black_box(&bern),
                        n,
                        axis,
                        &mut l,
                        &mut r,
                    ));
                }
            }));
            println!(
                "n={n} ({len} elems) {}: range={range:.3} widest={widest:.3} \
                 probe={probe:.3} split={split:.3} ns/elem",
                isa.label()
            );
            rows.push(Json::obj([
                ("n", Json::from(n)),
                ("elems", Json::from(len)),
                ("isa", Json::from(isa.label())),
                ("coefficient_range_ns_per_elem", Json::from(range)),
                ("widest_derivative_axis_ns_per_elem", Json::from(widest)),
                ("midpoint_and_split_axis_ns_per_elem", Json::from(probe)),
                ("split_halves_min_ns_per_elem", Json::from(split)),
            ]));
        }
        subdivision::force_isa(None);
    }
    Json::arr(rows)
}

/// The PR 5 recording this PR's acceptance is measured against:
/// aggregate single-thread boxes/sec over the same adversarial family.
fn pr5_e15_baseline(path: &str) -> Option<f64> {
    let doc = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
    doc.get("e15_aggregate_boxes_per_sec_1t")
        .and_then(Json::as_f64)
}

/// E20 — the PR 10 tentpole measurement: single-core boxes/sec on the
/// adversarial hard family through the batched SoA wave sweep, under the
/// forced-scalar kernels and under the build's best ISA, against the
/// box-at-a-time path (`wave_batch: false`, the PR 5 shape) and against
/// the committed `BENCH_PR5.json` aggregate. Acceptance: the batched
/// best-ISA aggregate reaches ≥ 1.5x the PR 5 recording. With threads=1
/// the run pins one core, so every boxes/sec figure here *is* the
/// per-core figure the bench gate consumes.
///
/// Returns `(json, scalar_bps, active_bps)` so `main` can surface the
/// per-core gate baselines for both feature configurations.
fn e20(pr5_path: &str) -> (Json, f64, f64) {
    println!("\n## E20 — SIMD microkernels and batched wave throughput (single core)\n");
    let kernel_rows = e20_kernel_rows();
    let active = subdivision::active_isa();
    println!("\nbest ISA this build/CPU: {}\n", active.label());

    let mut rows = Vec::new();
    let mut total_boxes = 0.0f64;
    let mut secs_scalar = 0.0f64;
    let mut secs_active = 0.0f64;
    let mut secs_unbatched = 0.0f64;
    for (name, cube, a, b, max_boxes) in e15_instances() {
        let batched = ProductSolverOptions {
            max_boxes,
            coordinate_ascent: false,
            sos_fallback: false,
            subdivision: SubdivisionMode::Incremental,
            threads: 1,
            ..Default::default()
        };
        let unbatched = ProductSolverOptions {
            wave_batch: false,
            ..batched
        };
        // Forced-scalar batched: what a no-`simd` build measures.
        subdivision::force_isa(Some(subdivision::Isa::Scalar));
        let (v_scalar, stats) = decide_product_safety(&cube, &a, &b, batched);
        let wall_scalar = time_ms(|| {
            let _ = decide_product_safety(&cube, &a, &b, batched);
        });
        subdivision::force_isa(None);
        // Best-ISA batched (the tentpole) and best-ISA unbatched (the
        // PR 5 evaluation shape on today's kernels).
        let (v_active, _) = decide_product_safety(&cube, &a, &b, batched);
        let wall_active = time_ms(|| {
            let _ = decide_product_safety(&cube, &a, &b, batched);
        });
        let (v_unbatched, _) = decide_product_safety(&cube, &a, &b, unbatched);
        let wall_unbatched = time_ms(|| {
            let _ = decide_product_safety(&cube, &a, &b, unbatched);
        });
        assert!(
            verdict_tag(&v_scalar) == verdict_tag(&v_active)
                && verdict_tag(&v_active) == verdict_tag(&v_unbatched),
            "{name}: ISA and batching must not change the verdict"
        );
        let boxes = stats.boxes_processed;
        total_boxes += boxes as f64;
        secs_scalar += wall_scalar / 1e3;
        secs_active += wall_active / 1e3;
        secs_unbatched += wall_unbatched / 1e3;
        let bps = |wall_ms: f64| boxes as f64 / (wall_ms / 1e3);
        println!(
            "{name} (n={}, {} boxes, {}): scalar={:.0} {}={:.0} unbatched_{}={:.0} boxes/sec",
            cube.dims(),
            boxes,
            verdict_tag(&v_active),
            bps(wall_scalar),
            active.label(),
            bps(wall_active),
            active.label(),
            bps(wall_unbatched),
        );
        rows.push(Json::obj([
            ("instance", Json::from(name.as_str())),
            ("n", Json::from(cube.dims())),
            ("boxes_processed", Json::from(boxes)),
            ("verdict", Json::from(verdict_tag(&v_active))),
            ("batched_scalar_boxes_per_sec", Json::from(bps(wall_scalar))),
            (
                "batched_best_isa_boxes_per_sec",
                Json::from(bps(wall_active)),
            ),
            (
                "unbatched_best_isa_boxes_per_sec",
                Json::from(bps(wall_unbatched)),
            ),
        ]));
    }
    let scalar_bps = total_boxes / secs_scalar;
    let active_bps = total_boxes / secs_active;
    let unbatched_bps = total_boxes / secs_unbatched;
    println!(
        "\naggregate 1t: batched_scalar={scalar_bps:.0} batched_{}={active_bps:.0} \
         unbatched_{}={unbatched_bps:.0} boxes/sec (batching buys {:.2}x)",
        active.label(),
        active.label(),
        active_bps / unbatched_bps
    );
    let mut fields = vec![
        ("kernels", kernel_rows),
        ("best_isa", Json::from(active.label())),
        ("threads_effective", Json::from(1usize)),
        ("instances", Json::arr(rows)),
        (
            "batched_scalar_boxes_per_sec_per_core_1t",
            Json::from(scalar_bps),
        ),
        (
            "batched_best_isa_boxes_per_sec_per_core_1t",
            Json::from(active_bps),
        ),
        (
            "unbatched_best_isa_boxes_per_sec_per_core_1t",
            Json::from(unbatched_bps),
        ),
        ("batching_speedup", Json::from(active_bps / unbatched_bps)),
    ];
    if let Some(pr5) = pr5_e15_baseline(pr5_path) {
        let speedup = active_bps / pr5;
        println!(
            "vs PR5 recording ({pr5:.0} boxes/sec): {speedup:.2}x \
             (acceptance: >= 1.50x on the batched best-ISA path)"
        );
        fields.push(("pr5_boxes_per_sec_1t", Json::from(pr5)));
        fields.push(("speedup_vs_pr5_1t", Json::from(speedup)));
        fields.push(("meets_acceptance", Json::from(speedup >= 1.5)));
    } else {
        println!("(no {pr5_path}; speedup-vs-PR5 fields omitted)");
    }
    (Json::obj(fields), scalar_bps, active_bps)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let baseline_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    println!("# Perf trajectory — PR 10 SIMD microkernels and batched wave sweeps");
    println!("available_parallelism={cores}");

    let e8_configs: Vec<(&str, ProductSolverOptions)> = vec![
        (
            "legacy_seq",
            ProductSolverOptions {
                dense_kernel: false,
                threads: 1,
                ..Default::default()
            },
        ),
        (
            "dense_1t",
            ProductSolverOptions {
                threads: 1,
                ..Default::default()
            },
        ),
        (
            "dense_8t",
            ProductSolverOptions {
                threads: 8,
                ..Default::default()
            },
        ),
    ];
    let e8_json = e8(&e8_configs);
    let e12_json = e12();
    let (e14_json, aggregate) = e14();
    let (e15_json, e15_bps, e15_speedup) = e15(&baseline_path);
    let e16_json = e16();
    let e17_json = e17();
    let e18_json = e18();
    let e19_json = e19();
    let (e20_json, gate_scalar_bps, gate_simd_bps) = e20("BENCH_PR5.json");

    let mut fields = vec![
        ("pr", Json::from(10usize)),
        ("generated_by", Json::from("perf_trajectory")),
        ("available_parallelism", Json::from(cores)),
        (
            "pool_default_threads",
            Json::from(epi_par::Pool::global().threads()),
        ),
        (
            "note",
            Json::from(
                "baseline legacy_seq is the pre-engine solver (BTreeMap rational gap \
                 assembly, one thread); E15 compares the incremental Bernstein \
                 subdivision engine against recompute-per-box and the committed \
                 BENCH_PR2.json dense_1t numbers. On a single-core container the \
                 thread sweep is flat and all speedup is algorithmic; allocs/box is \
                 measured by the counting global allocator over a warm (second) solve. \
                 E16 measures end-to-end disclosure throughput with the write-ahead \
                 disclosure log off (volatile), group-committed every 100ms, and \
                 fsynced on every acknowledgement; fsync cost is storage-dependent, \
                 so read the slowdown ratios, not the absolute numbers. E17 measures \
                 the TCP front-end: aggregate pipelined-disclose throughput and heap \
                 bytes per connection for the readiness reactor vs the \
                 thread-per-connection fallback at a 64/512/2048-connection fanout. \
                 E18 storms a daemon whose per-decision cost is pinned at 3ms with \
                 ~4x its capacity and reports goodput (acknowledged / offered) under \
                 AIMD admission control plus per-reason rejects; every acknowledged \
                 verdict is checked byte-identical to an unloaded sequential replay. \
                 E19 compares the O(1) exhausted-user refusal (a session read and a \
                 threshold compare, before the solver queue) against full cache-miss \
                 solves on the same daemon; decide_requests must stay flat across \
                 the denial phase. E20 sweeps the four Bernstein microkernels \
                 (ns/element, scalar vs every ISA the build and CPU provide) and \
                 measures single-core batched-wave throughput on the adversarial \
                 family against the box-at-a-time path and the committed \
                 BENCH_PR5.json aggregate; the bench_gate_baseline fields are the \
                 per-core boxes/sec the CI gate compares against, one per feature \
                 configuration (threads=1, so per-core equals aggregate)",
            ),
        ),
        ("e8", e8_json),
        ("e12", e12_json),
        ("e14", e14_json),
        ("e14_aggregate_speedup_8t", Json::from(aggregate)),
        ("e15", e15_json),
        ("e15_aggregate_boxes_per_sec_1t", Json::from(e15_bps)),
        ("e16", e16_json),
        ("e17", e17_json),
        ("e18", e18_json),
        ("e19", e19_json),
        ("e20", e20_json),
        (
            "bench_gate_baseline_boxes_per_sec_per_core_scalar",
            Json::from(gate_scalar_bps),
        ),
        (
            "bench_gate_baseline_boxes_per_sec_per_core_simd",
            Json::from(gate_simd_bps),
        ),
    ];
    if let Some(s) = e15_speedup {
        fields.push(("e15_aggregate_speedup_vs_pr2", Json::from(s)));
    }
    let doc = Json::obj(fields);
    std::fs::write(&out_path, doc.render() + "\n").expect("write BENCH json");
    println!("\nwrote {out_path}");
}
