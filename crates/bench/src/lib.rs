//! # epi-bench
//!
//! The experiment harness of the `epistemic-privacy` workspace: shared
//! workload builders used by both the Criterion benches (`benches/`, one
//! per experiment of DESIGN.md) and the table-producing `experiments`
//! binary whose output is recorded in EXPERIMENTS.md.

// `deny` rather than `forbid`: the counting-allocator module carries a
// scoped `allow` for its one `GlobalAlloc` impl; everything else stays
// safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;

use epi_boolean::{generate, Cube};
use epi_core::WorldSet;
use rand::Rng;

/// The §1.1 pair over `{0,1}²`: `A` = "Bob is HIV-positive" (bit 1),
/// `B` = "HIV-positive ⟹ transfusions" (bit 0 = transfusions).
pub fn hiv_pair() -> (Cube, WorldSet, WorldSet) {
    let cube = Cube::new(2);
    let a = cube.set_from_masks([0b10, 0b11]);
    let b = cube.set_from_masks([0b00, 0b01, 0b11]);
    (cube, a, b)
}

/// The Remark 5.12 pair over `{0,1}³` (defeats cancellation, is safe).
pub fn remark_5_12_pair() -> (Cube, WorldSet, WorldSet) {
    let cube = Cube::new(3);
    let a = cube.set_from_masks([0b011, 0b100, 0b110, 0b111]);
    let b = cube.set_from_masks([0b010, 0b101, 0b110, 0b111]);
    (cube, a, b)
}

/// Tensors two pairs on disjoint coordinate blocks: a world of the
/// composed cube is `w = w_hi · 2^{n_lo} + w_lo`, and membership requires
/// both block projections to be members. Under a product prior the block
/// probabilities multiply, so a tensor of safe pairs is safe
/// (`Pr[Aᵢ∩Bᵢ] ≤ Pr[Aᵢ]·Pr[Bᵢ]` per block, all factors non-negative),
/// while the gap inherits each block's vanishing surfaces — which is what
/// makes the composed instances hard to prune.
pub fn tensor_pair(
    lo: &(Cube, WorldSet, WorldSet),
    hi: &(Cube, WorldSet, WorldSet),
) -> (Cube, WorldSet, WorldSet) {
    let (cl, al, bl) = lo;
    let (ch, ah, bh) = hi;
    let nl = cl.dims();
    let cube = Cube::new(nl + ch.dims());
    let member = |s_lo: &WorldSet, s_hi: &WorldSet, w: u32| {
        s_lo.contains(epi_core::WorldId(w & ((1u32 << nl) - 1)))
            && s_hi.contains(epi_core::WorldId(w >> nl))
    };
    let a = cube.set_from_predicate(|w| member(al, ah, w));
    let b = cube.set_from_predicate(|w| member(bl, bh, w));
    (cube, a, b)
}

/// The E14 hard family: Remark 5.12 blocks composed on disjoint
/// variables via [`tensor_pair`]. Every instance is safe for all product
/// priors, defeats the criterion stages, and has a gap vanishing on
/// interior surfaces — the branch-and-bound must grind through its whole
/// frontier, which is exactly the workload the parallel engine targets.
pub fn hard_family() -> Vec<(&'static str, Cube, WorldSet, WorldSet)> {
    let r = remark_5_12_pair();
    let h = hiv_pair();
    let (c5, a5, b5) = tensor_pair(&r, &h);
    let double = tensor_pair(&r, &r);
    let (c9, a9, b9) = tensor_pair(&double, &r);
    let (c6, a6, b6) = double;
    vec![
        ("r512xhiv_n5", c5, a5, b5),
        ("r512x2_n6", c6, a6, b6),
        ("r512x3_n9", c9, a9, b9),
    ]
}

/// The workload mixes of experiment E7: each generator produces `(A, B)`
/// pairs of a named shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairShape {
    /// Independent uniform-density random sets.
    Random,
    /// `A` up-closure, `B` complement of an up-closure (Remark 5.6 shape).
    MonotoneNo,
    /// `B` strongly correlated with `A`.
    Correlated,
    /// `B` an implication `atom ⟹ atom` (the §1.1 shape).
    Implication,
}

impl PairShape {
    /// All shapes, for sweep loops.
    pub fn all() -> [PairShape; 4] {
        [
            PairShape::Random,
            PairShape::MonotoneNo,
            PairShape::Correlated,
            PairShape::Implication,
        ]
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            PairShape::Random => "random",
            PairShape::MonotoneNo => "monotone-no",
            PairShape::Correlated => "correlated",
            PairShape::Implication => "implication",
        }
    }

    /// Draws one pair of this shape.
    pub fn sample(self, cube: &Cube, rng: &mut impl Rng) -> (WorldSet, WorldSet) {
        match self {
            PairShape::Random => (
                generate::random_nonempty_set(cube, 0.4, rng),
                generate::random_nonempty_set(cube, 0.4, rng),
            ),
            PairShape::MonotoneNo => {
                let a = cube.up_closure(&generate::random_set(cube, 0.15, rng));
                let b = cube
                    .up_closure(&generate::random_set(cube, 0.15, rng))
                    .complement();
                (nonempty(cube, a, rng), nonempty(cube, b, rng))
            }
            PairShape::Correlated => generate::correlated_pair(cube, 0.4, 0.7, rng),
            PairShape::Implication => (
                generate::random_nonempty_set(cube, 0.4, rng),
                generate::random_implication(cube, rng),
            ),
        }
    }
}

fn nonempty(cube: &Cube, mut s: WorldSet, rng: &mut impl Rng) -> WorldSet {
    if s.is_empty() {
        s.insert(epi_core::WorldId(rng.gen_range(0..cube.size() as u32)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixtures_are_the_paper_pairs() {
        let (_, a, b) = hiv_pair();
        assert!(epi_core::unrestricted::safe_unrestricted(&a, &b));
        let (cube, a, b) = remark_5_12_pair();
        assert!(!epi_boolean::criteria::cancellation::cancellation(
            &cube, &a, &b
        ));
    }

    #[test]
    fn hard_family_composes_safe_blocks() {
        for (name, cube, a, b) in hard_family() {
            assert!(!a.is_empty() && !b.is_empty(), "{name}");
            assert_eq!(a.universe_size(), cube.size(), "{name}");
            // Tensoring preserves block safety, so the solver must never
            // refute these pairs — though it may (and on the larger
            // instances does) run out of budget, which is the point: the
            // family exists to keep the branch-and-bound busy.
            if cube.dims() <= 6 {
                let (verdict, _) = epi_solver::decide_product_safety(
                    &cube,
                    &a,
                    &b,
                    epi_solver::ProductSolverOptions {
                        max_boxes: 500,
                        sos_fallback: false,
                        ..Default::default()
                    },
                );
                assert!(
                    !matches!(verdict, epi_solver::Verdict::Unsafe(_)),
                    "{name}: tensor of safe pairs cannot be refuted"
                );
            }
        }
    }

    #[test]
    fn shapes_sample_nonempty() {
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(271);
        for shape in PairShape::all() {
            for _ in 0..20 {
                let (a, b) = shape.sample(&cube, &mut rng);
                assert!(!a.is_empty() && !b.is_empty(), "{}", shape.label());
            }
        }
    }
}
