//! # epi-bench
//!
//! The experiment harness of the `epistemic-privacy` workspace: shared
//! workload builders used by both the Criterion benches (`benches/`, one
//! per experiment of DESIGN.md) and the table-producing `experiments`
//! binary whose output is recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use epi_boolean::{generate, Cube};
use epi_core::WorldSet;
use rand::Rng;

/// The §1.1 pair over `{0,1}²`: `A` = "Bob is HIV-positive" (bit 1),
/// `B` = "HIV-positive ⟹ transfusions" (bit 0 = transfusions).
pub fn hiv_pair() -> (Cube, WorldSet, WorldSet) {
    let cube = Cube::new(2);
    let a = cube.set_from_masks([0b10, 0b11]);
    let b = cube.set_from_masks([0b00, 0b01, 0b11]);
    (cube, a, b)
}

/// The Remark 5.12 pair over `{0,1}³` (defeats cancellation, is safe).
pub fn remark_5_12_pair() -> (Cube, WorldSet, WorldSet) {
    let cube = Cube::new(3);
    let a = cube.set_from_masks([0b011, 0b100, 0b110, 0b111]);
    let b = cube.set_from_masks([0b010, 0b101, 0b110, 0b111]);
    (cube, a, b)
}

/// The workload mixes of experiment E7: each generator produces `(A, B)`
/// pairs of a named shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairShape {
    /// Independent uniform-density random sets.
    Random,
    /// `A` up-closure, `B` complement of an up-closure (Remark 5.6 shape).
    MonotoneNo,
    /// `B` strongly correlated with `A`.
    Correlated,
    /// `B` an implication `atom ⟹ atom` (the §1.1 shape).
    Implication,
}

impl PairShape {
    /// All shapes, for sweep loops.
    pub fn all() -> [PairShape; 4] {
        [
            PairShape::Random,
            PairShape::MonotoneNo,
            PairShape::Correlated,
            PairShape::Implication,
        ]
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            PairShape::Random => "random",
            PairShape::MonotoneNo => "monotone-no",
            PairShape::Correlated => "correlated",
            PairShape::Implication => "implication",
        }
    }

    /// Draws one pair of this shape.
    pub fn sample(self, cube: &Cube, rng: &mut impl Rng) -> (WorldSet, WorldSet) {
        match self {
            PairShape::Random => (
                generate::random_nonempty_set(cube, 0.4, rng),
                generate::random_nonempty_set(cube, 0.4, rng),
            ),
            PairShape::MonotoneNo => {
                let a = cube.up_closure(&generate::random_set(cube, 0.15, rng));
                let b = cube
                    .up_closure(&generate::random_set(cube, 0.15, rng))
                    .complement();
                (nonempty(cube, a, rng), nonempty(cube, b, rng))
            }
            PairShape::Correlated => generate::correlated_pair(cube, 0.4, 0.7, rng),
            PairShape::Implication => (
                generate::random_nonempty_set(cube, 0.4, rng),
                generate::random_implication(cube, rng),
            ),
        }
    }
}

fn nonempty(cube: &Cube, mut s: WorldSet, rng: &mut impl Rng) -> WorldSet {
    if s.is_empty() {
        s.insert(epi_core::WorldId(rng.gen_range(0..cube.size() as u32)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixtures_are_the_paper_pairs() {
        let (_, a, b) = hiv_pair();
        assert!(epi_core::unrestricted::safe_unrestricted(&a, &b));
        let (cube, a, b) = remark_5_12_pair();
        assert!(!epi_boolean::criteria::cancellation::cancellation(
            &cube, &a, &b
        ));
    }

    #[test]
    fn shapes_sample_nonempty() {
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(271);
        for shape in PairShape::all() {
            for _ in 0..20 {
                let (a, b) = shape.sample(&cube, &mut rng);
                assert!(!a.is_empty() && !b.is_empty(), "{}", shape.label());
            }
        }
    }
}
