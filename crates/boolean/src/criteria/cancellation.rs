//! The cancellation criterion (Proposition 5.9) — the paper's headline
//! sufficient test for product-distribution safety.
//!
//! For a product distribution `P` the safety gap factors through the
//! standard identity
//!
//! ```text
//! P[A]·P[B] − P[AB]  =  P[AB̄]·P[ĀB] − P[AB]·P[ĀB̄]
//! ```
//!
//! and each product `P[X]·P[Y]` expands into monomials indexed by match
//! vectors: the pair `(u, v)` contributes
//! `μ_w(p) = Π pᵢ² / (1−pᵢ)² / pᵢ(1−pᵢ)` according to `Match(u, v) = w`.
//! Cancelling identical monomials, the gap is
//!
//! ```text
//! Σ_w ( |AB̄×ĀB ∩ Circ(w)| − |AB×ĀB̄ ∩ Circ(w)| ) · μ_w(p)
//! ```
//!
//! Since every `μ_w(p) ≥ 0` on `[0,1]ⁿ`, non-negativity of every coefficient
//! is sufficient for `Safe_{Π_m⁰}(A, B)`:
//!
//! ```text
//! ∀ w ∈ {0,1,*}ⁿ:  |AB̄×ĀB ∩ Circ(w)|  ≥  |AB×ĀB̄ ∩ Circ(w)|
//! ```
//!
//! The criterion is *not* necessary (Remark 5.12), but strictly subsumes
//! both the Miklau–Suciu and the monotonicity criteria (Theorem 5.11).

use super::Regions;
use crate::cube::Cube;
use crate::match_vec::{circ_count_single, circ_counts, MatchVector};
use epi_core::WorldSet;
use std::collections::HashMap;

/// Tests the cancellation criterion of Proposition 5.9. `true` certifies
/// `Safe_{Π_m⁰}(A, B)`; `false` is inconclusive.
pub fn cancellation(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    let r = Regions::new(cube, a, b);
    cancellation_on_regions(&r)
}

/// [`cancellation`] on a precomputed region partition.
pub fn cancellation_on_regions(r: &Regions) -> bool {
    // Positive-coefficient pairs: AB̄ × ĀB; negative: AB × ĀB̄.
    let neg = circ_counts(&r.ab, &r.neither);
    if neg.is_empty() {
        return true; // no negative monomials at all
    }
    let pos = circ_counts(&r.a_not_b, &r.b_not_a);
    neg.iter()
        .all(|(w, &c)| pos.get(w).copied().unwrap_or(0) >= c)
}

/// A match vector whose monomial coefficient is negative, refuting the
/// criterion (not necessarily refuting safety — see Remark 5.12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Deficit {
    /// The offending match vector.
    pub vector: MatchVector,
    /// `|AB̄×ĀB ∩ Circ(w)|`.
    pub positive: u64,
    /// `|AB×ĀB̄ ∩ Circ(w)|`.
    pub negative: u64,
}

/// Full report: every match vector with a strictly negative coefficient.
/// Empty ⟺ the criterion holds.
pub fn cancellation_deficits(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Vec<Deficit> {
    let r = Regions::new(cube, a, b);
    let pos = circ_counts(&r.a_not_b, &r.b_not_a);
    let neg = circ_counts(&r.ab, &r.neither);
    let mut out: Vec<Deficit> = neg
        .iter()
        .filter_map(|(w, &c)| {
            let p = pos.get(w).copied().unwrap_or(0);
            (p < c).then_some(Deficit {
                vector: *w,
                positive: p,
                negative: c,
            })
        })
        .collect();
    out.sort_by_key(|d| (d.vector.stars, d.vector.values));
    out
}

/// The signed coefficient table of the expanded gap polynomial, keyed by
/// match vector: `coeff(w) = |AB̄×ĀB ∩ Circ(w)| − |AB×ĀB̄ ∩ Circ(w)|`.
/// Used by `epi-solver` to hand the exact polynomial to the algebraic
/// back-ends.
pub fn gap_coefficients(cube: &Cube, a: &WorldSet, b: &WorldSet) -> HashMap<MatchVector, i64> {
    let r = Regions::new(cube, a, b);
    let pos = circ_counts(&r.a_not_b, &r.b_not_a);
    let neg = circ_counts(&r.ab, &r.neither);
    let mut out: HashMap<MatchVector, i64> = HashMap::new();
    for (w, c) in pos {
        *out.entry(w).or_insert(0) += c as i64;
    }
    for (w, c) in neg {
        *out.entry(w).or_insert(0) -= c as i64;
    }
    out.retain(|_, c| *c != 0);
    out
}

/// Naive evaluation of Proposition 5.9 — an explicit `3ⁿ` loop over match
/// vectors with per-vector pair scans. Quadratically slower than
/// [`cancellation`]; retained as the benchmark ablation baseline.
pub fn cancellation_naive(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    let r = Regions::new(cube, a, b);
    for w in MatchVector::all(cube.dims()) {
        let pos = circ_count_single(w, &r.a_not_b, &r.b_not_a);
        let neg = circ_count_single(w, &r.ab, &r.neither);
        if pos < neg {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::ProductDist;
    use epi_core::world::all_nonempty_subsets;
    use rand::{Rng, SeedableRng};

    #[test]
    fn remark_5_12_counterexample() {
        // A = {011, 100, 110, 111}, B = {010, 101, 110, 111}: the criterion
        // fails at w = *** with counts 0 vs 2, yet Safe_{Π_m⁰}(A,B) holds.
        let cube = Cube::new(3);
        let a = cube.set_from_masks([0b011, 0b100, 0b110, 0b111]);
        let b = cube.set_from_masks([0b010, 0b101, 0b110, 0b111]);
        assert!(!cancellation(&cube, &a, &b));
        let deficits = cancellation_deficits(&cube, &a, &b);
        let all_stars = MatchVector::new(0b111, 0);
        let d = deficits
            .iter()
            .find(|d| d.vector == all_stars)
            .expect("deficit at ***");
        assert_eq!(d.positive, 0);
        assert_eq!(d.negative, 2);
        // Numerical evidence of actual safety (exact proof in epi-solver):
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        for _ in 0..20_000 {
            let p = ProductDist::random(3, &mut rng);
            assert!(
                p.prob(&a.intersection(&b)) <= p.prob(&a) * p.prob(&b) + 1e-12,
                "breach at {:?}",
                p.probs()
            );
        }
    }

    #[test]
    fn criterion_soundness_sampled() {
        // Whenever the criterion passes, no sampled product prior breaches.
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let mut accepted = 0;
        while accepted < 30 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            if !cancellation(&cube, &a, &b) {
                continue;
            }
            accepted += 1;
            for _ in 0..200 {
                let p = ProductDist::random(4, &mut rng);
                assert!(
                    p.prob(&a.intersection(&b)) <= p.prob(&a) * p.prob(&b) + 1e-12,
                    "criterion accepted a breachable pair A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn grouped_matches_naive() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(59);
        for _ in 0..200 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            assert_eq!(
                cancellation(&cube, &a, &b),
                cancellation_naive(&cube, &a, &b),
                "A={a:?} B={b:?}"
            );
        }
    }

    #[test]
    fn gap_coefficients_evaluate_to_gap() {
        // Σ coeff(w)·μ_w(p) must equal P[A]P[B] − P[AB] for sampled p.
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        for _ in 0..50 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            let coeffs = gap_coefficients(&cube, &a, &b);
            let p = ProductDist::random(3, &mut rng);
            let mu = |w: &MatchVector| -> f64 {
                (0..3)
                    .map(|i| {
                        let pi = p.probs()[i];
                        if w.stars >> i & 1 == 1 {
                            pi * (1.0 - pi)
                        } else if w.values >> i & 1 == 1 {
                            pi * pi
                        } else {
                            (1.0 - pi) * (1.0 - pi)
                        }
                    })
                    .product()
            };
            let via_coeffs: f64 = coeffs.iter().map(|(w, &c)| c as f64 * mu(w)).sum();
            let direct = p.prob(&a) * p.prob(&b) - p.prob(&a.intersection(&b));
            assert!(
                (via_coeffs - direct).abs() < 1e-10,
                "expansion mismatch: {via_coeffs} vs {direct}"
            );
        }
    }

    #[test]
    fn trivial_cases() {
        let cube = Cube::new(2);
        // B = Ω: disclosing a tautology is always certified.
        for a in all_nonempty_subsets(4) {
            assert!(cancellation(&cube, &a, &cube.full_set()));
        }
        // A ∩ B = ∅ with A ∪ B = Ω.
        let a = cube.set_from_masks([0b00, 0b01]);
        let b = a.complement();
        assert!(cancellation(&cube, &a, &b));
    }

    #[test]
    fn deficits_empty_iff_criterion_holds() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        for _ in 0..100 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            assert_eq!(
                cancellation(&cube, &a, &b),
                cancellation_deficits(&cube, &a, &b).is_empty()
            );
        }
    }
}
