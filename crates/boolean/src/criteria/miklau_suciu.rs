//! The Miklau–Suciu criterion (Theorem 5.7): "no shared critical
//! coordinates".
//!
//! Miklau and Suciu \[21\] proved that `A ⊥_{Π_m⁰} B` — full probabilistic
//! independence `P[AB] = P[A]·P[B]` under *every* product distribution —
//! holds iff the coordinates can be split so that `A` is determined by one
//! block and `B` by a disjoint block. Equivalently: the *critical
//! coordinates* of `A` and of `B` are disjoint. Independence trivially
//! implies the one-sided `Safe_{Π_m⁰}(A, B)`, making this a sufficient
//! criterion for epistemic privacy — the paper's reference point for how
//! much flexibility the gain-vs-loss asymmetry buys (see
//! `epi_boolean::criteria::cancellation` for the strictly stronger test).

use crate::cube::Cube;
use crate::distributions::ProductDist;
use epi_core::{WorldId, WorldSet};

/// Tests `A ⊥_{Π_m⁰} B` via Theorem 5.7: the critical coordinates of `A`
/// and `B` are disjoint.
pub fn independent(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    cube.critical_coords(a) & cube.critical_coords(b) == 0
}

/// The Miklau–Suciu *privacy* criterion: independence implies
/// `Safe_{Π_m⁰}(A, B)`. Alias of [`independent`] with the privacy reading.
pub fn safe_miklau_suciu(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    independent(cube, a, b)
}

/// Verifies the defining property of independence on one product
/// distribution: `|P[AB] − P[A]·P[B]|`.
pub fn independence_gap(p: &ProductDist, a: &WorldSet, b: &WorldSet) -> f64 {
    p.prob(&a.intersection(b)) - p.prob(a) * p.prob(b)
}

/// Decomposes the coordinates per Theorem 5.7 when independent: returns
/// `(crit_a, crit_b, free)` bitmasks with `crit_a ∩ crit_b = ∅`; `None`
/// when the criterion fails.
pub fn coordinate_split(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Option<(u32, u32, u32)> {
    let ca = cube.critical_coords(a);
    let cb = cube.critical_coords(b);
    (ca & cb == 0).then(|| (ca, cb, cube.full_mask() & !(ca | cb)))
}

/// `true` iff membership in `s` is determined by the coordinates in `mask`
/// alone (used to validate Theorem 5.7's "determined by" phrasing).
pub fn determined_by(cube: &Cube, s: &WorldSet, mask: u32) -> bool {
    cube.worlds().all(|w| {
        // Any world agreeing with w on `mask` has the same membership.
        let base = s.contains(WorldId(w));
        // It suffices to check single-bit flips outside the mask.
        let mut outside = cube.full_mask() & !mask;
        loop {
            if outside == 0 {
                return true;
            }
            let bit = outside & outside.wrapping_neg();
            if s.contains(WorldId(w ^ bit)) != base {
                return false;
            }
            outside &= outside - 1;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disjoint_coordinate_sets_are_independent() {
        let cube = Cube::new(4);
        let a = cube.set_from_predicate(|w| w & 0b0011 == 0b0001); // coords 0,1
        let b = cube.set_from_predicate(|w| w & 0b1100 != 0); // coords 2,3
        assert!(independent(&cube, &a, &b));
        let (ca, cb, free) = coordinate_split(&cube, &a, &b).unwrap();
        assert_eq!(ca, 0b0011);
        assert_eq!(cb, 0b1100);
        assert_eq!(free, 0);
        assert!(determined_by(&cube, &a, ca));
        assert!(determined_by(&cube, &b, cb));
    }

    #[test]
    fn shared_critical_record_breaks_independence() {
        let cube = Cube::new(2);
        // A = "record 0 present", B = "record 0 present ⟹ record 1 present".
        let a = cube.set_from_predicate(|w| w & 1 == 1);
        let b = cube.set_from_predicate(|w| w & 1 == 0 || w & 2 == 2);
        assert!(!independent(&cube, &a, &b));
    }

    #[test]
    fn independence_gap_zero_iff_criterion() {
        // Theorem 5.7 validated against sampled product distributions.
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let cube = Cube::new(3);
        use rand::Rng;
        for _ in 0..200 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            let indep = independent(&cube, &a, &b);
            let mut max_gap = 0.0f64;
            for _ in 0..50 {
                let p = ProductDist::random(3, &mut rng);
                max_gap = max_gap.max(independence_gap(&p, &a, &b).abs());
            }
            if indep {
                assert!(max_gap < 1e-12, "independent pair has gap {max_gap}");
            }
            // The converse (gap > 0 for some P when not independent) is
            // probabilistic; check it loosely with the uniform distribution
            // plus sampled ones, allowing rare degenerate misses only for
            // trivial sets.
            if !indep && !a.is_empty() && !a.is_full() && !b.is_empty() && !b.is_full() {
                let mut found = max_gap > 1e-12;
                if !found {
                    for _ in 0..500 {
                        let p = ProductDist::random(3, &mut rng);
                        if independence_gap(&p, &a, &b).abs() > 1e-12 {
                            found = true;
                            break;
                        }
                    }
                }
                assert!(found, "dependent pair A={a:?} B={b:?} shows no gap");
            }
        }
    }

    #[test]
    fn paper_remark_safe_but_not_independent() {
        // After Thm 5.7: Safe_{Π_m⁰}(X₁, X̄₁ ∪ X₂) holds but
        // X₁ ⊥ (X̄₁ ∪ X₂) does not, for n = 2.
        let cube = Cube::new(2);
        let x1 = cube.set_from_predicate(|w| w & 1 == 1);
        let x2 = cube.set_from_predicate(|w| w & 2 == 2);
        let b = x1.complement().union(&x2);
        assert!(!independent(&cube, &x1, &b));
        // Safety under products: P[X₁ ∩ B] = P[X₁]P[X₂],
        // P[X₁]·P[B] = P[X₁]((1−P[X₁]) + P[X₁]P[X₂]) ≥ P[X₁]P[X₂]·1 …
        // verified numerically over sampled product priors:
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..500 {
            let p = ProductDist::random(2, &mut rng);
            assert!(
                p.prob(&x1.intersection(&b)) <= p.prob(&x1) * p.prob(&b) + 1e-12,
                "breach found for {:?}",
                p.probs()
            );
        }
    }

    #[test]
    fn constant_sets_always_independent() {
        let cube = Cube::new(3);
        assert!(independent(
            &cube,
            &cube.full_set(),
            &cube.set_from_masks([1, 5])
        ));
        assert!(independent(
            &cube,
            &cube.empty_set(),
            &cube.set_from_masks([2])
        ));
    }
}
