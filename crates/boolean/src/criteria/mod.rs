//! The privacy criteria of Section 5 of the paper.
//!
//! All criteria decide (or partially decide) the predicate
//! `Safe_Π(A, B) ⟺ ∀ P ∈ Π: P[AB] ≤ P[A]·P[B]` for structured families
//! `Π` over `Ω = {0,1}ⁿ`:
//!
//! | Module | Result | Family | Direction |
//! |---|---|---|---|
//! | [`miklau_suciu`] | Thm 5.7 | `Π_m⁰` (product) | sufficient |
//! | [`monotonicity`] | Cor 5.5 + mask | `Π_m⁺` ⊇ `Π_m⁰` | sufficient |
//! | [`cancellation`] | Prop 5.9 | `Π_m⁰` | sufficient |
//! | [`supermodular`] | Prop 5.2 / 5.4 | `Π_m⁺` | necessary / sufficient |
//! | [`necessary`] | Prop 5.10 | `Π_m⁰` | necessary |
//!
//! Theorem 5.11 (validated exhaustively in this crate's tests and measured
//! in experiment E4) orders the sufficient criteria: Miklau–Suciu and
//! monotonicity each imply cancellation.

pub mod cancellation;
pub mod miklau_suciu;
pub mod monotonicity;
pub mod necessary;
pub mod supermodular;

use crate::cube::Cube;
use epi_core::WorldSet;

/// The four-way partition of `Ω` by membership in `A` and `B`, computed once
/// and shared by the criteria: `AB`, `AB̄`, `ĀB`, `ĀB̄`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Regions {
    /// `A ∩ B`.
    pub ab: WorldSet,
    /// `A − B`.
    pub a_not_b: WorldSet,
    /// `B − A`.
    pub b_not_a: WorldSet,
    /// `Ω − (A ∪ B)`.
    pub neither: WorldSet,
}

impl Regions {
    /// Partitions the cube by `A` and `B`.
    pub fn new(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Regions {
        assert_eq!(a.universe_size(), cube.size(), "A not over this cube");
        assert_eq!(b.universe_size(), cube.size(), "B not over this cube");
        Regions {
            ab: a.intersection(b),
            a_not_b: a.difference(b),
            b_not_a: b.difference(a),
            neither: a.union(b).complement(),
        }
    }

    /// `true` iff the partition covers Ω (sanity invariant).
    pub fn is_partition(&self) -> bool {
        let mut u = self.ab.clone();
        u.union_with(&self.a_not_b);
        u.union_with(&self.b_not_a);
        u.union_with(&self.neither);
        u.is_full()
            && self.ab.is_disjoint(&self.a_not_b)
            && self.ab.is_disjoint(&self.b_not_a)
            && self.ab.is_disjoint(&self.neither)
            && self.a_not_b.is_disjoint(&self.b_not_a)
            && self.a_not_b.is_disjoint(&self.neither)
            && self.b_not_a.is_disjoint(&self.neither)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epi_core::world::all_nonempty_subsets;
    use rand::{Rng, SeedableRng};

    #[test]
    fn regions_partition() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            assert!(Regions::new(&cube, &a, &b).is_partition());
        }
    }

    /// Theorem 5.11, exhaustive for n = 2 and n = 3: Miklau–Suciu or
    /// monotonicity implies cancellation.
    #[test]
    fn theorem_5_11_exhaustive() {
        for n in [2usize, 3] {
            let cube = Cube::new(n);
            for a in all_nonempty_subsets(1 << n) {
                for b in all_nonempty_subsets(1 << n) {
                    let ms = miklau_suciu::independent(&cube, &a, &b);
                    let mono = monotonicity::monotone_mask(&cube, &a, &b).is_some();
                    if ms || mono {
                        assert!(
                            cancellation::cancellation(&cube, &a, &b),
                            "Thm 5.11 violated at n={n} A={a:?} B={b:?} (ms={ms}, mono={mono})"
                        );
                    }
                }
            }
        }
    }
}
