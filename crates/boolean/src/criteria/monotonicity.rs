//! The monotonicity criterion (Corollary 5.5 and the masked generalization
//! of Section 5.1).
//!
//! If `A` is an up-set and `B` is a down-set (or vice versa), then
//! `Safe_{Π_m⁺}(A, B)` — and a fortiori `Safe_{Π_m⁰}(A, B)` — holds
//! (Corollary 5.5): "it is OK to disclose a negative fact while protecting a
//! positive fact" (Remark 5.6). More generally, it suffices that some mask
//! `z ∈ Ω` makes `z ⊕ A` an up-set and `z ⊕ B` a down-set.
//!
//! The mask search is coordinate-wise: `z ⊕ A` is an up-set iff for every
//! coordinate `i`, `A` is monotone in direction `zᵢ` — so the admissible
//! `zᵢ` are determined per coordinate and a valid `z` exists iff every
//! coordinate admits a compatible choice. This runs in `O(n · 2ⁿ)` instead
//! of `O(4ⁿ)` for a naive mask enumeration.

use crate::cube::Cube;
use epi_core::{WorldId, WorldSet};

/// Per-coordinate monotonicity of a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoordMonotonicity {
    /// Closed under `0 → 1` flips of this coordinate.
    pub nondecreasing: bool,
    /// Closed under `1 → 0` flips of this coordinate.
    pub nonincreasing: bool,
}

/// Computes, for every coordinate, whether `s` is non-decreasing and/or
/// non-increasing in it.
pub fn coordinate_monotonicity(cube: &Cube, s: &WorldSet) -> Vec<CoordMonotonicity> {
    (0..cube.dims())
        .map(|i| {
            let bit = 1u32 << i;
            let mut nondecreasing = true;
            let mut nonincreasing = true;
            for w in cube.worlds() {
                if w & bit != 0 {
                    continue;
                }
                let lo = s.contains(WorldId(w));
                let hi = s.contains(WorldId(w | bit));
                if lo && !hi {
                    nondecreasing = false;
                }
                if hi && !lo {
                    nonincreasing = false;
                }
                if !nondecreasing && !nonincreasing {
                    break;
                }
            }
            CoordMonotonicity {
                nondecreasing,
                nonincreasing,
            }
        })
        .collect()
}

/// Searches for a mask `z` with `z ⊕ A` an up-set and `z ⊕ B` a down-set
/// (the generalized monotonicity criterion). Returns the mask when found.
pub fn monotone_mask(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Option<u32> {
    let ma = coordinate_monotonicity(cube, a);
    let mb = coordinate_monotonicity(cube, b);
    let mut z = 0u32;
    for i in 0..cube.dims() {
        // zᵢ = 0: need A non-decreasing and B non-increasing in i.
        // zᵢ = 1: need A non-increasing and B non-decreasing in i.
        if ma[i].nondecreasing && mb[i].nonincreasing {
            // zᵢ = 0
        } else if ma[i].nonincreasing && mb[i].nondecreasing {
            z |= 1 << i;
        } else {
            return None;
        }
    }
    Some(z)
}

/// The monotonicity *privacy* criterion: a mask exists ⟹
/// `Safe_{Π_m⁺}(A, B)` (hence `Safe_{Π_m⁰}`).
pub fn safe_monotone(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    monotone_mask(cube, a, b).is_some()
}

/// Corollary 5.5 verbatim: `A` up-set and `B` down-set, or vice versa.
/// (The `z = 0` and `z = full` special cases of the mask search.)
pub fn corollary_5_5(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    (cube.is_up_set(a) && cube.is_down_set(b)) || (cube.is_down_set(a) && cube.is_up_set(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn up_down_pair_accepted() {
        let cube = Cube::new(3);
        let a = cube.up_closure(&cube.set_from_masks([0b011]));
        let b = cube.down_closure(&cube.set_from_masks([0b100]));
        assert!(corollary_5_5(&cube, &a, &b));
        assert_eq!(monotone_mask(&cube, &a, &b), Some(0));
        // Swapped roles use the full mask.
        assert!(safe_monotone(&cube, &b, &a));
    }

    #[test]
    fn masked_pair_accepted() {
        let cube = Cube::new(3);
        // A is an up-set after flipping coordinate 1.
        let z = 0b010u32;
        let up = cube.up_closure(&cube.set_from_masks([0b001]));
        let a = cube.translate(z, &up);
        let down = cube.down_closure(&cube.set_from_masks([0b100]));
        let b = cube.translate(z, &down);
        assert!(!corollary_5_5(&cube, &a, &b));
        let found = monotone_mask(&cube, &a, &b).expect("mask must exist");
        assert!(cube.is_up_set(&cube.translate(found, &a)));
        assert!(cube.is_down_set(&cube.translate(found, &b)));
    }

    #[test]
    fn mask_search_matches_naive_enumeration() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..300 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            let fast = monotone_mask(&cube, &a, &b).is_some();
            let naive = (0..cube.size() as u32).any(|z| {
                cube.is_up_set(&cube.translate(z, &a)) && cube.is_down_set(&cube.translate(z, &b))
            });
            assert_eq!(fast, naive, "A={a:?} B={b:?}");
        }
    }

    #[test]
    fn two_up_sets_rejected_unless_degenerate() {
        let cube = Cube::new(3);
        let a = cube.up_closure(&cube.set_from_masks([0b001]));
        let b = cube.up_closure(&cube.set_from_masks([0b001, 0b010]));
        // Both genuinely increasing in coordinate 0 ⇒ no mask.
        assert!(monotone_mask(&cube, &a, &b).is_none());
        // Degenerate sets (constant) are monotone both ways.
        assert!(safe_monotone(&cube, &cube.full_set(), &a));
        assert!(safe_monotone(&cube, &cube.empty_set(), &b));
    }

    #[test]
    fn remark_5_6_negative_answer_protects_positive_fact() {
        // A = "some record of a monotone audit query is present" (up-set);
        // B = "a monotone user query returned NO" (down-set): always safe.
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for _ in 0..50 {
            let seed_a = cube.set_from_predicate(|_| rng.gen::<f64>() < 0.2);
            let seed_b = cube.set_from_predicate(|_| rng.gen::<f64>() < 0.2);
            let a = cube.up_closure(&seed_a);
            let b_yes = cube.up_closure(&seed_b);
            let b_no = b_yes.complement(); // "no" answer: complement of an up-set
            assert!(
                safe_monotone(&cube, &a, &b_no),
                "negative monotone answers must pass the criterion"
            );
        }
    }
}
