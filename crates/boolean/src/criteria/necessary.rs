//! The box-counting necessary criterion (Proposition 5.10).
//!
//! Evaluating the safety polynomial at the "corner" product distributions —
//! `pᵢ ∈ {0, 1}` on the fixed coordinates of a match vector `w` and
//! `pᵢ = ½` on its stars — turns probabilities into box occupancies:
//! `P[X] = |X ∩ Box(w)| / 2^{stars}`. Safety therefore *requires*
//!
//! ```text
//! ∀ w ∈ {0,1,*}ⁿ:
//!   |AB̄ ∩ Box(w)| · |ĀB ∩ Box(w)|  ≥  |AB ∩ Box(w)| · |ĀB̄ ∩ Box(w)|
//! ```
//!
//! A failing `w` yields an explicit refuting product prior
//! ([`refute_product_by_boxes`]), certifying `¬Safe_{Π_m⁰}(A, B)`.

use super::Regions;
use crate::cube::Cube;
use crate::distributions::ProductDist;
use crate::match_vec::{box_count, MatchVector};
use epi_core::WorldSet;

/// Proposition 5.10: necessary criterion for `Safe_{Π_m⁰}(A, B)`.
/// `false` certifies unsafety; `true` is inconclusive.
pub fn necessary_product(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    failing_box(cube, a, b).is_none()
}

/// Finds a match vector violating the box inequality, if any.
pub fn failing_box(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Option<MatchVector> {
    let r = Regions::new(cube, a, b);
    MatchVector::all(cube.dims()).into_iter().find(|&w| {
        let pos = box_count(w, &r.a_not_b) as u64 * box_count(w, &r.b_not_a) as u64;
        let neg = box_count(w, &r.ab) as u64 * box_count(w, &r.neither) as u64;
        pos < neg
    })
}

/// Builds the refuting product distribution for a failing box: `pᵢ` equals
/// the fixed bit of `w` on non-star coordinates and `½` on stars. By
/// construction `P[A]·P[B] < P[AB]`, so this prior gains confidence in `A`
/// from `B`.
pub fn refute_product_by_boxes(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Option<ProductDist> {
    let w = failing_box(cube, a, b)?;
    let probs = (0..cube.dims())
        .map(|i| {
            if w.stars >> i & 1 == 1 {
                0.5
            } else if w.values >> i & 1 == 1 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Some(ProductDist::new(probs).expect("corner probabilities are valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criteria::cancellation::cancellation;
    use rand::{Rng, SeedableRng};

    #[test]
    fn refutation_witness_breaches() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(89);
        let mut refuted = 0;
        while refuted < 40 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            let Some(p) = refute_product_by_boxes(&cube, &a, &b) else {
                continue;
            };
            refuted += 1;
            let gain = p.prob(&a.intersection(&b)) - p.prob(&a) * p.prob(&b);
            assert!(
                gain > 1e-12,
                "box refutation must breach: A={a:?} B={b:?} p={:?} gain={gain}",
                p.probs()
            );
        }
    }

    #[test]
    fn cancellation_implies_necessary() {
        // Sufficient criterion ⟹ necessary criterion (both bracket the
        // exact predicate).
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        for _ in 0..500 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            if cancellation(&cube, &a, &b) {
                assert!(
                    necessary_product(&cube, &a, &b),
                    "sufficient passed but necessary failed: A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn direct_disclosure_fails_necessary() {
        // B = A (nontrivial) always breaches under the uniform prior; the
        // box criterion must catch it at w = *…*.
        let cube = Cube::new(3);
        let a = cube.set_from_masks([0b001, 0b010, 0b100]);
        assert!(!necessary_product(&cube, &a, &a));
        assert!(failing_box(&cube, &a, &a).is_some());
        // The all-stars box (uniform prior) fails too: AB̄ = ĀB = ∅ while
        // AB and ĀB̄ are non-empty.
        let r = Regions::new(&cube, &a, &a);
        let all_stars = MatchVector::new(cube.full_mask(), 0);
        let pos = box_count(all_stars, &r.a_not_b) * box_count(all_stars, &r.b_not_a);
        let neg = box_count(all_stars, &r.ab) * box_count(all_stars, &r.neither);
        assert!(pos < neg);
    }

    #[test]
    fn remark_5_12_pair_passes_necessary() {
        // The pair that defeats the cancellation criterion is genuinely
        // safe, so the necessary criterion must pass it.
        let cube = Cube::new(3);
        let a = cube.set_from_masks([0b011, 0b100, 0b110, 0b111]);
        let b = cube.set_from_masks([0b010, 0b101, 0b110, 0b111]);
        assert!(necessary_product(&cube, &a, &b));
    }

    #[test]
    fn tautology_and_disjoint_cases_pass() {
        let cube = Cube::new(2);
        let a = cube.set_from_masks([0b01, 0b11]);
        assert!(necessary_product(&cube, &a, &cube.full_set()));
        assert!(necessary_product(&cube, &a, &a.complement()));
    }
}
