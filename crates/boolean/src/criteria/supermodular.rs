//! Criteria for log-supermodular priors (Propositions 5.2 and 5.4,
//! Corollary 5.5).
//!
//! Throughout, safety is evaluated through the identity
//! `P[A]P[B] − P[AB] = P[AB̄]·P[ĀB] − P[AB]·P[ĀB̄]`, so
//! `Safe_{Π_m⁺}(A,B) ⟺ ∀ P ∈ Π_m⁺: P[AB]·P[ĀB̄] ≤ P[AB̄]·P[ĀB]`.
//!
//! * **Sufficient** (Proposition 5.4): by the Four Functions Theorem with
//!   `α = β = γ = δ = P`, log-supermodularity gives
//!   `P[X]·P[Y] ≤ P[X∨Y]·P[X∧Y]` for all sets. Taking `X = AB`,
//!   `Y = ĀB̄`, safety follows when the lattice images land in the right
//!   regions:
//!   - `AB ∧ ĀB̄ ⊆ A−B` and `AB ∨ ĀB̄ ⊆ B−A`, or
//!   - `AB ∨ ĀB̄ ⊆ A−B` and `AB ∧ ĀB̄ ⊆ B−A`.
//! * **Necessary** (Proposition 5.2): for every `ω₁ ∈ AB`, `ω₂ ∈ ĀB̄`, the
//!   meet and join must land in `{A−B, B−A}` in *opposite* regions;
//!   otherwise a four-point log-supermodular prior supported on
//!   `{ω₁∧ω₂, ω₁, ω₂, ω₁∨ω₂}` gains confidence in `A` from `B`
//!   ([`refute_supermodular`] constructs it).

use super::Regions;
use crate::cube::Cube;
use epi_core::{Distribution, WorldId, WorldSet};

/// Proposition 5.4 — sufficient criterion for `Safe_{Π_m⁺}(A, B)`.
pub fn sufficient_supermodular(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    let r = Regions::new(cube, a, b);
    if r.ab.is_empty() || r.neither.is_empty() {
        // X or Y empty: P[AB]·P[ĀB̄] = 0 ≤ P[AB̄]·P[ĀB] always.
        return true;
    }
    let meet = cube.meet_set(&r.ab, &r.neither);
    let join = cube.join_set(&r.ab, &r.neither);
    (meet.is_subset(&r.a_not_b) && join.is_subset(&r.b_not_a))
        || (join.is_subset(&r.a_not_b) && meet.is_subset(&r.b_not_a))
}

/// Corollary 5.5: `A` up-set and `B` down-set (or vice versa) implies
/// `Safe_{Π_m⁺}(A, B)`. A special case of [`sufficient_supermodular`].
pub fn corollary_5_5(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    super::monotonicity::corollary_5_5(cube, a, b)
}

/// Proposition 5.2 — necessary criterion for `Safe_{Π_m⁺}(A, B)`:
///
/// ```text
/// ∀ ω₁ ∈ AB, ∀ ω₂ ∈ ĀB̄:
///     (ω₁∧ω₂ ∈ A−B  ∧  ω₁∨ω₂ ∈ B−A)  ∨  (ω₁∧ω₂ ∈ B−A  ∧  ω₁∨ω₂ ∈ A−B)
/// ```
///
/// `false` certifies *unsafety* for `Π_m⁺` (a refuting prior exists, see
/// [`refute_supermodular`]); `true` is inconclusive.
pub fn necessary_supermodular(cube: &Cube, a: &WorldSet, b: &WorldSet) -> bool {
    violating_pair(cube, a, b).is_none()
}

/// Finds a pair `(ω₁, ω₂) ∈ AB × ĀB̄` violating Proposition 5.2's
/// condition, if any.
pub fn violating_pair(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Option<(u32, u32)> {
    let r = Regions::new(cube, a, b);
    for w1 in &r.ab {
        for w2 in &r.neither {
            let m = w1.0 & w2.0;
            let j = w1.0 | w2.0;
            let ok = (r.a_not_b.contains(WorldId(m)) && r.b_not_a.contains(WorldId(j)))
                || (r.b_not_a.contains(WorldId(m)) && r.a_not_b.contains(WorldId(j)));
            if !ok {
                return Some((w1.0, w2.0));
            }
        }
    }
    None
}

/// When the necessary criterion fails, constructs an explicit
/// log-supermodular prior `P` with `P[AB] > P[A]·P[B]` — the proof object
/// behind Proposition 5.2. The prior is supported on the sublattice
/// `{ω₁∧ω₂, ω₁, ω₂, ω₁∨ω₂}` of a violating pair; masses are found by a
/// small grid search subject to the only nontrivial log-supermodularity
/// constraint `P(ω₁)·P(ω₂) ≤ P(ω₁∧ω₂)·P(ω₁∨ω₂)`.
///
/// Returns `None` when the criterion holds (no violating pair).
pub fn refute_supermodular(cube: &Cube, a: &WorldSet, b: &WorldSet) -> Option<Distribution> {
    let (w1, w2) = violating_pair(cube, a, b)?;
    let m = w1 & w2;
    let j = w1 | w2;
    let ab = a.intersection(b);
    let size = cube.size();
    let grid = [0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8];
    let mut best: Option<(f64, Distribution)> = None;
    for &pm in &grid {
        for &p1 in &grid {
            for &p2 in &grid {
                let pj: f64 = 1.0 - pm - p1 - p2;
                if pj < -1e-12 || p1 <= 0.0 {
                    continue;
                }
                let pj = pj.max(0.0);
                let mut weights = vec![0.0; size];
                // Accumulate (m or j may coincide with w1/w2 when the
                // worlds are comparable).
                weights[m as usize] += pm;
                weights[w1 as usize] += p1;
                weights[w2 as usize] += p2;
                weights[j as usize] += pj;
                // Log-supermodularity on the support reduces to the single
                // incomparable-pair constraint.
                if weights[w1 as usize] * weights[w2 as usize]
                    > weights[m as usize] * weights[j as usize] + 1e-15
                    && m != w2
                {
                    continue;
                }
                let p = match Distribution::new(weights) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let gain = p.prob(&ab) - p.prob(a) * p.prob(b);
                if gain > 1e-9 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, p));
                }
            }
        }
    }
    let (_, p) = best.expect("Proposition 5.2: a violating pair admits a refuting prior");
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{is_log_supermodular, IsingModel};
    use rand::{Rng, SeedableRng};

    #[test]
    fn corollary_5_5_instances_pass_sufficient() {
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        for _ in 0..100 {
            let a = cube.up_closure(&cube.set_from_predicate(|_| rng.gen::<f64>() < 0.15));
            let b = cube.down_closure(&cube.set_from_predicate(|_| rng.gen::<f64>() < 0.15));
            assert!(corollary_5_5(&cube, &a, &b));
            assert!(
                sufficient_supermodular(&cube, &a, &b),
                "Cor 5.5 must be a special case of Prop 5.4: A={a:?} B={b:?}"
            );
        }
    }

    #[test]
    fn sufficient_implies_necessary() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        for _ in 0..500 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            if sufficient_supermodular(&cube, &a, &b) {
                assert!(
                    necessary_supermodular(&cube, &a, &b),
                    "sufficient ⊆ necessary violated at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn sufficient_soundness_against_ising_priors() {
        // Whenever Prop 5.4 certifies, no sampled log-supermodular prior
        // may breach.
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let mut accepted = 0;
        while accepted < 25 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            if a.is_empty() || b.is_empty() || !sufficient_supermodular(&cube, &a, &b) {
                continue;
            }
            accepted += 1;
            for _ in 0..40 {
                let p = IsingModel::random(3, 1.0, 2.0, &mut rng).to_distribution();
                assert!(
                    p.prob(&a.intersection(&b)) <= p.prob(&a) * p.prob(&b) + 1e-9,
                    "Prop 5.4 accepted a breachable pair A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn necessary_failure_yields_refuting_prior() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(83);
        let mut refuted = 0;
        while refuted < 30 {
            let a = cube.set_from_predicate(|_| rng.gen());
            let b = cube.set_from_predicate(|_| rng.gen());
            let Some(p) = refute_supermodular(&cube, &a, &b) else {
                continue;
            };
            refuted += 1;
            // The witness must be log-supermodular and actually breach.
            assert!(
                is_log_supermodular(&cube, &p, 1e-12),
                "refuting prior must lie in Π_m⁺"
            );
            let gain = p.prob(&a.intersection(&b)) - p.prob(&a) * p.prob(&b);
            assert!(gain > 1e-10, "refuting prior must show a confidence gain");
            // Consistency: some world of B has positive mass (the pair
            // (ω, P) is in K after discarding ω ∉ B).
            assert!(p.support().intersects(&b));
        }
    }

    #[test]
    fn comparable_pair_two_point_refutation() {
        // ω₂ ≺ ω₁ with ω₁ ∈ AB, ω₂ ∈ ĀB̄ and nothing in A−B / B−A on the
        // chain: necessarily unsafe (two-point prior).
        let cube = Cube::new(2);
        let a = cube.set_from_masks([0b11]);
        let b = cube.set_from_masks([0b11]);
        // ω₁ = 11 ∈ AB, ω₂ = 00 ∈ ĀB̄; meet = 00 ∈ ĀB̄, join = 11 ∈ AB.
        assert!(!necessary_supermodular(&cube, &a, &b));
        let p = refute_supermodular(&cube, &a, &b).unwrap();
        assert!(is_log_supermodular(&cube, &p, 1e-12));
        assert!(p.prob(&a.intersection(&b)) > p.prob(&a) * p.prob(&b));
    }

    #[test]
    fn hiv_example_passes_both() {
        // §1.1: A = {10, 11}, B = {00, 01, 11} over n = 2
        // (bit 1 = r₁ "HIV+", bit 0 = r₂ "transfusions").
        let cube = Cube::new(2);
        let a = cube.set_from_masks([0b10, 0b11]);
        let b = cube.set_from_masks([0b00, 0b01, 0b11]);
        assert!(necessary_supermodular(&cube, &a, &b));
        // AB = {11}, ĀB̄ = {10}? No: Ā = {00,01}, B̄ = {10} →
        // ĀB̄ = ∅ … then sufficiency is immediate.
        assert!(sufficient_supermodular(&cube, &a, &b));
    }
}
