//! The Boolean cube `Ω = {0,1}ⁿ` (Section 5 of the paper).
//!
//! From Section 5 on, the paper fixes `Ω = {0,1}ⁿ`: a world is the subset of
//! the `n` database records present in the database, encoded as a bitmask.
//! This module provides the lattice structure — bit-wise `∧`, `∨`, `⊕`, the
//! partial order `≼` — and the set-level operations the Section 5 criteria
//! are built from: up/down-set tests and closures, translations `z ⊕ A`, and
//! the lattice image sets `A ∧ B`, `A ∨ B` of the Four Functions Theorem.
//!
//! Sets of worlds reuse [`epi_core::WorldSet`] with universe `2ⁿ`, so all of
//! `epi-core`'s privacy machinery applies unchanged.

use epi_core::{WorldId, WorldSet};

/// Maximum supported dimension; `2²⁰` worlds ≈ 1M keeps dense sets practical.
pub const MAX_DIMS: usize = 20;

/// A fixed-dimension Boolean cube `{0,1}ⁿ`, the context object for all
/// Section 5 computations.
///
/// # Examples
///
/// ```
/// use epi_boolean::Cube;
/// let cube = Cube::new(3);
/// let a = cube.set_from_masks([0b011, 0b100]);
/// assert!(!cube.is_up_set(&a));
/// let up = cube.up_closure(&a);
/// assert!(cube.is_up_set(&up));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cube {
    n: usize,
}

impl Cube {
    /// Creates the cube `{0,1}ⁿ`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ 20`.
    pub fn new(n: usize) -> Cube {
        assert!(
            (1..=MAX_DIMS).contains(&n),
            "Cube supports 1 ≤ n ≤ {MAX_DIMS}, got {n}"
        );
        Cube { n }
    }

    /// Number of coordinates `n`.
    pub fn dims(&self) -> usize {
        self.n
    }

    /// Number of worlds `2ⁿ`.
    pub fn size(&self) -> usize {
        1 << self.n
    }

    /// The all-ones mask.
    pub fn full_mask(&self) -> u32 {
        (1u32 << self.n) - 1
    }

    /// Bit-wise AND `ω₁ ∧ ω₂` (lattice meet).
    pub fn meet(&self, w1: u32, w2: u32) -> u32 {
        w1 & w2
    }

    /// Bit-wise OR `ω₁ ∨ ω₂` (lattice join).
    pub fn join(&self, w1: u32, w2: u32) -> u32 {
        w1 | w2
    }

    /// Bit-wise XOR `ω₁ ⊕ ω₂`.
    pub fn xor(&self, w1: u32, w2: u32) -> u32 {
        w1 ^ w2
    }

    /// The partial order `ω₁ ≼ ω₂`: every record in `ω₁` is in `ω₂`.
    pub fn leq(&self, w1: u32, w2: u32) -> bool {
        w1 & !w2 == 0
    }

    /// The empty set over this cube.
    pub fn empty_set(&self) -> WorldSet {
        WorldSet::empty(self.size())
    }

    /// The full set `Ω`.
    pub fn full_set(&self) -> WorldSet {
        WorldSet::full(self.size())
    }

    /// Builds a set from world bitmasks.
    pub fn set_from_masks<I: IntoIterator<Item = u32>>(&self, masks: I) -> WorldSet {
        WorldSet::from_indices(self.size(), masks)
    }

    /// Builds a set from a predicate on bitmasks.
    pub fn set_from_predicate(&self, mut pred: impl FnMut(u32) -> bool) -> WorldSet {
        WorldSet::from_predicate(self.size(), |w| pred(w.0))
    }

    /// The translation `z ⊕ A = {z ⊕ ω : ω ∈ A}`.
    pub fn translate(&self, z: u32, a: &WorldSet) -> WorldSet {
        assert_eq!(a.universe_size(), self.size(), "set not over this cube");
        let mut out = self.empty_set();
        for w in a {
            out.insert(WorldId(w.0 ^ z));
        }
        out
    }

    /// `true` iff `A` is an up-set: `ω ∈ A ∧ ω ≼ ω′ ⟹ ω′ ∈ A`.
    pub fn is_up_set(&self, a: &WorldSet) -> bool {
        assert_eq!(a.universe_size(), self.size(), "set not over this cube");
        a.iter().all(|w| {
            let mut absent = self.full_mask() & !w.0;
            while absent != 0 {
                let bit = absent & absent.wrapping_neg();
                if !a.contains(WorldId(w.0 | bit)) {
                    return false;
                }
                absent &= absent - 1;
            }
            true
        })
    }

    /// `true` iff `A` is a down-set: `ω ∈ A ∧ ω′ ≼ ω ⟹ ω′ ∈ A`.
    pub fn is_down_set(&self, a: &WorldSet) -> bool {
        assert_eq!(a.universe_size(), self.size(), "set not over this cube");
        a.iter().all(|w| {
            let mut present = w.0;
            while present != 0 {
                let bit = present & present.wrapping_neg();
                if !a.contains(WorldId(w.0 & !bit)) {
                    return false;
                }
                present &= present - 1;
            }
            true
        })
    }

    /// The up-closure `↑A`.
    pub fn up_closure(&self, a: &WorldSet) -> WorldSet {
        // Dynamic programming over coordinates: a world is in ↑A iff
        // clearing any one bit reaches ↑A ∪ A; sweep bit by bit.
        let mut out = a.clone();
        for i in 0..self.n {
            let bit = 1u32 << i;
            for w in 0..self.size() as u32 {
                if w & bit != 0 && out.contains(WorldId(w & !bit)) {
                    out.insert(WorldId(w));
                }
            }
        }
        out
    }

    /// The down-closure `↓A`.
    pub fn down_closure(&self, a: &WorldSet) -> WorldSet {
        let mut out = a.clone();
        for i in 0..self.n {
            let bit = 1u32 << i;
            for w in 0..self.size() as u32 {
                if w & bit == 0 && out.contains(WorldId(w | bit)) {
                    out.insert(WorldId(w));
                }
            }
        }
        out
    }

    /// The lattice image `A ∧ B = {a ∧ b : a ∈ A, b ∈ B}` of Theorem 5.3.
    pub fn meet_set(&self, a: &WorldSet, b: &WorldSet) -> WorldSet {
        let mut out = self.empty_set();
        for x in a {
            for y in b {
                out.insert(WorldId(x.0 & y.0));
            }
        }
        out
    }

    /// The lattice image `A ∨ B = {a ∨ b : a ∈ A, b ∈ B}` of Theorem 5.3.
    pub fn join_set(&self, a: &WorldSet, b: &WorldSet) -> WorldSet {
        let mut out = self.empty_set();
        for x in a {
            for y in b {
                out.insert(WorldId(x.0 | y.0));
            }
        }
        out
    }

    /// Coordinate `i` is *critical* for `A` (Miklau–Suciu, Theorem 5.7 /
    /// the "critical records" of \[21\]) iff flipping it can change
    /// membership: `∃ ω: [ω ∈ A] ≠ [ω ⊕ eᵢ ∈ A]`.
    pub fn is_critical(&self, a: &WorldSet, i: usize) -> bool {
        assert!(i < self.n);
        let bit = 1u32 << i;
        (0..self.size() as u32).any(|w| a.contains(WorldId(w)) != a.contains(WorldId(w ^ bit)))
    }

    /// The set of critical coordinates of `A`, as a bitmask.
    pub fn critical_coords(&self, a: &WorldSet) -> u32 {
        (0..self.n)
            .filter(|&i| self.is_critical(a, i))
            .fold(0u32, |m, i| m | (1 << i))
    }

    /// Iterates over all world bitmasks.
    pub fn worlds(&self) -> impl Iterator<Item = u32> {
        0..(1u32 << self.n)
    }

    /// Hamming weight of a world.
    pub fn weight(&self, w: u32) -> u32 {
        w.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lattice_ops() {
        let c = Cube::new(4);
        assert_eq!(c.meet(0b1100, 0b1010), 0b1000);
        assert_eq!(c.join(0b1100, 0b1010), 0b1110);
        assert_eq!(c.xor(0b1100, 0b1010), 0b0110);
        assert!(c.leq(0b1000, 0b1100));
        assert!(!c.leq(0b1100, 0b1000));
        assert!(c.leq(0b0000, 0b0000));
    }

    #[test]
    fn up_down_sets() {
        let c = Cube::new(3);
        let up = c.set_from_masks([0b100, 0b101, 0b110, 0b111]);
        assert!(c.is_up_set(&up));
        assert!(!c.is_down_set(&up));
        let down = c.set_from_masks([0b000, 0b001]);
        assert!(c.is_down_set(&down));
        assert!(!c.is_up_set(&down));
        assert!(c.is_up_set(&c.full_set()));
        assert!(c.is_down_set(&c.full_set()));
        assert!(c.is_up_set(&c.empty_set()));
        assert!(c.is_down_set(&c.empty_set()));
    }

    #[test]
    fn closures() {
        let c = Cube::new(3);
        let a = c.set_from_masks([0b010]);
        assert_eq!(
            c.up_closure(&a),
            c.set_from_masks([0b010, 0b011, 0b110, 0b111])
        );
        assert_eq!(c.down_closure(&a), c.set_from_masks([0b000, 0b010]));
    }

    #[test]
    fn translation() {
        let c = Cube::new(3);
        let a = c.set_from_masks([0b001, 0b011]);
        let t = c.translate(0b111, &a);
        assert_eq!(t, c.set_from_masks([0b110, 0b100]));
        // Involution.
        assert_eq!(c.translate(0b111, &t), a);
    }

    #[test]
    fn meet_join_sets() {
        let c = Cube::new(2);
        let a = c.set_from_masks([0b01]);
        let b = c.set_from_masks([0b10, 0b11]);
        assert_eq!(c.meet_set(&a, &b), c.set_from_masks([0b00, 0b01]));
        assert_eq!(c.join_set(&a, &b), c.set_from_masks([0b11]));
    }

    #[test]
    fn critical_coordinates() {
        let c = Cube::new(3);
        // A depends only on coordinate 0.
        let a = c.set_from_predicate(|w| w & 1 == 1);
        assert_eq!(c.critical_coords(&a), 0b001);
        // Constant sets have no critical coordinates.
        assert_eq!(c.critical_coords(&c.full_set()), 0);
        assert_eq!(c.critical_coords(&c.empty_set()), 0);
        // Parity depends on every coordinate.
        let parity = c.set_from_predicate(|w| w.count_ones() % 2 == 0);
        assert_eq!(c.critical_coords(&parity), 0b111);
    }

    #[test]
    #[should_panic(expected = "Cube supports")]
    fn oversized_cube_rejected() {
        let _ = Cube::new(MAX_DIMS + 1);
    }

    fn arb_set(n: usize) -> impl Strategy<Value = WorldSet> {
        let size = 1usize << n;
        proptest::collection::vec(any::<bool>(), size)
            .prop_map(move |bits| WorldSet::from_predicate(size, |w| bits[w.index()]))
    }

    proptest! {
        #[test]
        fn prop_up_closure_is_up_set(a in arb_set(4)) {
            let c = Cube::new(4);
            let up = c.up_closure(&a);
            prop_assert!(c.is_up_set(&up));
            prop_assert!(a.is_subset(&up));
            // Idempotent and minimal: every world of ↑A dominates some a∈A.
            prop_assert_eq!(c.up_closure(&up.clone()), up.clone());
            for w in &up {
                prop_assert!(a.iter().any(|x| c.leq(x.0, w.0)));
            }
        }

        #[test]
        fn prop_down_closure_is_down_set(a in arb_set(4)) {
            let c = Cube::new(4);
            let down = c.down_closure(&a);
            prop_assert!(c.is_down_set(&down));
            prop_assert!(a.is_subset(&down));
        }

        #[test]
        fn prop_up_down_duality(a in arb_set(4)) {
            // A up-set ⟺ complement is a down-set.
            let c = Cube::new(4);
            prop_assert_eq!(c.is_up_set(&a), c.is_down_set(&a.complement()));
        }

        #[test]
        fn prop_translate_preserves_size(a in arb_set(4), z in 0u32..16) {
            let c = Cube::new(4);
            prop_assert_eq!(c.translate(z, &a).len(), a.len());
        }

        #[test]
        fn prop_full_translation_swaps_up_down(a in arb_set(4)) {
            let c = Cube::new(4);
            let t = c.translate(c.full_mask(), &a);
            prop_assert_eq!(c.is_up_set(&a), c.is_down_set(&t));
        }
    }
}
