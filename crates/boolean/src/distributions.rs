//! Distributions over the Boolean cube: product, log-supermodular,
//! log-submodular (Definition 5.1).
//!
//! * A distribution `P` is **log-supermodular** (`Π_m⁺`) when
//!   `P(ω₁)·P(ω₂) ≤ P(ω₁∧ω₂)·P(ω₁∨ω₂)` for all worlds — "no negative
//!   correlations between positive events" (FKG-style priors, e.g. disease
//!   incidence models).
//! * **Log-submodular** (`Π_m⁻`) flips the inequality.
//! * **Product** distributions (`Π_m⁰`) satisfy both with equality
//!   (`Π_m⁰ = Π_m⁻ ∩ Π_m⁺`, eq. (18)); each corresponds to a Bernoulli
//!   vector `(p₁, …, pₙ)` via eq. (17).
//!
//! Random log-supermodular priors are generated as ferromagnetic Ising
//! models: `P(ω) ∝ exp(Σ hᵢ ωᵢ + Σ_{i<j} J_{ij} ωᵢ ωⱼ)` with `J ≥ 0`; the
//! exponent is supermodular, hence `P` is log-supermodular.

use crate::cube::Cube;
use epi_core::{CoreError, Distribution, WorldId, WorldSet};
use epi_num::Rational;
use rand::Rng;

/// A product distribution over `{0,1}ⁿ`, i.e. a Bernoulli probability per
/// coordinate (eq. (17) of the paper).
///
/// # Examples
///
/// ```
/// use epi_boolean::{Cube, ProductDist};
/// let cube = Cube::new(2);
/// let p = ProductDist::new(vec![0.5, 0.25]).unwrap();
/// let a = cube.set_from_masks([0b11]);
/// assert!((p.prob(&a) - 0.125).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ProductDist {
    probs: Vec<f64>,
}

impl ProductDist {
    /// Creates a product distribution from per-coordinate probabilities in
    /// `[0, 1]`.
    pub fn new(probs: Vec<f64>) -> Result<ProductDist, CoreError> {
        if probs.is_empty() || probs.len() > crate::cube::MAX_DIMS {
            return Err(CoreError::InvalidDistribution {
                reason: format!(
                    "product distribution needs 1..=20 coordinates, got {}",
                    probs.len()
                ),
            });
        }
        if let Some((i, &p)) = probs
            .iter()
            .enumerate()
            .find(|(_, &p)| !(0.0..=1.0).contains(&p) || p.is_nan())
        {
            return Err(CoreError::InvalidDistribution {
                reason: format!("coordinate {i} probability {p} outside [0, 1]"),
            });
        }
        Ok(ProductDist { probs })
    }

    /// The uniform product distribution (`pᵢ = ½`).
    pub fn uniform(n: usize) -> ProductDist {
        ProductDist::new(vec![0.5; n]).expect("valid")
    }

    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        self.probs.len()
    }

    /// The Bernoulli vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// `P(ω)` for a single world bitmask (eq. (17)).
    pub fn weight(&self, w: u32) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| if w >> i & 1 == 1 { p } else { 1.0 - p })
            .product()
    }

    /// `P[A]` by summation over the members of `A`.
    pub fn prob(&self, a: &WorldSet) -> f64 {
        assert_eq!(
            a.universe_size(),
            1 << self.dims(),
            "set not over this cube"
        );
        a.iter().map(|w| self.weight(w.0)).sum()
    }

    /// The dense expansion of this distribution over all `2ⁿ` worlds.
    pub fn to_dense(&self) -> Distribution {
        let n = self.dims();
        Distribution::from_unnormalized((0..1u32 << n).map(|w| self.weight(w)).collect())
            .expect("product weights sum to 1")
    }

    /// Draws a random product distribution with `pᵢ ~ U[0,1]`.
    pub fn random(n: usize, rng: &mut impl Rng) -> ProductDist {
        ProductDist::new((0..n).map(|_| rng.gen()).collect()).expect("valid")
    }
}

/// An exact-rational product distribution, for criteria that must avoid
/// floating-point verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RationalProductDist {
    probs: Vec<Rational>,
}

impl RationalProductDist {
    /// Creates from per-coordinate rational probabilities in `[0, 1]`.
    pub fn new(probs: Vec<Rational>) -> Result<RationalProductDist, CoreError> {
        let one = Rational::ONE;
        if probs.is_empty() || probs.len() > crate::cube::MAX_DIMS {
            return Err(CoreError::InvalidDistribution {
                reason: "rational product distribution needs 1..=20 coordinates".into(),
            });
        }
        if probs.iter().any(|p| p.is_negative() || *p > one) {
            return Err(CoreError::InvalidDistribution {
                reason: "coordinate probability outside [0, 1]".into(),
            });
        }
        Ok(RationalProductDist { probs })
    }

    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        self.probs.len()
    }

    /// `P(ω)` exactly.
    pub fn weight(&self, w: u32) -> Rational {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if w >> i & 1 == 1 {
                    p
                } else {
                    Rational::ONE - p
                }
            })
            .product()
    }

    /// `P[A]` exactly.
    pub fn prob(&self, a: &WorldSet) -> Rational {
        a.iter().map(|w| self.weight(w.0)).sum()
    }

    /// The exact safety gap `P[A]·P[B] − P[AB]`; non-negative ⟺ this
    /// distribution does not breach (Proposition 3.8 form).
    pub fn safety_gap(&self, a: &WorldSet, b: &WorldSet) -> Rational {
        self.prob(a) * self.prob(b) - self.prob(&a.intersection(b))
    }
}

/// Tests log-supermodularity (Definition 5.1) of a dense distribution over
/// `{0,1}ⁿ`: `P(ω₁)P(ω₂) ≤ P(ω₁∧ω₂)P(ω₁∨ω₂)` for all pairs. `tol` absorbs
/// float rounding (use `0.0` for exact data).
pub fn is_log_supermodular(cube: &Cube, p: &Distribution, tol: f64) -> bool {
    modularity_violation(cube, p, Side::Super) <= tol
}

/// Tests log-submodularity: the flipped inequality.
pub fn is_log_submodular(cube: &Cube, p: &Distribution, tol: f64) -> bool {
    modularity_violation(cube, p, Side::Sub) <= tol
}

/// Tests the product characterization (eq. (18)): equality in both.
pub fn is_product(cube: &Cube, p: &Distribution, tol: f64) -> bool {
    is_log_supermodular(cube, p, tol) && is_log_submodular(cube, p, tol)
}

enum Side {
    Super,
    Sub,
}

/// The largest violation of the (super/sub)modularity inequality over all
/// world pairs; ≤ 0 means the property holds.
fn modularity_violation(cube: &Cube, p: &Distribution, side: Side) -> f64 {
    assert_eq!(
        p.universe_size(),
        cube.size(),
        "distribution not over this cube"
    );
    let mut worst = f64::NEG_INFINITY;
    for w1 in cube.worlds() {
        for w2 in cube.worlds() {
            if w2 < w1 {
                continue; // symmetric
            }
            let lhs = p.weight(WorldId(w1)) * p.weight(WorldId(w2));
            let rhs = p.weight(WorldId(w1 & w2)) * p.weight(WorldId(w1 | w2));
            let v = match side {
                Side::Super => lhs - rhs,
                Side::Sub => rhs - lhs,
            };
            worst = worst.max(v);
        }
    }
    worst
}

/// A ferromagnetic Ising model over `{0,1}ⁿ` — a parametric family of
/// log-supermodular distributions used as the random workload generator for
/// `Π_m⁺` experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct IsingModel {
    n: usize,
    /// External fields `hᵢ` (any sign).
    pub fields: Vec<f64>,
    /// Couplings `J_{ij} ≥ 0`, stored for `i < j` row-major.
    pub couplings: Vec<f64>,
}

impl IsingModel {
    /// Creates a model; couplings must be non-negative (ferromagnetic) to
    /// guarantee log-supermodularity.
    pub fn new(fields: Vec<f64>, couplings: Vec<f64>) -> Result<IsingModel, CoreError> {
        let n = fields.len();
        if couplings.len() != n * (n - 1) / 2 {
            return Err(CoreError::InvalidDistribution {
                reason: format!(
                    "expected {} couplings for {} spins, got {}",
                    n * (n - 1) / 2,
                    n,
                    couplings.len()
                ),
            });
        }
        if couplings.iter().any(|&j| j < 0.0 || j.is_nan()) {
            return Err(CoreError::InvalidDistribution {
                reason: "ferromagnetic model requires J ≥ 0".into(),
            });
        }
        Ok(IsingModel {
            n,
            fields,
            couplings,
        })
    }

    /// Draws a random model with `hᵢ ~ U[-h_max, h_max]`,
    /// `J_{ij} ~ U[0, j_max]`.
    pub fn random(n: usize, h_max: f64, j_max: f64, rng: &mut impl Rng) -> IsingModel {
        let fields = (0..n).map(|_| rng.gen_range(-h_max..=h_max)).collect();
        let couplings = (0..n * (n - 1) / 2)
            .map(|_| rng.gen_range(0.0..=j_max))
            .collect();
        IsingModel::new(fields, couplings).expect("constructed valid")
    }

    fn coupling_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Row-major upper triangle.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The (supermodular) energy `E(ω) = Σ hᵢωᵢ + Σ_{i<j} J_{ij} ωᵢωⱼ`.
    pub fn energy(&self, w: u32) -> f64 {
        let mut e = 0.0;
        for i in 0..self.n {
            if w >> i & 1 == 1 {
                e += self.fields[i];
                for j in (i + 1)..self.n {
                    if w >> j & 1 == 1 {
                        e += self.couplings[self.coupling_index(i, j)];
                    }
                }
            }
        }
        e
    }

    /// The induced distribution `P(ω) ∝ exp(E(ω))`, dense over `2ⁿ` worlds.
    pub fn to_distribution(&self) -> Distribution {
        let weights: Vec<f64> = (0..1u32 << self.n).map(|w| self.energy(w).exp()).collect();
        Distribution::from_unnormalized(weights).expect("exp weights positive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn product_weights_sum_to_one() {
        let p = ProductDist::new(vec![0.3, 0.7, 0.5]).unwrap();
        let total: f64 = (0..8u32).map(|w| p.weight(w)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let dense = p.to_dense();
        for w in 0..8u32 {
            assert!((dense.weight(WorldId(w)) - p.weight(w)).abs() < 1e-12);
        }
    }

    #[test]
    fn product_validation() {
        assert!(ProductDist::new(vec![]).is_err());
        assert!(ProductDist::new(vec![1.5]).is_err());
        assert!(ProductDist::new(vec![f64::NAN]).is_err());
        assert!(ProductDist::new(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn rational_product_exactness() {
        let p = RationalProductDist::new(vec![Rational::new(1, 2), Rational::new(1, 3)]).unwrap();
        // P(11) = 1/2 · 1/3 = 1/6.
        assert_eq!(p.weight(0b11), Rational::new(1, 6));
        assert_eq!(p.weight(0b00), Rational::new(1, 3));
        let total: Rational = (0..4u32).map(|w| p.weight(w)).sum();
        assert_eq!(total, Rational::ONE);
    }

    #[test]
    fn rational_safety_gap_hiv_example() {
        // §1.1 with independent records at arbitrary rational probabilities:
        // A = {10, 11} (r₁ present), B = {00, 01, 11}.
        let a = WorldSet::from_indices(4, [2, 3]);
        let b = WorldSet::from_indices(4, [0, 1, 3]);
        for (p1, p2) in [(1, 2, 1, 3), (2, 3, 1, 7), (9, 10, 9, 10)]
            .map(|(a_, b_, c, d)| (Rational::new(a_, b_), Rational::new(c, d)))
        {
            let p = RationalProductDist::new(vec![p2, p1]).unwrap();
            assert!(
                !p.safety_gap(&a, &b).is_negative(),
                "gap must be ≥ 0 for every product prior"
            );
        }
    }

    #[test]
    fn product_is_both_super_and_submodular() {
        let cube = Cube::new(3);
        let p = ProductDist::new(vec![0.2, 0.6, 0.9]).unwrap().to_dense();
        assert!(is_log_supermodular(&cube, &p, 1e-12));
        assert!(is_log_submodular(&cube, &p, 1e-12));
        assert!(is_product(&cube, &p, 1e-12));
    }

    #[test]
    fn ising_is_log_supermodular() {
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let m = IsingModel::random(4, 1.0, 2.0, &mut rng);
            let p = m.to_distribution();
            assert!(
                is_log_supermodular(&cube, &p, 1e-9),
                "ferromagnetic Ising must be log-supermodular"
            );
        }
    }

    #[test]
    fn antiferromagnetic_coupling_rejected_and_submodular() {
        // J < 0 is rejected by the constructor...
        assert!(IsingModel::new(vec![0.0, 0.0], vec![-1.0]).is_err());
        // ...and indeed produces a log-SUBmodular (not supermodular) law:
        // build it manually.
        let cube = Cube::new(2);
        let weights: Vec<f64> = (0..4u32)
            .map(|w| {
                let e = if w == 0b11 { -1.0 } else { 0.0 };
                f64::exp(e)
            })
            .collect();
        let p = Distribution::from_unnormalized(weights).unwrap();
        assert!(!is_log_supermodular(&cube, &p, 1e-12));
        assert!(is_log_submodular(&cube, &p, 1e-12));
    }

    #[test]
    fn coupling_index_is_bijective() {
        let m = IsingModel::new(vec![0.0; 5], vec![0.0; 10]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                let idx = m.coupling_index(i, j);
                assert!(idx < 10);
                assert!(seen.insert(idx), "duplicate index for ({i},{j})");
            }
        }
    }

    #[test]
    fn nonuniform_dense_is_not_product() {
        let cube = Cube::new(2);
        // Perfectly correlated bits: P(00) = P(11) = 1/2.
        let p = Distribution::new(vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        assert!(is_log_supermodular(&cube, &p, 1e-12));
        assert!(!is_log_submodular(&cube, &p, 1e-12));
        assert!(!is_product(&cube, &p, 1e-12));
    }
}
