//! The Four Functions Theorem of Ahlswede–Daykin (Theorem 5.3).
//!
//! For functions `α, β, γ, δ : L → ℝ₊` on a (finite distributive) lattice —
//! here the Boolean cube — the inequality
//!
//! ```text
//! α[A]·β[B] ≤ γ[A∨B]·δ[A∧B]     for all sets A, B ⊆ L
//! ```
//!
//! holds iff it holds pointwise on one-element sets:
//! `α(a)·β(b) ≤ γ(a∨b)·δ(a∧b)`. The paper uses it (Proposition 5.4) to turn
//! log-supermodularity of a prior — exactly the pointwise condition with
//! `α = β = γ = δ = P` — into set-level inequalities
//! `P[X]·P[Y] ≤ P[X∨Y]·P[X∧Y]` that establish `Π_m⁺`-safety.

use crate::cube::Cube;
use epi_core::{WorldId, WorldSet};

/// A function `{0,1}ⁿ → ℝ₊` stored densely.
#[derive(Clone, Debug, PartialEq)]
pub struct CubeFn {
    values: Vec<f64>,
}

impl CubeFn {
    /// Creates from explicit non-negative values, one per world.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or NaN, or if the length is not a
    /// power of two.
    pub fn new(values: Vec<f64>) -> CubeFn {
        assert!(values.len().is_power_of_two(), "length must be 2ⁿ");
        assert!(
            values.iter().all(|v| *v >= 0.0 && !v.is_nan()),
            "Four Functions Theorem requires non-negative functions"
        );
        CubeFn { values }
    }

    /// Builds from a closure over world bitmasks.
    pub fn from_fn(cube: &Cube, f: impl Fn(u32) -> f64) -> CubeFn {
        CubeFn::new(cube.worlds().map(f).collect())
    }

    /// `f(ω)`.
    pub fn at(&self, w: u32) -> f64 {
        self.values[w as usize]
    }

    /// `f[A] = Σ_{a ∈ A} f(a)`.
    pub fn sum_over(&self, a: &WorldSet) -> f64 {
        assert_eq!(
            a.universe_size(),
            self.values.len(),
            "set/function mismatch"
        );
        a.iter().map(|w| self.values[w.index()]).sum()
    }
}

/// Checks the pointwise hypothesis of Theorem 5.3:
/// `α(a)·β(b) ≤ γ(a∨b)·δ(a∧b)` for all worlds `a, b`, within `tol`.
pub fn pointwise_condition(
    cube: &Cube,
    alpha: &CubeFn,
    beta: &CubeFn,
    gamma: &CubeFn,
    delta: &CubeFn,
    tol: f64,
) -> bool {
    for a in cube.worlds() {
        for b in cube.worlds() {
            if alpha.at(a) * beta.at(b) > gamma.at(a | b) * delta.at(a & b) + tol {
                return false;
            }
        }
    }
    true
}

/// Checks the set-level conclusion of Theorem 5.3 on one pair of sets:
/// `α[A]·β[B] ≤ γ[A∨B]·δ[A∧B]`.
#[allow(clippy::too_many_arguments)] // mirrors the theorem's (α,β,γ,δ,A,B) signature
pub fn set_condition(
    cube: &Cube,
    alpha: &CubeFn,
    beta: &CubeFn,
    gamma: &CubeFn,
    delta: &CubeFn,
    a: &WorldSet,
    b: &WorldSet,
    tol: f64,
) -> bool {
    let join = cube.join_set(a, b);
    let meet = cube.meet_set(a, b);
    alpha.sum_over(a) * beta.sum_over(b) <= gamma.sum_over(&join) * delta.sum_over(&meet) + tol
}

/// Exhaustively checks the set-level conclusion over *all* pairs of subsets
/// (validation harness for small `n`; `2^(2·2ⁿ)` pairs, guarded to `n ≤ 3`).
/// The outer subset loop runs on the [`epi_par`] pool (see
/// [`crate::sweep`] for the general pair-sweep machinery).
pub fn set_condition_exhaustive(
    cube: &Cube,
    alpha: &CubeFn,
    beta: &CubeFn,
    gamma: &CubeFn,
    delta: &CubeFn,
    tol: f64,
) -> bool {
    assert!(cube.dims() <= 3, "exhaustive set check guarded to n ≤ 3");
    let size = cube.size();
    let outer: Vec<WorldSet> = epi_core::world::all_subsets(size).collect();
    epi_par::Pool::global()
        .parallel_map(&outer, |a| {
            epi_core::world::all_subsets(size)
                .all(|b| set_condition(cube, alpha, beta, gamma, delta, a, &b, tol))
        })
        .into_iter()
        .all(|ok| ok)
}

/// The FKG-style corollary used in Proposition 5.4's proof: for a
/// log-supermodular `P` (pointwise condition with all four functions equal),
/// every pair of sets satisfies `P[X]·P[Y] ≤ P[X∨Y]·P[X∧Y]`.
pub fn supermodular_set_inequality(
    cube: &Cube,
    p: &epi_core::Distribution,
    x: &WorldSet,
    y: &WorldSet,
) -> f64 {
    let f = CubeFn::new(
        (0..cube.size() as u32)
            .map(|w| p.weight(WorldId(w)))
            .collect(),
    );
    let join = cube.join_set(x, y);
    let meet = cube.meet_set(x, y);
    f.sum_over(&join) * f.sum_over(&meet) - f.sum_over(x) * f.sum_over(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{is_log_supermodular, IsingModel};
    use rand::{Rng, SeedableRng};

    #[test]
    fn theorem_5_3_forward_direction() {
        // Pointwise condition ⟹ set condition, validated on random
        // non-negative quadruples that satisfy the pointwise hypothesis.
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut tested = 0;
        while tested < 10 {
            // Log-supermodular construction guarantees the pointwise
            // condition with α=β=γ=δ.
            let m = IsingModel::random(3, 0.5, 1.0, &mut rng);
            let p = m.to_distribution();
            let f = CubeFn::new(p.weights().to_vec());
            if !pointwise_condition(&cube, &f, &f, &f, &f, 1e-12) {
                continue;
            }
            assert!(
                set_condition_exhaustive(&cube, &f, &f, &f, &f, 1e-9),
                "Four Functions Theorem violated"
            );
            tested += 1;
        }
    }

    #[test]
    fn theorem_5_3_reverse_direction() {
        // Set condition ⟹ pointwise condition (trivially: singletons are
        // sets). Validate the contrapositive on random quadruples: when the
        // pointwise condition fails, some pair of (singleton) sets fails.
        let cube = Cube::new(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let rand_fn = |rng: &mut rand::rngs::StdRng| {
                CubeFn::new((0..4).map(|_| rng.gen::<f64>()).collect())
            };
            let (alpha, beta, gamma, delta) = (
                rand_fn(&mut rng),
                rand_fn(&mut rng),
                rand_fn(&mut rng),
                rand_fn(&mut rng),
            );
            if pointwise_condition(&cube, &alpha, &beta, &gamma, &delta, 0.0) {
                continue;
            }
            assert!(
                !set_condition_exhaustive(&cube, &alpha, &beta, &gamma, &delta, 0.0),
                "set condition cannot hold when pointwise fails on singletons"
            );
        }
    }

    #[test]
    fn fkg_inequality_for_ising() {
        let cube = Cube::new(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for _ in 0..20 {
            let m = IsingModel::random(3, 1.0, 1.5, &mut rng);
            let p = m.to_distribution();
            assert!(is_log_supermodular(&cube, &p, 1e-9));
            // Random set pair.
            let x = cube.set_from_predicate(|_| rng.gen());
            let y = cube.set_from_predicate(|_| rng.gen());
            assert!(
                supermodular_set_inequality(&cube, &p, &x, &y) >= -1e-9,
                "FKG-style inequality must hold for log-supermodular P"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_function_rejected() {
        let _ = CubeFn::new(vec![1.0, -0.5, 0.0, 0.2]);
    }

    #[test]
    fn cube_fn_sums() {
        let f = CubeFn::new(vec![1.0, 2.0, 3.0, 4.0]);
        let s = WorldSet::from_indices(4, [0, 3]);
        assert_eq!(f.sum_over(&s), 5.0);
        assert_eq!(f.at(2), 3.0);
    }
}
