//! Workload generators for experiments and benchmarks.
//!
//! The paper evaluates no datasets; its claims are about criteria on set
//! pairs `(A, B)` and prior families. These generators produce the
//! structured random workloads used by the experiment harness (`epi-bench`):
//! uniform random sets, density-controlled sets, random monotone sets,
//! random query-shaped sets (conjunctions/implications over record atoms),
//! and correlated `(A, B)` pairs with a controlled overlap.

use crate::cube::Cube;
use epi_core::WorldSet;
use rand::Rng;

/// A random subset of the cube where each world is included independently
/// with probability `density`.
pub fn random_set(cube: &Cube, density: f64, rng: &mut impl Rng) -> WorldSet {
    assert!((0.0..=1.0).contains(&density));
    cube.set_from_predicate(|_| rng.gen::<f64>() < density)
}

/// Like [`random_set`] but guaranteed non-empty (resamples a world when the
/// draw comes out empty).
pub fn random_nonempty_set(cube: &Cube, density: f64, rng: &mut impl Rng) -> WorldSet {
    let mut s = random_set(cube, density, rng);
    if s.is_empty() {
        s.insert(epi_core::WorldId(rng.gen_range(0..cube.size() as u32)));
    }
    s
}

/// A random up-set: the up-closure of a sparse random seed set.
pub fn random_up_set(cube: &Cube, seed_density: f64, rng: &mut impl Rng) -> WorldSet {
    cube.up_closure(&random_set(cube, seed_density, rng))
}

/// A random down-set: the down-closure of a sparse random seed set.
pub fn random_down_set(cube: &Cube, seed_density: f64, rng: &mut impl Rng) -> WorldSet {
    cube.down_closure(&random_set(cube, seed_density, rng))
}

/// The set of worlds satisfying a random conjunction of `k` literals — the
/// shape of `SELECT`-style Boolean queries ("records i, j present, record k
/// absent").
pub fn random_conjunction(cube: &Cube, k: usize, rng: &mut impl Rng) -> WorldSet {
    let k = k.min(cube.dims());
    // Choose k distinct coordinates.
    let mut coords: Vec<usize> = (0..cube.dims()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..coords.len());
        coords.swap(i, j);
    }
    let mut mask = 0u32;
    let mut values = 0u32;
    for &c in &coords[..k] {
        mask |= 1 << c;
        if rng.gen() {
            values |= 1 << c;
        }
    }
    cube.set_from_predicate(|w| w & mask == values)
}

/// The set for a random implication `presence(i) ⟹ presence(j)` with
/// `i ≠ j` — the §1.1 "HIV ⟹ transfusions" query shape.
pub fn random_implication(cube: &Cube, rng: &mut impl Rng) -> WorldSet {
    let n = cube.dims();
    assert!(n >= 2, "implication needs two coordinates");
    let i = rng.gen_range(0..n);
    let j = loop {
        let j = rng.gen_range(0..n);
        if j != i {
            break j;
        }
    };
    cube.set_from_predicate(|w| w >> i & 1 == 0 || w >> j & 1 == 1)
}

/// A correlated pair `(A, B)`: `B` copies each world's membership in `A`
/// with probability `correlation` and resamples it otherwise. At
/// `correlation = 1` the pair is `(A, A)` (maximally breaching); at `0` the
/// sets are independent.
pub fn correlated_pair(
    cube: &Cube,
    density: f64,
    correlation: f64,
    rng: &mut impl Rng,
) -> (WorldSet, WorldSet) {
    let a = random_nonempty_set(cube, density, rng);
    let b = cube.set_from_predicate(|w| {
        if rng.gen::<f64>() < correlation {
            a.contains(epi_core::WorldId(w))
        } else {
            rng.gen::<f64>() < density
        }
    });
    let mut b = b;
    if b.is_empty() {
        b.insert(a.first().expect("a is non-empty"));
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn densities_are_respected() {
        let cube = Cube::new(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let s = random_set(&cube, 0.3, &mut rng);
        let frac = s.len() as f64 / cube.size() as f64;
        assert!((frac - 0.3).abs() < 0.1, "density far off: {frac}");
        assert!(!random_nonempty_set(&cube, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn monotone_generators_produce_monotone_sets() {
        let cube = Cube::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(103);
        for _ in 0..20 {
            assert!(cube.is_up_set(&random_up_set(&cube, 0.1, &mut rng)));
            assert!(cube.is_down_set(&random_down_set(&cube, 0.1, &mut rng)));
        }
    }

    #[test]
    fn conjunction_is_a_subcube() {
        let cube = Cube::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(107);
        for k in 0..=5 {
            let s = random_conjunction(&cube, k, &mut rng);
            assert_eq!(s.len(), 1usize << (5 - k));
        }
    }

    #[test]
    fn implication_has_three_quarters_density() {
        let cube = Cube::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(109);
        for _ in 0..10 {
            let s = random_implication(&cube, &mut rng);
            assert_eq!(s.len(), cube.size() * 3 / 4);
        }
    }

    #[test]
    fn correlation_extremes() {
        let cube = Cube::new(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(113);
        let (a, b) = correlated_pair(&cube, 0.5, 1.0, &mut rng);
        assert_eq!(a, b);
        let (a, b) = correlated_pair(&cube, 0.5, 0.0, &mut rng);
        // Independent draws almost surely differ somewhere.
        assert_ne!(a, b);
    }
}
