//! # epi-boolean
//!
//! Section 5 of the *Epistemic Privacy* paper (Evfimievski–Fagin–Woodruff,
//! PODS 2008): privacy criteria over the Boolean cube `Ω = {0,1}ⁿ` under
//! modularity assumptions on the user's prior.
//!
//! * [`cube`] — the lattice `{0,1}ⁿ`, up/down-sets, critical coordinates;
//! * [`match_vec`] — match vectors, `Box(w)`, `Circ(w)` (Definition 5.8);
//! * [`distributions`] — product, log-supermodular (`Π_m⁺`) and
//!   log-submodular (`Π_m⁻`) priors; ferromagnetic Ising generators;
//! * [`four_functions`] — the Ahlswede–Daykin Four Functions Theorem
//!   (Theorem 5.3) and its FKG corollary;
//! * [`criteria`] — the decision criteria: Miklau–Suciu (Theorem 5.7),
//!   monotonicity (Corollary 5.5), **cancellation** (Proposition 5.9), the
//!   `Π_m⁺` necessary/sufficient pair (Propositions 5.2/5.4), and the
//!   box-counting necessary criterion (Proposition 5.10);
//! * [`generate`] — random workload generators for the experiments.
//!
//! # Quick start
//!
//! ```
//! use epi_boolean::{criteria, Cube};
//!
//! let cube = Cube::new(3);
//! // A: "record 2 present". B: "record 2 present ⟹ record 0 present".
//! let a = cube.set_from_predicate(|w| w & 0b100 != 0);
//! let b = cube.set_from_predicate(|w| w & 0b100 == 0 || w & 0b001 != 0);
//!
//! // Certified safe for every product prior by the cancellation criterion,
//! // even though A and B share the critical record 2:
//! assert!(criteria::cancellation::cancellation(&cube, &a, &b));
//! assert!(!criteria::miklau_suciu::independent(&cube, &a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criteria;
pub mod cube;
pub mod distributions;
pub mod four_functions;
pub mod generate;
pub mod match_vec;
pub mod sweep;

pub use cube::Cube;
pub use distributions::{IsingModel, ProductDist, RationalProductDist};
pub use match_vec::MatchVector;
