//! Match vectors, `Box(w)` and `Circ(w)` (Definition 5.8).
//!
//! The pairwise matching function maps a pair `(u, v)` of worlds to a
//! *match-vector* `w ∈ {0,1,*}ⁿ`: `w[i] = u[i]` where the worlds agree and
//! `w[i] = *` where they differ. Two derived sets drive the Section 5.1
//! criteria:
//!
//! * `Box(w)` — all worlds refining `w` (stars replaced by bits);
//! * `Circ(w)` — all pairs `(u, v)` with `Match(u, v) = w`.
//!
//! The cancellation criterion (Proposition 5.9) compares, for every `w`, the
//! number of pairs of `Circ(w)` drawn from `AB̄ × ĀB` against those from
//! `AB × ĀB̄`; the necessary criterion (Proposition 5.10) compares products
//! of `Box(w)` occupancies.

use epi_core::{WorldId, WorldSet};
use std::collections::HashMap;
use std::fmt;

/// A vector in `{0,1,*}ⁿ`, stored as a star mask plus the fixed bit values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchVector {
    /// Bits set where the vector has a `*`.
    pub stars: u32,
    /// Fixed bit values; always disjoint from `stars`.
    pub values: u32,
}

impl MatchVector {
    /// Creates a match-vector, normalizing `values` to be disjoint from
    /// `stars`.
    pub fn new(stars: u32, values: u32) -> MatchVector {
        MatchVector {
            stars,
            values: values & !stars,
        }
    }

    /// The matching function `Match(u, v)` of Definition 5.8.
    pub fn of_pair(u: u32, v: u32) -> MatchVector {
        let stars = u ^ v;
        MatchVector {
            stars,
            values: u & !stars,
        }
    }

    /// `true` iff the world `v` refines this vector.
    pub fn refined_by(&self, v: u32) -> bool {
        v & !self.stars == self.values
    }

    /// Number of stars.
    pub fn star_count(&self) -> u32 {
        self.stars.count_ones()
    }

    /// Renders in the paper's notation for a given dimension, most
    /// significant coordinate first (e.g. `01∗∗1`).
    pub fn display(&self, n: usize) -> String {
        (0..n)
            .rev()
            .map(|i| {
                if self.stars >> i & 1 == 1 {
                    '*'
                } else if self.values >> i & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// Enumerates all `3ⁿ` match-vectors of dimension `n`.
    pub fn all(n: usize) -> Vec<MatchVector> {
        assert!(n <= 16, "3ⁿ enumeration guarded to n ≤ 16");
        let mut out = Vec::with_capacity(3usize.pow(n as u32));
        let full = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        // Enumerate star masks, then values on the non-star coordinates.
        for stars in 0..=full {
            let fixed = full & !stars;
            let mut v = fixed;
            loop {
                out.push(MatchVector { stars, values: v });
                if v == 0 {
                    break;
                }
                v = (v - 1) & fixed;
            }
        }
        out
    }
}

impl fmt::Debug for MatchVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MatchVector(stars={:b}, values={:b})",
            self.stars, self.values
        )
    }
}

/// `Box(w)` — the set of worlds refining `w` — as a [`WorldSet`] over
/// `{0,1}ⁿ`.
pub fn box_set(w: MatchVector, n: usize) -> WorldSet {
    WorldSet::from_predicate(1 << n, |v| w.refined_by(v.0))
}

/// `|X ∩ Box(w)|` without materializing the box.
pub fn box_count(w: MatchVector, x: &WorldSet) -> usize {
    x.iter().filter(|v| w.refined_by(v.0)).count()
}

/// Counts `|(X × Y) ∩ Circ(w)|` for *every* `w` in one pass over the pairs:
/// returns a map from match-vector to pair count. This grouping is the
/// efficient evaluation strategy for the cancellation criterion (one
/// `|X|·|Y|` sweep instead of a `3ⁿ` outer loop).
pub fn circ_counts(x: &WorldSet, y: &WorldSet) -> HashMap<MatchVector, u64> {
    let mut counts = HashMap::new();
    for u in x {
        for v in y {
            *counts.entry(MatchVector::of_pair(u.0, v.0)).or_insert(0u64) += 1;
        }
    }
    counts
}

/// Counts `|(X × Y) ∩ Circ(w)|` for a single `w` by direct enumeration —
/// the naive strategy, kept as the ablation baseline for benchmarks.
pub fn circ_count_single(w: MatchVector, x: &WorldSet, y: &WorldSet) -> u64 {
    let mut count = 0;
    for u in x {
        for v in y {
            if MatchVector::of_pair(u.0, v.0) == w {
                count += 1;
            }
        }
    }
    count
}

/// Enumerates the pairs of `Circ(w)` within `X × Y`.
pub fn circ_pairs<'a>(
    w: MatchVector,
    x: &'a WorldSet,
    y: &'a WorldSet,
) -> impl Iterator<Item = (WorldId, WorldId)> + 'a {
    x.iter().flat_map(move |u| {
        y.iter()
            .filter(move |v| MatchVector::of_pair(u.0, v.0) == w)
            .map(move |v| (u, v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        // "pair (01011, 01101) gets mapped into 01∗∗1"
        let u = 0b01011;
        let v = 0b01101;
        let w = MatchVector::of_pair(u, v);
        assert_eq!(w.display(5), "01**1");
        assert!(w.refined_by(u));
        assert!(w.refined_by(v));
        assert_eq!(w.star_count(), 2);
    }

    #[test]
    fn box_contents() {
        let w = MatchVector::new(0b010, 0b001);
        let b = box_set(w, 3);
        assert_eq!(b, WorldSet::from_indices(8, [0b001, 0b011]));
        assert_eq!(box_count(w, &WorldSet::full(8)), 2);
    }

    #[test]
    fn all_vectors_count() {
        assert_eq!(MatchVector::all(1).len(), 3);
        assert_eq!(MatchVector::all(3).len(), 27);
        // No duplicates.
        let mut v = MatchVector::all(3);
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 27);
    }

    #[test]
    fn circ_counts_match_naive() {
        let x = WorldSet::from_indices(8, [0b000, 0b011, 0b101]);
        let y = WorldSet::from_indices(8, [0b011, 0b110, 0b111]);
        let grouped = circ_counts(&x, &y);
        for w in MatchVector::all(3) {
            let naive = circ_count_single(w, &x, &y);
            assert_eq!(
                grouped.get(&w).copied().unwrap_or(0),
                naive,
                "w = {}",
                w.display(3)
            );
        }
        // Total pairs.
        let total: u64 = grouped.values().sum();
        assert_eq!(total, (x.len() * y.len()) as u64);
    }

    #[test]
    fn circ_pairs_consistency() {
        let x = WorldSet::from_indices(4, [0b00, 0b01]);
        let y = WorldSet::from_indices(4, [0b10, 0b11]);
        let w = MatchVector::of_pair(0b00, 0b10);
        let pairs: Vec<_> = circ_pairs(w, &x, &y).collect();
        assert_eq!(pairs.len(), circ_count_single(w, &x, &y) as usize);
        for (u, v) in pairs {
            assert_eq!(MatchVector::of_pair(u.0, v.0), w);
        }
    }

    proptest! {
        #[test]
        fn prop_match_is_symmetric_up_to_values(u in 0u32..32, v in 0u32..32) {
            let w1 = MatchVector::of_pair(u, v);
            let w2 = MatchVector::of_pair(v, u);
            prop_assert_eq!(w1, w2); // agreement values identical, stars same
        }

        #[test]
        fn prop_box_membership(u in 0u32..32, v in 0u32..32, t in 0u32..32) {
            let w = MatchVector::of_pair(u, v);
            // t refines w iff t agrees with u (equivalently v) off the stars.
            prop_assert_eq!(w.refined_by(t), t & !w.stars == u & !w.stars);
        }

        #[test]
        fn prop_box_size_is_two_pow_stars(u in 0u32..32, v in 0u32..32) {
            let w = MatchVector::of_pair(u, v);
            prop_assert_eq!(box_set(w, 5).len(), 1usize << w.star_count());
        }
    }
}
