//! Parallel exhaustive sweeps over subset pairs of the cube.
//!
//! The validation harnesses for Theorem 3.11 (the unrestricted-prior
//! safety characterization) and Theorem 5.11 (the criteria hierarchy)
//! quantify over *all pairs of subsets* of `Ω` — `2^(2·2ⁿ)` pairs, the
//! dominant cost of experiments E4/E12. The sweeps here split the outer
//! subset loop across the [`epi_par`] pool; each worker scans its inner
//! loop sequentially, and results are combined in subset enumeration
//! order, so the reported counterexample (when one exists) is identical
//! to a sequential scan's regardless of worker count.

use crate::criteria::{cancellation, miklau_suciu, monotonicity};
use crate::cube::Cube;
use epi_core::{unrestricted, world, WorldSet};
use epi_par::Pool;

/// Searches all subset pairs `(A, B)` for one violating `pred`
/// (`pred(a, b) == false`), in parallel over the outer subset. Returns
/// the first violation in `(A, B)` enumeration order — the same pair a
/// sequential double loop would report — or `None` when `pred` holds
/// everywhere.
///
/// `nonempty_only` skips `∅` on both sides (the usual convention for the
/// criteria sweeps, where empty sets are trivially safe).
///
/// # Panics
///
/// Panics when `cube.dims() > 4`: beyond that the pair count (`2^32` at
/// `n = 4` already) makes an exhaustive sweep pointless.
pub fn find_pair_violation<F>(
    cube: &Cube,
    nonempty_only: bool,
    pred: F,
) -> Option<(WorldSet, WorldSet)>
where
    F: Fn(&WorldSet, &WorldSet) -> bool + Sync,
{
    assert!(cube.dims() <= 4, "exhaustive pair sweep guarded to n ≤ 4");
    let size = cube.size();
    let outer: Vec<WorldSet> = if nonempty_only {
        world::all_nonempty_subsets(size).collect()
    } else {
        world::all_subsets(size).collect()
    };
    let per_a: Vec<Option<(WorldSet, WorldSet)>> = Pool::global().parallel_map(&outer, |a| {
        let inner: Box<dyn Iterator<Item = WorldSet>> = if nonempty_only {
            Box::new(world::all_nonempty_subsets(size))
        } else {
            Box::new(world::all_subsets(size))
        };
        for b in inner {
            if !pred(a, &b) {
                return Some((a.clone(), b));
            }
        }
        None
    });
    per_a.into_iter().flatten().next()
}

/// Theorem 3.11 consistency sweep: for every subset pair, the
/// unconditional safety condition (`AB = ∅` or `A ∪ B = Ω`) holds iff no
/// two-point refuting prior exists. Returns the first inconsistent pair,
/// or `None` when the theorem checks out on this cube.
pub fn theorem_3_11_violation(cube: &Cube) -> Option<(WorldSet, WorldSet)> {
    find_pair_violation(cube, false, |a, b| {
        unrestricted::safe_unrestricted(a, b) == unrestricted::refute_unrestricted(a, b).is_none()
    })
}

/// Theorem 5.11 hierarchy sweep: Miklau–Suciu or masked monotonicity
/// implies cancellation on every nonempty subset pair. Returns the first
/// pair where an antecedent criterion fires but cancellation does not,
/// or `None` when the hierarchy holds on this cube.
pub fn theorem_5_11_violation(cube: &Cube) -> Option<(WorldSet, WorldSet)> {
    find_pair_violation(cube, true, |a, b| {
        let antecedent = miklau_suciu::independent(cube, a, b)
            || monotonicity::monotone_mask(cube, a, b).is_some();
        !antecedent || cancellation::cancellation(cube, a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_3_11_holds_exhaustively() {
        for n in [1usize, 2, 3] {
            let cube = Cube::new(n);
            assert_eq!(theorem_3_11_violation(&cube), None, "n = {n}");
        }
    }

    #[test]
    fn theorem_5_11_holds_exhaustively() {
        for n in [2usize, 3] {
            let cube = Cube::new(n);
            assert_eq!(theorem_5_11_violation(&cube), None, "n = {n}");
        }
    }

    #[test]
    fn violations_are_reported_in_sequential_order() {
        // A deliberately false predicate: the sweep must report the very
        // first pair in enumeration order no matter how many workers ran.
        let cube = Cube::new(2);
        let first = find_pair_violation(&cube, false, |_, _| false).unwrap();
        let mut subsets = world::all_subsets(cube.size());
        let expect = subsets.next().unwrap();
        assert_eq!(first.0, expect);
        assert_eq!(first.1, expect);

        // And a predicate false only on one specific pair finds that pair.
        let target = WorldSet::from_indices(4, [1, 2]);
        let found = find_pair_violation(&cube, false, |a, b| !(a == &target && b == &target))
            .expect("violation exists");
        assert_eq!(found, (target.clone(), target));
    }
}
