//! Wall-clock deadlines and cooperative cancellation.
//!
//! A production auditing service cannot let one Σ₂ᵖ-hard decision (the
//! product-solver path, §5 of the paper) run unbounded: every request
//! carries a [`Deadline`], the decision procedures check it at natural
//! commit points, and a timed-out decision comes back *undecided* — which
//! callers must treat as unsafe (the paper's deny-by-default posture for
//! `Safe_K(A,B)`, Definition 3.4, extended to partial failure).
//!
//! The two primitives compose:
//!
//! * [`CancelToken`] — a shared flag flipped once, checked cheaply from
//!   any thread. Used for pool-wide shutdown ("stop whatever you are
//!   computing, the daemon is draining").
//! * [`Deadline`] — an optional wall-clock cutoff plus an optional
//!   [`CancelToken`]. [`Deadline::check`] answers "should this
//!   computation stop, and why" in one call.
//!
//! Checks are designed to sit inside hot loops: a `Deadline` with neither
//! cutoff nor token short-circuits without reading the clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation was asked to stop early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock budget ran out.
    DeadlineExceeded,
    /// The attached [`CancelToken`] was cancelled (e.g. daemon shutdown).
    Cancelled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shared one-way cancellation flag. Cloning yields a handle to the
/// *same* flag; once [`CancelToken::cancel`] is called every clone
/// observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A wall-clock budget plus an optional cancellation hook, threaded
/// through the decision procedures.
///
/// `Deadline` is cheap to clone (an `Option<Instant>` and an `Arc`) and
/// cheap to check: [`Deadline::none`] never touches the clock.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    at: Option<Instant>,
    token: Option<CancelToken>,
}

impl Deadline {
    /// No budget and no cancellation: [`Deadline::check`] always passes.
    pub fn none() -> Deadline {
        Deadline::default()
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + budget),
            token: None,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline {
            at: Some(instant),
            token: None,
        }
    }

    /// Attaches a cancellation token; [`Deadline::check`] then also fails
    /// once the token is cancelled.
    pub fn with_token(mut self, token: CancelToken) -> Deadline {
        self.token = Some(token);
        self
    }

    /// Whether this deadline can ever stop anything (has a cutoff or a
    /// token). `false` means checks are free.
    pub fn is_bounded(&self) -> bool {
        self.at.is_some() || self.token.is_some()
    }

    /// The wall-clock cutoff, if one was set.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// Time left before the cutoff: `None` when unbounded, `Some(0)` when
    /// already past.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// `Ok(())` to keep going, `Err(reason)` to stop. Cancellation is
    /// reported ahead of expiry when both hold (shutdown is the more
    /// specific signal).
    pub fn check(&self) -> Result<(), StopReason> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(StopReason::Cancelled);
            }
        }
        if let Some(at) = self.at {
            if Instant::now() >= at {
                return Err(StopReason::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Convenience: `true` iff [`Deadline::check`] would fail.
    pub fn should_stop(&self) -> bool {
        self.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadline_always_passes() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert_eq!(d.check(), Ok(()));
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let d = Deadline::within(Duration::ZERO);
        assert!(d.is_bounded());
        assert_eq!(d.check(), Err(StopReason::DeadlineExceeded));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_passes() {
        let d = Deadline::within(Duration::from_secs(3600));
        assert_eq!(d.check(), Ok(()));
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let token = CancelToken::new();
        let d = Deadline::none().with_token(token.clone());
        assert_eq!(d.check(), Ok(()));
        token.clone().cancel();
        assert!(token.is_cancelled());
        assert_eq!(d.check(), Err(StopReason::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_expiry() {
        let token = CancelToken::new();
        token.cancel();
        let d = Deadline::within(Duration::ZERO).with_token(token);
        assert_eq!(d.check(), Err(StopReason::Cancelled));
    }

    #[test]
    fn stop_reasons_render() {
        assert_eq!(
            StopReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
    }
}
