//! Error types for `epi-core`.

use std::fmt;

/// Errors produced while constructing knowledge structures or evaluating
/// privacy predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A knowledge world `(ω, S)` violated the consistency requirement
    /// `ω ∈ S` (Remark 2.3).
    InconsistentKnowledgeWorld {
        /// Index of the offending world.
        world: u32,
    },
    /// A probabilistic knowledge world `(ω, P)` violated `P(ω) > 0`.
    ZeroProbabilityWorld {
        /// Index of the offending world.
        world: u32,
    },
    /// A second-level knowledge set was empty (∅ is not valid, §2).
    EmptyKnowledge,
    /// Two structures over different universes were combined.
    UniverseMismatch {
        /// Universe size of the first operand.
        expected: usize,
        /// Universe size of the offending operand.
        found: usize,
    },
    /// A probability vector did not sum to 1 (within tolerance) or contained
    /// a negative entry.
    InvalidDistribution {
        /// Explanation of the violation.
        reason: String,
    },
    /// A disclosure set `B` was inconsistent with the required actual world
    /// (`ω* ∉ B`): `B` must be true to have been disclosed (§3).
    DisclosureExcludesActualWorld {
        /// Index of the actual world.
        world: u32,
    },
    /// A world index did not fit the `u32` world-id space (universes are
    /// bounded by `2³²` worlds).
    WorldIndexOutOfRange {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InconsistentKnowledgeWorld { world } => write!(
                f,
                "knowledge world (ω{world}, S) is inconsistent: ω{world} ∉ S"
            ),
            CoreError::ZeroProbabilityWorld { world } => write!(
                f,
                "probabilistic knowledge world (ω{world}, P) is inconsistent: P(ω{world}) = 0"
            ),
            CoreError::EmptyKnowledge => {
                write!(f, "the empty set is not a valid second-level knowledge set")
            }
            CoreError::UniverseMismatch { expected, found } => write!(
                f,
                "universe size mismatch: expected {expected} worlds, found {found}"
            ),
            CoreError::InvalidDistribution { reason } => {
                write!(f, "invalid probability distribution: {reason}")
            }
            CoreError::DisclosureExcludesActualWorld { world } => write!(
                f,
                "disclosure B excludes the actual world ω{world}; a disclosed property must be true"
            ),
            CoreError::WorldIndexOutOfRange { index } => {
                write!(f, "world index {index} exceeds the u32 world-id space")
            }
        }
    }
}

impl std::error::Error for CoreError {}
