//! Concrete intersection-closed knowledge families.
//!
//! Each family implements [`crate::intervals::IntervalOracle`] with a
//! closed-form interval computation (no enumeration of `K`), and offers a
//! `to_knowledge()` materialization for cross-validation on small instances.
//!
//! * [`rectangles`] — integer sub-rectangles of a pixel grid
//!   (Example 4.9 / Figure 1 of the paper);
//! * [`subcubes`] — subcubes of `{0,1}ⁿ` (partial-assignment knowledge, the
//!   natural model for users who learned the values of some record slots);
//! * [`upsets`] — up-sets of `{0,1}ⁿ` (knowledge closed upward: users who
//!   can only rule worlds out from below);
//! * [`trivial`] — the rigid family `Σ = {Ω}` of Remark 4.2, the standard
//!   counterexample for tightness and preservation.

pub mod rectangles;
pub mod subcubes;
pub mod trivial;
pub mod upsets;

pub use rectangles::RectangleFamily;
pub use subcubes::SubcubeFamily;
pub use trivial::TrivialFamily;
pub use upsets::UpsetFamily;
