//! The integer-rectangle knowledge family of Example 4.9 / Figure 1.
//!
//! `Ω` is a `width × height` grid of pixels (worlds); the user's permitted
//! knowledge sets `Σ` are the *integer sub-rectangles* — rectangles whose
//! corners have integer coordinates, i.e. unions of whole pixels forming an
//! axis-aligned box. `Σ` is ∩-closed (the intersection of two rectangles
//! containing a common pixel is a rectangle), and the `K`-interval
//! `I_K(ω₁, ω₂)` is the bounding rectangle of the two pixels — exactly the
//! light-grey rectangles of Figure 1.
//!
//! Pixels are identified with their 0-based column/row pair `(x, y)`; the
//! pixel `(x, y)` occupies the unit square from corner `(x, y)` to corner
//! `(x+1, y+1)`, matching the paper's corner-coordinate convention (the
//! figure's "rectangle from point (1,1) to point (4,4)" contains pixels
//! `x ∈ {1,2,3}`, `y ∈ {1,2,3}`).

use crate::intervals::IntervalOracle;
use crate::knowledge::{KnowledgeWorld, PossKnowledge};
use crate::world::{WorldId, WorldSet};

/// The auditor's knowledge `K = Ω ⊗ Σ` where `Σ` is the family of integer
/// sub-rectangles of a `width × height` pixel grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RectangleFamily {
    width: usize,
    height: usize,
}

/// An integer rectangle given by inclusive pixel ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PixelRect {
    /// Smallest column index.
    pub x0: usize,
    /// Smallest row index.
    pub y0: usize,
    /// Largest column index (inclusive).
    pub x1: usize,
    /// Largest row index (inclusive).
    pub y1: usize,
}

impl PixelRect {
    /// The rectangle's description in the paper's corner coordinates:
    /// `(x0, y0) − (x1+1, y1+1)`.
    pub fn corner_form(&self) -> ((usize, usize), (usize, usize)) {
        ((self.x0, self.y0), (self.x1 + 1, self.y1 + 1))
    }

    /// Number of pixels covered.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0 + 1) * (self.y1 - self.y0 + 1)
    }
}

impl RectangleFamily {
    /// Creates the family over a `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid.
    pub fn new(width: usize, height: usize) -> RectangleFamily {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        RectangleFamily { width, height }
    }

    /// The 14 × 7 grid of Figure 1.
    pub fn figure1() -> RectangleFamily {
        RectangleFamily::new(14, 7)
    }

    /// Grid width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// World id of the pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of the grid.
    pub fn pixel(&self, x: usize, y: usize) -> WorldId {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) outside grid"
        );
        WorldId((y * self.width + x) as u32)
    }

    /// Column/row pair of a world id.
    pub fn coords(&self, w: WorldId) -> (usize, usize) {
        (w.index() % self.width, w.index() / self.width)
    }

    /// The [`WorldSet`] covered by a rectangle.
    pub fn rect_set(&self, r: PixelRect) -> WorldSet {
        assert!(r.x0 <= r.x1 && r.y0 <= r.y1 && r.x1 < self.width && r.y1 < self.height);
        WorldSet::from_predicate(self.width * self.height, |w| {
            let (x, y) = self.coords(w);
            (r.x0..=r.x1).contains(&x) && (r.y0..=r.y1).contains(&y)
        })
    }

    /// The bounding rectangle of a non-empty set, if the set is exactly an
    /// integer rectangle; `None` otherwise.
    pub fn as_rect(&self, s: &WorldSet) -> Option<PixelRect> {
        let r = self.bounding_rect(s)?;
        (r.area() == s.len()).then_some(r)
    }

    /// The bounding rectangle of a non-empty set.
    pub fn bounding_rect(&self, s: &WorldSet) -> Option<PixelRect> {
        let mut it = s.iter();
        let first = it.next()?;
        let (mut x0, mut y0) = self.coords(first);
        let (mut x1, mut y1) = (x0, y0);
        for w in it {
            let (x, y) = self.coords(w);
            x0 = x0.min(x);
            y0 = y0.min(y);
            x1 = x1.max(x);
            y1 = y1.max(y);
        }
        Some(PixelRect { x0, y0, x1, y1 })
    }

    /// Materializes `K = Ω ⊗ Σ` explicitly (quadratic number of rectangles
    /// times pixels; guarded to small grids for cross-validation).
    pub fn to_knowledge(&self) -> PossKnowledge {
        assert!(
            self.width * self.height <= 64,
            "explicit materialization guarded to ≤ 64 pixels"
        );
        let mut pairs = Vec::new();
        for x0 in 0..self.width {
            for x1 in x0..self.width {
                for y0 in 0..self.height {
                    for y1 in y0..self.height {
                        let set = self.rect_set(PixelRect { x0, y0, x1, y1 });
                        for w in &set {
                            pairs.push(KnowledgeWorld::new(w, set.clone()).unwrap());
                        }
                    }
                }
            }
        }
        PossKnowledge::from_pairs(pairs).expect("non-empty grid yields non-empty K")
    }

    /// Renders an ASCII picture of the grid in the style of Figure 1:
    /// `#` marks worlds of `mark_a` (e.g. `Ā`), `+` marks worlds of
    /// `mark_b`, `*` marks worlds in both, `.` the rest.
    pub fn render(&self, mark_a: &WorldSet, mark_b: &WorldSet) -> String {
        let mut out = String::new();
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let w = self.pixel(x, y);
                let c = match (mark_a.contains(w), mark_b.contains(w)) {
                    (true, true) => '*',
                    (true, false) => '#',
                    (false, true) => '+',
                    (false, false) => '·',
                };
                out.push(c);
            }
            out.push('\n');
        }
        out
    }
}

impl IntervalOracle for RectangleFamily {
    fn universe_size(&self) -> usize {
        self.width * self.height
    }

    fn interval(&self, w1: WorldId, w2: WorldId) -> Option<WorldSet> {
        // Every pixel pair lies in some rectangle, and the smallest one is
        // their bounding box.
        let (x1, y1) = self.coords(w1);
        let (x2, y2) = self.coords(w2);
        Some(self.rect_set(PixelRect {
            x0: x1.min(x2),
            y0: y1.min(y2),
            x1: x1.max(x2),
            y1: y1.max(y2),
        }))
    }

    fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool {
        self.as_rect(set).is_some() && set.contains(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{
        margin::has_tight_intervals, minimal::minimal_intervals, safe_via_intervals, ExplicitOracle,
    };
    use crate::possibilistic;
    use crate::world::all_nonempty_subsets;

    #[test]
    fn pixel_indexing_roundtrip() {
        let f = RectangleFamily::new(14, 7);
        for y in 0..7 {
            for x in 0..14 {
                let w = f.pixel(x, y);
                assert_eq!(f.coords(w), (x, y));
            }
        }
    }

    #[test]
    fn figure1_interval_examples() {
        // "For ω₁ and ω₂ in Figure 1, the interval I_K(ω₁, ω₂) is the
        // light-grey rectangle from point (1,1) to point (4,4); for ω₁ and
        // ω₂′, … from point (1,1) to point (9,3)."
        let f = RectangleFamily::figure1();
        let w1 = f.pixel(1, 1);
        let w2 = f.pixel(3, 3);
        let i = f.interval(w1, w2).unwrap();
        let rect = f.as_rect(&i).unwrap();
        assert_eq!(rect.corner_form(), ((1, 1), (4, 4)));

        let w2p = f.pixel(8, 2);
        let i = f.interval(w1, w2p).unwrap();
        let rect = f.as_rect(&i).unwrap();
        assert_eq!(rect.corner_form(), ((1, 1), (9, 3)));
    }

    #[test]
    fn intervals_match_explicit_enumeration() {
        let f = RectangleFamily::new(4, 3);
        let k = f.to_knowledge();
        assert!(k.is_inter_closed());
        let explicit = ExplicitOracle::new(&k);
        for i in 0..12u32 {
            for j in 0..12u32 {
                assert_eq!(
                    f.interval(WorldId(i), WorldId(j)),
                    explicit.interval(WorldId(i), WorldId(j)),
                    "interval mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn safety_matches_definition_exhaustively() {
        // Closed-form oracle vs Definition 3.1 on a 4×3 grid (2¹² subsets is
        // too many; sample structured A, B).
        let f = RectangleFamily::new(2, 2);
        let k = f.to_knowledge();
        for a in all_nonempty_subsets(4) {
            for b in all_nonempty_subsets(4) {
                assert_eq!(
                    possibilistic::is_safe(&k, &a, &b),
                    safe_via_intervals(&f, &a, &b),
                    "A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn rectangles_have_tight_intervals() {
        // Every interior pixel of a bounding box induces a strictly smaller
        // bounding box unless it is the far corner — which only happens for
        // the target. (Definition 4.13 holds for this family.)
        let f = RectangleFamily::new(4, 3);
        assert!(has_tight_intervals(&f));
    }

    #[test]
    fn figure1_minimal_intervals() {
        // Reconstruct the Ā of Figure 1 far enough to reproduce its three
        // minimal intervals from ω₁: the rectangles (1,1)−(4,4),
        // (1,1)−(5,3) and (1,1)−(6,2).
        let f = RectangleFamily::figure1();
        let n = f.universe_size();
        let w1 = f.pixel(1, 1);
        // Ā: an ellipse-like blob whose lower-left frontier passes through
        // pixels (3,3), (4,2), (5,1).
        let mut not_a = WorldSet::empty(n);
        for (x, y) in [
            (3, 3),
            (4, 2),
            (5, 1),
            (4, 4),
            (5, 3),
            (6, 2),
            (6, 1),
            (5, 4),
            (6, 3),
            (7, 2),
            (7, 1),
            (6, 4),
            (7, 3),
            (8, 2),
            (8, 3),
            (7, 4),
            (8, 4),
            (9, 2),
            (9, 3),
        ] {
            not_a.insert(f.pixel(x, y));
        }
        let ms = minimal_intervals(&f, w1, &not_a);
        let mut corner_forms: Vec<_> = ms
            .iter()
            .map(|m| f.as_rect(&m.interval).unwrap().corner_form())
            .collect();
        corner_forms.sort();
        assert_eq!(
            corner_forms,
            vec![((1, 1), (4, 4)), ((1, 1), (5, 3)), ((1, 1), (6, 2))],
            "Figure 1's three minimal intervals"
        );
    }

    #[test]
    fn as_rect_rejects_non_rectangles() {
        let f = RectangleFamily::new(4, 3);
        let mut s = f.rect_set(PixelRect {
            x0: 0,
            y0: 0,
            x1: 1,
            y1: 1,
        });
        assert!(f.as_rect(&s).is_some());
        s.insert(f.pixel(3, 2));
        assert!(f.as_rect(&s).is_none());
        assert!(f.bounding_rect(&s).is_some());
        assert!(f.as_rect(&WorldSet::empty(12)).is_none());
    }

    #[test]
    fn render_shape() {
        let f = RectangleFamily::new(3, 2);
        let a = f.rect_set(PixelRect {
            x0: 0,
            y0: 0,
            x1: 0,
            y1: 1,
        });
        let b = f.rect_set(PixelRect {
            x0: 0,
            y0: 1,
            x1: 2,
            y1: 1,
        });
        let pic = f.render(&a, &b);
        // Top row rendered first (y = 1): a∩b at x=0, then b.
        assert_eq!(pic, "*++\n#··\n");
    }
}
