//! The subcube knowledge family over `Ω = {0,1}ⁿ`.
//!
//! Worlds are bit-vectors (subsets of `n` database records, as in Section 5
//! of the paper); the permitted knowledge sets are *subcubes* — sets of the
//! form "coordinates in `F` are fixed to given values, the rest are free".
//! This models a user who has learned the exact presence/absence of some
//! records and knows nothing about the others. Subcubes are ∩-closed, and
//! the interval `I_K(ω₁, ω₂)` fixes exactly the coordinates on which `ω₁`
//! and `ω₂` agree.

use crate::intervals::IntervalOracle;
use crate::knowledge::{KnowledgeWorld, PossKnowledge};
use crate::world::{WorldId, WorldSet};

/// The family `K = Ω ⊗ {subcubes of {0,1}ⁿ}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubcubeFamily {
    n: usize,
}

impl SubcubeFamily {
    /// Creates the family over `{0,1}ⁿ`.
    ///
    /// # Panics
    ///
    /// Panics when `n > 20` (the universe has `2ⁿ` worlds).
    pub fn new(n: usize) -> SubcubeFamily {
        assert!((1..=20).contains(&n), "subcube family supports 1 ≤ n ≤ 20");
        SubcubeFamily { n }
    }

    /// Number of coordinates `n`.
    pub fn dims(&self) -> usize {
        self.n
    }

    /// World id of a bitmask.
    pub fn world(&self, mask: u32) -> WorldId {
        assert!(mask < (1u32 << self.n));
        WorldId(mask)
    }

    /// The subcube with coordinates in `fixed_mask` pinned to the bits of
    /// `values` (bits of `values` outside `fixed_mask` are ignored).
    pub fn subcube(&self, fixed_mask: u32, values: u32) -> WorldSet {
        let v = values & fixed_mask;
        WorldSet::from_predicate(1 << self.n, |w| (w.0 & fixed_mask) == v)
    }

    /// If `s` is exactly a subcube, returns `(fixed_mask, values)`.
    pub fn as_subcube(&self, s: &WorldSet) -> Option<(u32, u32)> {
        let first = s.first()?;
        // Coordinates where all members agree.
        let mut fixed = (1u32 << self.n) - 1;
        for w in s {
            fixed &= !(w.0 ^ first.0);
        }
        let free = self.n as u32 - fixed.count_ones();
        (s.len() == 1usize << free).then_some((fixed, first.0 & fixed))
    }

    /// Materializes `K` explicitly (guarded to `n ≤ 4` — `3ⁿ` subcubes with
    /// `2^(free)` members each).
    pub fn to_knowledge(&self) -> PossKnowledge {
        assert!(self.n <= 4, "explicit materialization guarded to n ≤ 4");
        let mut pairs = Vec::new();
        let full_mask = (1u32 << self.n) - 1;
        for fixed in 0..=full_mask {
            // Enumerate values on the fixed coordinates via subset trick.
            let mut v = fixed;
            loop {
                let set = self.subcube(fixed, v);
                for w in &set {
                    pairs.push(KnowledgeWorld::new(w, set.clone()).unwrap());
                }
                if v == 0 {
                    break;
                }
                v = (v - 1) & fixed;
            }
        }
        PossKnowledge::from_pairs(pairs).expect("non-empty")
    }
}

impl IntervalOracle for SubcubeFamily {
    fn universe_size(&self) -> usize {
        1 << self.n
    }

    fn interval(&self, w1: WorldId, w2: WorldId) -> Option<WorldSet> {
        // Smallest subcube containing both: fix the agreeing coordinates.
        let agree = !(w1.0 ^ w2.0) & ((1u32 << self.n) - 1);
        Some(self.subcube(agree, w1.0))
    }

    fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool {
        self.as_subcube(set).is_some() && set.contains(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{margin::has_tight_intervals, safe_via_intervals, ExplicitOracle};
    use crate::possibilistic;
    use crate::world::all_nonempty_subsets;

    #[test]
    fn subcube_construction() {
        let f = SubcubeFamily::new(3);
        // Fix coordinate 0 (lsb) to 1: worlds {001, 011, 101, 111}.
        let s = f.subcube(0b001, 0b001);
        assert_eq!(s, WorldSet::from_indices(8, [1, 3, 5, 7]));
        assert_eq!(f.as_subcube(&s), Some((0b001, 0b001)));
        // Entire cube.
        let all = f.subcube(0, 0);
        assert!(all.is_full());
        assert_eq!(f.as_subcube(&all), Some((0, 0)));
    }

    #[test]
    fn as_subcube_rejects_non_cubes() {
        let f = SubcubeFamily::new(2);
        let s = WorldSet::from_indices(4, [0, 3]); // diagonal, not a cube
        assert!(f.as_subcube(&s).is_none());
        let s = WorldSet::from_indices(4, [0, 1, 3]);
        assert!(f.as_subcube(&s).is_none());
    }

    #[test]
    fn interval_fixes_agreement() {
        let f = SubcubeFamily::new(3);
        // ω₁ = 010, ω₂ = 011 agree on coords 1, 2 → interval = {010, 011}.
        let i = f.interval(WorldId(0b010), WorldId(0b011)).unwrap();
        assert_eq!(i, WorldSet::from_indices(8, [2, 3]));
        // Antipodal worlds: interval is the whole cube.
        let i = f.interval(WorldId(0b000), WorldId(0b111)).unwrap();
        assert!(i.is_full());
    }

    #[test]
    fn matches_explicit_enumeration() {
        let f = SubcubeFamily::new(3);
        let k = f.to_knowledge();
        assert!(k.is_inter_closed());
        let explicit = ExplicitOracle::new(&k);
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_eq!(
                    f.interval(WorldId(i), WorldId(j)),
                    explicit.interval(WorldId(i), WorldId(j))
                );
            }
        }
    }

    #[test]
    fn safety_matches_definition() {
        let f = SubcubeFamily::new(2);
        let k = f.to_knowledge();
        for a in all_nonempty_subsets(4) {
            for b in all_nonempty_subsets(4) {
                assert_eq!(
                    possibilistic::is_safe(&k, &a, &b),
                    safe_via_intervals(&f, &a, &b),
                    "A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn subcubes_lack_tight_intervals() {
        // The interval {0,1}² from 00 to 11 contains 01, whose interval from
        // 00 is {00, 01} — fine; but it also contains 10 and 11, and the
        // interval to 01 is not a *subset chain* through every world:
        // tightness demands I(00, w) ⊊ I(00, 11) for ALL w ≠ 11 in it, which
        // holds; but I(00,11) itself viewed from target 01... Verify
        // computationally rather than by hand:
        let f = SubcubeFamily::new(2);
        // For subcubes, tightness actually holds: agreeing-coordinate cubes
        // shrink strictly as the target moves closer. Assert the computed
        // truth so regressions surface.
        assert!(has_tight_intervals(&f));
    }
}
