//! The rigid family `Σ = {Ω}` of Remark 4.2.
//!
//! Every user is assumed to know nothing (`S = Ω`). This tiny family is the
//! paper's canonical counterexample: it is ∩-closed but does not have tight
//! intervals, no safety-margin function `β` exists for it
//! (Remark 4.2), and no strict disclosure is `K`-preserving.

use crate::intervals::IntervalOracle;
use crate::knowledge::{KnowledgeWorld, PossKnowledge};
use crate::world::{WorldId, WorldSet};

/// The family `K = Ω ⊗ {Ω}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrivialFamily {
    universe: usize,
}

impl TrivialFamily {
    /// Creates the family over a universe of the given size.
    pub fn new(universe: usize) -> TrivialFamily {
        assert!(universe > 0);
        TrivialFamily { universe }
    }

    /// Materializes `K` explicitly.
    pub fn to_knowledge(&self) -> PossKnowledge {
        let full = WorldSet::full(self.universe);
        let pairs = (0..self.universe as u32)
            .map(|i| KnowledgeWorld::new(WorldId(i), full.clone()).unwrap())
            .collect();
        PossKnowledge::from_pairs(pairs).expect("non-empty")
    }
}

impl IntervalOracle for TrivialFamily {
    fn universe_size(&self) -> usize {
        self.universe
    }

    fn interval(&self, _w1: WorldId, _w2: WorldId) -> Option<WorldSet> {
        Some(WorldSet::full(self.universe))
    }

    fn contains_pair(&self, _world: WorldId, set: &WorldSet) -> bool {
        set.is_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{margin::has_tight_intervals, safe_via_intervals, ExplicitOracle};
    use crate::possibilistic;
    use crate::preserving::is_preserving_poss;
    use crate::world::all_nonempty_subsets;

    #[test]
    fn matches_explicit() {
        let f = TrivialFamily::new(3);
        let k = f.to_knowledge();
        let explicit = ExplicitOracle::new(&k);
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert_eq!(
                    f.interval(WorldId(i), WorldId(j)),
                    explicit.interval(WorldId(i), WorldId(j))
                );
            }
        }
        for a in all_nonempty_subsets(3) {
            for b in all_nonempty_subsets(3) {
                assert_eq!(
                    possibilistic::is_safe(&k, &a, &b),
                    safe_via_intervals(&f, &a, &b)
                );
            }
        }
    }

    #[test]
    fn remark_4_2_counterexample() {
        // Ω = {1,2,3} (indices 0,1,2), A = {3} (index 2): B₁ = {1,3} and
        // B₂ = {2,3} both protect A, yet B₁ ∩ B₂ = {3} does not.
        let f = TrivialFamily::new(3);
        let a = WorldSet::from_indices(3, [2]);
        let b1 = WorldSet::from_indices(3, [0, 2]);
        let b2 = WorldSet::from_indices(3, [1, 2]);
        assert!(safe_via_intervals(&f, &a, &b1));
        assert!(safe_via_intervals(&f, &a, &b2));
        assert!(!safe_via_intervals(&f, &a, &b1.intersection(&b2)));
    }

    #[test]
    fn not_tight_and_not_preserving() {
        let f = TrivialFamily::new(3);
        assert!(!has_tight_intervals(&f));
        let k = f.to_knowledge();
        assert!(!is_preserving_poss(&k, &WorldSet::from_indices(3, [0, 2])));
        assert!(is_preserving_poss(&k, &WorldSet::full(3)));
    }
}
