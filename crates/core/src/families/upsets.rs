//! The up-set knowledge family over `Ω = {0,1}ⁿ`.
//!
//! Knowledge sets are the non-empty *up-sets* of the subset lattice: sets
//! `S` with `ω ∈ S ∧ ω ≼ ω′ ⟹ ω′ ∈ S`. This models users whose evidence
//! only ever rules out records' *absence* — e.g. they may learn "record `r`
//! is in the database" but never "record `r` is absent", so the worlds they
//! consider possible stay closed upward. Up-sets are ∩-closed; the interval
//! `I_K(ω₁, ω₂)` is the up-closure of `{ω₁, ω₂}`.

use crate::intervals::IntervalOracle;
use crate::knowledge::{KnowledgeWorld, PossKnowledge};
use crate::world::{WorldId, WorldSet};

/// The family `K = Ω ⊗ {non-empty up-sets of {0,1}ⁿ}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpsetFamily {
    n: usize,
}

impl UpsetFamily {
    /// Creates the family over `{0,1}ⁿ`.
    ///
    /// # Panics
    ///
    /// Panics when `n > 20`.
    pub fn new(n: usize) -> UpsetFamily {
        assert!((1..=20).contains(&n), "up-set family supports 1 ≤ n ≤ 20");
        UpsetFamily { n }
    }

    /// Number of coordinates.
    pub fn dims(&self) -> usize {
        self.n
    }

    /// The up-closure `↑X = {ω : ∃ x ∈ X, x ≼ ω}`.
    pub fn up_closure(&self, x: &WorldSet) -> WorldSet {
        WorldSet::from_predicate(1 << self.n, |w| x.iter().any(|gen| gen.0 & w.0 == gen.0))
    }

    /// `true` iff `s` is an up-set.
    pub fn is_upset(&self, s: &WorldSet) -> bool {
        let full = (1u32 << self.n) - 1;
        s.iter().all(|w| {
            // All single-bit additions stay in s.
            let mut missing = full & !w.0;
            while missing != 0 {
                let bit = missing & missing.wrapping_neg();
                if !s.contains(WorldId(w.0 | bit)) {
                    return false;
                }
                missing &= missing - 1;
            }
            true
        })
    }

    /// Materializes `K` explicitly (guarded to `n ≤ 3`; the number of
    /// up-sets is the Dedekind number).
    pub fn to_knowledge(&self) -> PossKnowledge {
        assert!(self.n <= 3, "explicit materialization guarded to n ≤ 3");
        let size = 1usize << self.n;
        let mut pairs = Vec::new();
        for s in crate::world::all_nonempty_subsets(size) {
            if self.is_upset(&s) {
                for w in &s {
                    pairs.push(KnowledgeWorld::new(w, s.clone()).unwrap());
                }
            }
        }
        PossKnowledge::from_pairs(pairs).expect("non-empty")
    }
}

impl IntervalOracle for UpsetFamily {
    fn universe_size(&self) -> usize {
        1 << self.n
    }

    fn interval(&self, w1: WorldId, w2: WorldId) -> Option<WorldSet> {
        // Smallest up-set containing both worlds: ↑{ω₁, ω₂}.
        let pair = {
            let mut s = WorldSet::empty(1 << self.n);
            s.insert(w1);
            s.insert(w2);
            s
        };
        Some(self.up_closure(&pair))
    }

    fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool {
        set.contains(world) && self.is_upset(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{safe_via_intervals, ExplicitOracle};
    use crate::possibilistic;
    use crate::world::all_nonempty_subsets;

    #[test]
    fn up_closure_basics() {
        let f = UpsetFamily::new(3);
        let x = WorldSet::from_indices(8, [0b010]);
        let up = f.up_closure(&x);
        assert_eq!(up, WorldSet::from_indices(8, [0b010, 0b011, 0b110, 0b111]));
        assert!(f.is_upset(&up));
        assert!(!f.is_upset(&x));
    }

    #[test]
    fn interval_is_up_closure_of_pair() {
        let f = UpsetFamily::new(2);
        let i = f.interval(WorldId(0b01), WorldId(0b10)).unwrap();
        assert_eq!(i, WorldSet::from_indices(4, [0b01, 0b10, 0b11]));
        // Comparable worlds: up-closure of the smaller.
        let i = f.interval(WorldId(0b00), WorldId(0b11)).unwrap();
        assert!(i.is_full());
    }

    #[test]
    fn matches_explicit_enumeration() {
        let f = UpsetFamily::new(3);
        let k = f.to_knowledge();
        assert!(k.is_inter_closed());
        let explicit = ExplicitOracle::new(&k);
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_eq!(
                    f.interval(WorldId(i), WorldId(j)),
                    explicit.interval(WorldId(i), WorldId(j)),
                    "interval mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn safety_matches_definition() {
        let f = UpsetFamily::new(2);
        let k = f.to_knowledge();
        for a in all_nonempty_subsets(4) {
            for b in all_nonempty_subsets(4) {
                assert_eq!(
                    possibilistic::is_safe(&k, &a, &b),
                    safe_via_intervals(&f, &a, &b),
                    "A={a:?} B={b:?}"
                );
            }
        }
    }
}
