//! Safety margins (Proposition 4.1, Definition 4.13, Corollary 4.14).
//!
//! Proposition 4.1 associates with every audited property `A` a *safety
//! margin* function `β : A → P(Ω − A)` such that
//!
//! ```text
//! (∀ ω ∈ A∩B:  β(ω) ⊆ B)   ⟹   Safe_K(A, B)                     (12)
//! ```
//!
//! with the converse (13) holding for `K`-preserving `B`. When `K` is
//! ∩-closed and has *tight intervals* (Definition 4.13), Corollary 4.14 gives
//! the margin in closed form: `β(ω₁) = ⋃ Δ_K(Ā, ω₁)`, and the implication
//! becomes an equivalence for all `B`. The auditor computes `β` once per
//! audit query `A` and then screens any number of disclosures `B₁ … B_N`
//! with a subset test each — the batch-auditing mode the paper highlights.

use super::partition::delta_partition;
use super::IntervalOracle;
use crate::world::{WorldId, WorldSet};

/// A precomputed safety margin `β : A → P(Ω − A)` for one audit query `A`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyMargin {
    a: WorldSet,
    /// `margins[i]` is `β(ωᵢ)` for the `i`-th world of `A` in index order.
    margins: Vec<WorldSet>,
    /// Whether the margin test is exact (`K` has tight intervals) or only
    /// sufficient-and-(for `K`-preserving `B`)-necessary.
    exact: bool,
}

/// Tests whether an ∩-closed `K` has *tight intervals* (Definition 4.13):
/// for every interval, every interior world other than the target generates
/// a strictly smaller interval:
///
/// ```text
/// ∀ ω₂′ ∈ I_K(ω₁, ω₂):  ω₂′ ≠ ω₂  ⟹  I_K(ω₁, ω₂′) ⊊ I_K(ω₁, ω₂)
/// ```
pub fn has_tight_intervals(oracle: &impl IntervalOracle) -> bool {
    let n = oracle.universe_size();
    for w1 in 0..n as u32 {
        for w2 in 0..n as u32 {
            let Some(interval) = oracle.interval(WorldId(w1), WorldId(w2)) else {
                continue;
            };
            for w2p in &interval {
                if w2p == WorldId(w2) {
                    continue;
                }
                match oracle.interval(WorldId(w1), w2p) {
                    Some(sub) if sub.is_proper_subset(&interval) => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

impl SafetyMargin {
    /// Computes the margin of Corollary 4.14: `β(ω₁) = ⋃ Δ_K(Ā, ω₁)`.
    ///
    /// `exact` is set when the caller has verified tight intervals (or the
    /// family guarantees them structurally); with tight intervals the margin
    /// test is a complete characterization of `Safe_K(A, ·)`.
    pub fn compute(oracle: &impl IntervalOracle, a: &WorldSet, exact: bool) -> SafetyMargin {
        let margins = a
            .iter()
            .map(|w1| {
                let delta = delta_partition(oracle, a, w1);
                let mut beta = WorldSet::empty(a.universe_size());
                for class in &delta.classes {
                    beta.union_with(class);
                }
                beta
            })
            .collect();
        SafetyMargin {
            a: a.clone(),
            margins,
            exact,
        }
    }

    /// Computes the margin, deciding exactness by running the tight-interval
    /// test (quadratic in `|Ω|` interval queries).
    pub fn compute_checked(oracle: &impl IntervalOracle, a: &WorldSet) -> SafetyMargin {
        let exact = has_tight_intervals(oracle);
        Self::compute(oracle, a, exact)
    }

    /// The audit query this margin was computed for.
    pub fn audited(&self) -> &WorldSet {
        &self.a
    }

    /// Whether [`Self::screen`] is a complete characterization of safety.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// `β(ω)` for `ω ∈ A`.
    ///
    /// # Panics
    ///
    /// Panics if `ω ∉ A`.
    pub fn margin_of(&self, w: WorldId) -> &WorldSet {
        let idx = self
            .a
            .iter()
            .position(|x| x == w)
            .expect("margin_of: world not in audited set A");
        &self.margins[idx]
    }

    /// Screens a disclosure `B` with the margin condition of
    /// Proposition 4.1 / Corollary 4.14:
    /// `∀ ω ∈ A∩B: β(ω) ⊆ B`.
    ///
    /// When [`Self::is_exact`], the result equals `Safe_K(A, B)`; otherwise
    /// `true` still guarantees safety (the sound direction (12)).
    pub fn screen(&self, b: &WorldSet) -> bool {
        self.a
            .iter()
            .zip(&self.margins)
            .filter(|(w, _)| b.contains(*w))
            .all(|(_, beta)| beta.is_subset(b))
    }
}

/// Tight-interval structural check specialized to one source world; exposed
/// for families that prove tightness locally.
pub fn tight_from(oracle: &impl IntervalOracle, w1: WorldId) -> bool {
    let n = oracle.universe_size();
    for w2 in 0..n as u32 {
        let Some(interval) = oracle.interval(w1, WorldId(w2)) else {
            continue;
        };
        for w2p in &interval {
            if w2p == WorldId(w2) {
                continue;
            }
            match oracle.interval(w1, w2p) {
                Some(sub) if sub.is_proper_subset(&interval) => {}
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{safe_via_intervals, ExplicitOracle};
    use crate::knowledge::{KnowledgeWorld, PossKnowledge};
    use crate::world::all_nonempty_subsets;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    #[test]
    fn powerset_family_has_tight_intervals() {
        let k = PossKnowledge::unrestricted(4);
        let oracle = ExplicitOracle::new(&k);
        assert!(has_tight_intervals(&oracle));
    }

    #[test]
    fn remark_4_2_family_lacks_tight_intervals() {
        // K = Ω ⊗ {Ω}: I(ω₁, ω₂) = Ω for all pairs, so interior worlds do
        // not shrink the interval.
        let n = 3;
        let full = WorldSet::full(n);
        let pairs: Vec<_> = (0..n as u32)
            .map(|i| KnowledgeWorld::new(WorldId(i), full.clone()).unwrap())
            .collect();
        let k = PossKnowledge::from_pairs(pairs).unwrap();
        let oracle = ExplicitOracle::new(&k);
        assert!(!has_tight_intervals(&oracle));
    }

    #[test]
    fn corollary_4_14_margin_is_exact_with_tight_intervals() {
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let oracle = ExplicitOracle::new(&k);
        assert!(has_tight_intervals(&oracle));
        for a in all_nonempty_subsets(n) {
            let margin = SafetyMargin::compute(&oracle, &a, true);
            for b in all_nonempty_subsets(n) {
                assert_eq!(
                    margin.screen(&b),
                    safe_via_intervals(&oracle, &a, &b),
                    "Cor 4.14 failed at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn remark_4_2_margin_has_no_exact_beta() {
        // Ω = {0,1,2}, K = Ω ⊗ {Ω}, A = {2}: B₁ = {0,2} and B₂ = {1,2} are
        // safe but B₁∩B₂ = {2} is not, so no β can characterize safety —
        // the margin remains sound (direction (12)) but incomplete.
        let n = 3;
        let full = WorldSet::full(n);
        let pairs: Vec<_> = (0..n as u32)
            .map(|i| KnowledgeWorld::new(WorldId(i), full.clone()).unwrap())
            .collect();
        let k = PossKnowledge::from_pairs(pairs).unwrap();
        let oracle = ExplicitOracle::new(&k);
        let a = ws(n, &[2]);
        let margin = SafetyMargin::compute_checked(&oracle, &a);
        assert!(!margin.is_exact());
        // Soundness always holds:
        for b in all_nonempty_subsets(n) {
            if margin.screen(&b) {
                assert!(safe_via_intervals(&oracle, &a, &b));
            }
        }
        // Incompleteness is witnessed by B₁ = {0,2}: safe, yet the screen
        // (β(2) = Ā = {0,1} ⊆ B?) rejects it.
        let b1 = ws(n, &[0, 2]);
        assert!(safe_via_intervals(&oracle, &a, &b1));
        assert!(!margin.screen(&b1));
    }

    #[test]
    fn margin_of_accessor() {
        let k = PossKnowledge::unrestricted(3);
        let oracle = ExplicitOracle::new(&k);
        let a = ws(3, &[0, 1]);
        let margin = SafetyMargin::compute(&oracle, &a, true);
        // β(0) = Ā = {2} (powerset: every Ā world is its own class).
        assert_eq!(*margin.margin_of(WorldId(0)), ws(3, &[2]));
        assert_eq!(*margin.margin_of(WorldId(1)), ws(3, &[2]));
    }

    #[test]
    #[should_panic(expected = "not in audited set")]
    fn margin_of_outside_a_panics() {
        let k = PossKnowledge::unrestricted(3);
        let oracle = ExplicitOracle::new(&k);
        let a = ws(3, &[0]);
        let margin = SafetyMargin::compute(&oracle, &a, true);
        let _ = margin.margin_of(WorldId(2));
    }

    #[test]
    fn batch_screening_matches_individual_checks() {
        // The batch-audit usage: one margin, many disclosures.
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let oracle = ExplicitOracle::new(&k);
        let a = ws(n, &[1, 2]);
        let margin = SafetyMargin::compute(&oracle, &a, true);
        let disclosures: Vec<WorldSet> = all_nonempty_subsets(n).collect();
        let screened: Vec<bool> = disclosures.iter().map(|b| margin.screen(b)).collect();
        let direct: Vec<bool> = disclosures
            .iter()
            .map(|b| safe_via_intervals(&oracle, &a, b))
            .collect();
        assert_eq!(screened, direct);
    }
}
