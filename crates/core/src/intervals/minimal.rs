//! Minimal intervals (Definition 4.7, Proposition 4.8).
//!
//! Checking Proposition 4.5 touches every pair `(ω₁, ω₂) ∈ AB × Ā`;
//! Proposition 4.8 shows it is enough to check the intervals that are
//! *minimal* from `ω₁` to `Ā`: an interval `I_K(ω₁, ω₂)` with `ω₂ ∈ X` is a
//! minimal `K`-interval from `ω₁` to `X` iff
//!
//! ```text
//! ∀ ω₂′ ∈ X ∩ I_K(ω₁, ω₂):  I_K(ω₁, ω₂′) = I_K(ω₁, ω₂)
//! ```

use super::IntervalOracle;
use crate::world::{WorldId, WorldSet};

/// A minimal interval from a source world to a target set, with one
/// representative target world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimalInterval {
    /// A world `ω₂ ∈ X` realizing the interval.
    pub target: WorldId,
    /// The interval `I_K(ω₁, ω₂)` itself.
    pub interval: WorldSet,
}

/// Computes all minimal `K`-intervals from `w1` to the set `x`
/// (Definition 4.7), deduplicated (one entry per distinct interval).
pub fn minimal_intervals(
    oracle: &impl IntervalOracle,
    w1: WorldId,
    x: &WorldSet,
) -> Vec<MinimalInterval> {
    let mut out: Vec<MinimalInterval> = Vec::new();
    'outer: for w2 in x {
        let Some(interval) = oracle.interval(w1, w2) else {
            continue;
        };
        // Minimality: every target world inside the interval must induce the
        // same interval.
        for w2p in &interval.intersection(x) {
            match oracle.interval(w1, w2p) {
                Some(other) if other == interval => {}
                _ => continue 'outer,
            }
        }
        if !out.iter().any(|m| m.interval == interval) {
            out.push(MinimalInterval {
                target: w2,
                interval,
            });
        }
    }
    out
}

/// Tests `Safe_K(A, B)` via Proposition 4.8: the interval condition of
/// Proposition 4.5 restricted to intervals minimal from `ω₁ ∈ AB` to
/// `Ω − A`.
pub fn safe_via_minimal_intervals(
    oracle: &impl IntervalOracle,
    a: &WorldSet,
    b: &WorldSet,
) -> bool {
    let ab = a.intersection(b);
    let not_a = a.complement();
    let b_minus_a = b.difference(a);
    for w1 in &ab {
        for m in minimal_intervals(oracle, w1, &not_a) {
            if !m.interval.intersects(&b_minus_a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{safe_via_intervals, ExplicitOracle};
    use crate::knowledge::PossKnowledge;
    use crate::world::all_nonempty_subsets;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    #[test]
    fn powerset_minimal_intervals_are_pairs() {
        // In Ω ⊗ P(Ω) every interval {ω₁, ω₂} with ω₂ ∈ X is minimal
        // (it contains no other world of X unless ω₁ ∈ X).
        let k = PossKnowledge::unrestricted(4);
        let oracle = ExplicitOracle::new(&k);
        let x = ws(4, &[2, 3]);
        let ms = minimal_intervals(&oracle, WorldId(0), &x);
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m.interval.len(), 2);
            assert!(m.interval.contains(WorldId(0)));
            assert!(x.contains(m.target));
        }
    }

    #[test]
    fn non_minimal_interval_excluded() {
        // Family Σ = {{0,1}, {0,1,2}} closed under ∩ at world 0:
        // I(0,1) = {0,1} (minimal to X={1,2}? contains 1 only → check:
        // worlds of X in it: {1}; I(0,1)={0,1} equal → minimal).
        // I(0,2) = {0,1,2}: contains X-worlds {1,2}; I(0,1) = {0,1} ≠ it,
        // so I(0,2) is NOT minimal.
        let sigma = vec![ws(3, &[0, 1]), ws(3, &[0, 1, 2])];
        let k = PossKnowledge::product(&WorldSet::full(3), &sigma)
            .unwrap()
            .inter_closure();
        let oracle = ExplicitOracle::new(&k);
        let x = ws(3, &[1, 2]);
        let ms = minimal_intervals(&oracle, WorldId(0), &x);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].interval, ws(3, &[0, 1]));
    }

    #[test]
    fn proposition_4_8_exhaustive() {
        // Prop 4.8 ⟺ Prop 4.5 over every (A,B), for the unrestricted K and
        // for a structured family.
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let oracle = ExplicitOracle::new(&k);
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                assert_eq!(
                    safe_via_intervals(&oracle, &a, &b),
                    safe_via_minimal_intervals(&oracle, &a, &b),
                    "Prop 4.8 failed at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn proposition_4_8_on_random_closed_families() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let n = 5;
        for _ in 0..30 {
            let sigma: Vec<WorldSet> = (0..4)
                .map(|_| {
                    let mut s = WorldSet::from_predicate(n, |_| rng.gen::<bool>());
                    if s.is_empty() {
                        s.insert(WorldId(rng.gen_range(0..n as u32)));
                    }
                    s
                })
                .collect();
            let k = match PossKnowledge::product(&WorldSet::full(n), &sigma) {
                Ok(k) => k.inter_closure(),
                Err(_) => continue,
            };
            let oracle = ExplicitOracle::new(&k);
            for a in all_nonempty_subsets(n) {
                for b in all_nonempty_subsets(n) {
                    assert_eq!(
                        safe_via_intervals(&oracle, &a, &b),
                        safe_via_minimal_intervals(&oracle, &a, &b),
                        "Prop 4.8 failed on random family at A={a:?} B={b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn minimality_is_stable_under_representative_choice() {
        // Deduplication: all targets inside one minimal interval yield the
        // same interval, so the result has one entry per interval.
        let k = PossKnowledge::unrestricted(5);
        let oracle = ExplicitOracle::new(&k);
        let x = ws(5, &[1, 2, 3, 4]);
        let ms = minimal_intervals(&oracle, WorldId(0), &x);
        let mut seen = std::collections::HashSet::new();
        for m in &ms {
            assert!(
                seen.insert(format!("{:?}", m.interval)),
                "duplicate interval"
            );
        }
    }
}
