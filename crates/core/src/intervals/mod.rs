//! Interval machinery for intersection-closed knowledge (Section 4.1).
//!
//! When two or more possibilistic agents collude their knowledge sets
//! intersect, so an auditor accounting for collusion works with an
//! intersection-closed `K` (Definition 4.3). For such `K` the *interval*
//!
//! ```text
//! I_K(ω₁, ω₂)  =  ⋂ { S : (ω₁, S) ∈ K, ω₂ ∈ S }
//! ```
//!
//! (Definition 4.4) is the smallest knowledge set a user at world `ω₁` can
//! hold while still considering `ω₂` possible, and privacy testing reduces to
//! conditions on intervals alone (Proposition 4.5) — storing `|Ω|³` bits
//! instead of `|Ω|·2^|Ω|` (Remark 4.6).
//!
//! The sub-modules refine this further:
//!
//! * [`minimal`] — minimal intervals (Definition 4.7, Proposition 4.8);
//! * [`partition`] — the interval-induced partition `Δ_K(Ā, ω₁)`
//!   (Proposition 4.10, Corollary 4.12);
//! * [`margin`] — safety margins `β` (Proposition 4.1, Definition 4.13,
//!   Corollary 4.14).

pub mod margin;
pub mod minimal;
pub mod partition;

use crate::knowledge::PossKnowledge;
use crate::world::{WorldId, WorldSet};

/// An oracle answering interval queries for an intersection-closed
/// second-level knowledge set `K`.
///
/// Implementations must guarantee the `K` they describe is ∩-closed
/// (Definition 4.3); the generic algorithms in this module are only sound
/// under that assumption. Concrete families (integer rectangles, subcubes,
/// up-sets, …) implement this trait with closed-form interval computations;
/// [`ExplicitOracle`] derives intervals from an explicit pair list.
pub trait IntervalOracle {
    /// Size of the underlying universe `Ω`.
    fn universe_size(&self) -> usize;

    /// The interval `I_K(ω₁, ω₂)`, or `None` when it does not exist, i.e.
    /// when condition (14) fails: `ω₁ ∉ π₁(K)` or no `S` with
    /// `(ω₁, S) ∈ K` contains `ω₂`.
    fn interval(&self, w1: WorldId, w2: WorldId) -> Option<WorldSet>;

    /// Whether the pair `(ω, S)` belongs to `K`; used by cross-validation
    /// and by families whose membership test is cheaper than enumeration.
    fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool;
}

/// Interval oracle over an explicitly enumerated ∩-closed `K`.
pub struct ExplicitOracle<'a> {
    k: &'a PossKnowledge,
}

impl<'a> ExplicitOracle<'a> {
    /// Wraps an explicit `K`.
    ///
    /// # Panics
    ///
    /// Panics when `K` is not intersection-closed; close it first with
    /// [`PossKnowledge::inter_closure`].
    pub fn new(k: &'a PossKnowledge) -> ExplicitOracle<'a> {
        assert!(
            k.is_inter_closed(),
            "ExplicitOracle requires an intersection-closed K (Definition 4.3)"
        );
        ExplicitOracle { k }
    }

    /// The wrapped knowledge set.
    pub fn knowledge(&self) -> &PossKnowledge {
        self.k
    }
}

impl IntervalOracle for ExplicitOracle<'_> {
    fn universe_size(&self) -> usize {
        self.k.universe_size()
    }

    fn interval(&self, w1: WorldId, w2: WorldId) -> Option<WorldSet> {
        let mut acc: Option<WorldSet> = None;
        for pair in self.k.pairs() {
            if pair.world() == w1 && pair.set().contains(w2) {
                match &mut acc {
                    None => acc = Some(pair.set().clone()),
                    Some(cur) => cur.intersect_with(pair.set()),
                }
            }
        }
        // For an ∩-closed K the pointwise intersection of all qualifying
        // sets is itself a qualifying set, hence the smallest one.
        acc
    }

    fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool {
        self.k.contains_pair(world, set)
    }
}

/// Tests `Safe_K(A, B)` via Proposition 4.5:
///
/// ```text
/// ∀ I_K(ω₁, ω₂):  ω₁ ∈ AB ∧ ω₂ ∉ A  ⟹  I_K(ω₁,ω₂) ∩ (B − A) ≠ ∅
/// ```
///
/// Sound and complete for ∩-closed `K`. Complexity: one interval query per
/// `(ω₁, ω₂) ∈ AB × Ā`.
pub fn safe_via_intervals(oracle: &impl IntervalOracle, a: &WorldSet, b: &WorldSet) -> bool {
    let ab = a.intersection(b);
    let not_a = a.complement();
    let b_minus_a = b.difference(a);
    for w1 in &ab {
        for w2 in &not_a {
            if let Some(interval) = oracle.interval(w1, w2) {
                if !interval.intersects(&b_minus_a) {
                    return false;
                }
            }
        }
    }
    true
}

/// A violation of Proposition 4.5's condition: the offending interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalViolation {
    /// World `ω₁ ∈ A∩B`.
    pub w1: WorldId,
    /// World `ω₂ ∉ A` reachable from `ω₁`.
    pub w2: WorldId,
    /// The interval `I_K(ω₁, ω₂)` that misses `B − A`.
    pub interval: WorldSet,
}

/// Like [`safe_via_intervals`] but returns the violating interval, which the
/// auditor can surface as an explanation of the breach.
pub fn check_via_intervals(
    oracle: &impl IntervalOracle,
    a: &WorldSet,
    b: &WorldSet,
) -> Result<(), IntervalViolation> {
    let ab = a.intersection(b);
    let not_a = a.complement();
    let b_minus_a = b.difference(a);
    for w1 in &ab {
        for w2 in &not_a {
            if let Some(interval) = oracle.interval(w1, w2) {
                if !interval.intersects(&b_minus_a) {
                    return Err(IntervalViolation { w1, w2, interval });
                }
            }
        }
    }
    Ok(())
}

/// Materializes the full interval table `I_K : Ω × Ω → P(Ω) ∪ {⊥}`
/// (Remark 4.6: at most `|Ω|³` bits). Entry `[w1][w2]` is `None` when the
/// interval does not exist.
pub fn interval_table(oracle: &impl IntervalOracle) -> Vec<Vec<Option<WorldSet>>> {
    let n = oracle.universe_size();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| oracle.interval(WorldId(i as u32), WorldId(j as u32)))
                .collect()
        })
        .collect()
}

/// An oracle reading from a precomputed [`interval_table`]; used when the
/// same audit query `A` is tested against many disclosures `B₁ … B_N`
/// (the batch-auditing usage highlighted after Proposition 4.1).
pub struct TableOracle {
    table: Vec<Vec<Option<WorldSet>>>,
}

impl TableOracle {
    /// Precomputes all intervals of `oracle`.
    pub fn precompute(oracle: &impl IntervalOracle) -> TableOracle {
        TableOracle {
            table: interval_table(oracle),
        }
    }
}

impl IntervalOracle for TableOracle {
    fn universe_size(&self) -> usize {
        self.table.len()
    }

    fn interval(&self, w1: WorldId, w2: WorldId) -> Option<WorldSet> {
        self.table[w1.index()][w2.index()].clone()
    }

    fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool {
        // A pair (ω, S) belongs to an ∩-closed K iff S is a union-point of
        // intervals from ω; the table cannot decide membership exactly, so
        // we answer conservatively via the interval reconstruction: S must
        // contain I(ω, ω') for each ω' ∈ S and equal their union-closure.
        // Table oracles are only used for interval-based algorithms, which
        // never call this; keep a strict failure to avoid silent misuse.
        let _ = (world, set);
        unimplemented!("TableOracle cannot decide pair membership; use the source oracle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeWorld;
    use crate::possibilistic;
    use crate::world::all_nonempty_subsets;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    /// Builds the unrestricted K (which is ∩-closed) for small n.
    fn unrestricted(n: usize) -> PossKnowledge {
        PossKnowledge::unrestricted(n)
    }

    #[test]
    fn interval_in_powerset_family_is_pair() {
        // In K = Ω ⊗ P(Ω), the smallest S ∋ ω₁, ω₂ is {ω₁, ω₂}.
        let k = unrestricted(4);
        let oracle = ExplicitOracle::new(&k);
        let i = oracle.interval(WorldId(0), WorldId(2)).unwrap();
        assert_eq!(i, ws(4, &[0, 2]));
        let i = oracle.interval(WorldId(1), WorldId(1)).unwrap();
        assert_eq!(i, ws(4, &[1]));
    }

    #[test]
    fn interval_nonexistent_when_world_missing() {
        // K with a single pair (0, {0,1}): intervals from ω₂=2 don't exist.
        let k = PossKnowledge::from_pairs(vec![
            KnowledgeWorld::new(WorldId(0), ws(3, &[0, 1])).unwrap()
        ])
        .unwrap();
        let oracle = ExplicitOracle::new(&k);
        assert!(oracle.interval(WorldId(2), WorldId(0)).is_none());
        assert!(oracle.interval(WorldId(0), WorldId(2)).is_none());
        assert_eq!(
            oracle.interval(WorldId(0), WorldId(1)),
            Some(ws(3, &[0, 1]))
        );
    }

    #[test]
    #[should_panic(expected = "intersection-closed")]
    fn explicit_oracle_rejects_non_closed() {
        let k = PossKnowledge::from_pairs(vec![
            KnowledgeWorld::new(WorldId(0), ws(3, &[0, 1])).unwrap(),
            KnowledgeWorld::new(WorldId(0), ws(3, &[0, 2])).unwrap(),
        ])
        .unwrap();
        let _ = ExplicitOracle::new(&k);
    }

    #[test]
    fn proposition_4_5_exhaustive() {
        // Safe per Definition 3.1 ⟺ the interval condition, over every
        // (A, B) for the unrestricted ∩-closed K with |Ω| = 4.
        let k = unrestricted(4);
        let oracle = ExplicitOracle::new(&k);
        for a in all_nonempty_subsets(4) {
            for b in all_nonempty_subsets(4) {
                assert_eq!(
                    possibilistic::is_safe(&k, &a, &b),
                    safe_via_intervals(&oracle, &a, &b),
                    "Prop 4.5 failed at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn proposition_4_5_on_random_closed_families() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 5;
        for _ in 0..40 {
            // Random family of sets, closed under intersection, paired with
            // all of their members.
            let sigma: Vec<WorldSet> = (0..4)
                .map(|_| {
                    let mut s = WorldSet::from_predicate(n, |_| rng.gen::<bool>());
                    if s.is_empty() {
                        s.insert(WorldId(rng.gen_range(0..n as u32)));
                    }
                    s
                })
                .collect();
            let k = match PossKnowledge::product(&WorldSet::full(n), &sigma) {
                Ok(k) => k.inter_closure(),
                Err(_) => continue,
            };
            let oracle = ExplicitOracle::new(&k);
            for a in all_nonempty_subsets(n) {
                for b in all_nonempty_subsets(n) {
                    assert_eq!(
                        possibilistic::is_safe(&k, &a, &b),
                        safe_via_intervals(&oracle, &a, &b),
                        "Prop 4.5 failed on random family at A={a:?} B={b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn violation_witness_is_accurate() {
        let k = unrestricted(3);
        let oracle = ExplicitOracle::new(&k);
        let a = ws(3, &[1]);
        let b = ws(3, &[1, 2]);
        // Disclosing B lets a user with S = {0,1} ∩ B = {1} learn A? No:
        // S∩B={1}⊆A but wait S={0,1}: S∩B = {1} ⊆ A and S ⊄ A — breach.
        match check_via_intervals(&oracle, &a, &b) {
            Err(v) => {
                assert!(a.contains(v.w1) && b.contains(v.w1));
                assert!(!a.contains(v.w2));
                assert!(!v.interval.intersects(&b.difference(&a)));
            }
            Ok(()) => panic!("expected a violation"),
        }
    }

    #[test]
    fn table_oracle_matches_source() {
        let k = unrestricted(4);
        let oracle = ExplicitOracle::new(&k);
        let table = TableOracle::precompute(&oracle);
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(
                    oracle.interval(WorldId(i), WorldId(j)),
                    table.interval(WorldId(i), WorldId(j))
                );
            }
        }
        for a in all_nonempty_subsets(4) {
            for b in all_nonempty_subsets(4) {
                assert_eq!(
                    safe_via_intervals(&oracle, &a, &b),
                    safe_via_intervals(&table, &a, &b)
                );
            }
        }
    }
}
