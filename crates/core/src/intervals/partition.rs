//! Interval-induced partitions of `Ā` (Proposition 4.10, Definition 4.11,
//! Corollary 4.12).
//!
//! For an ∩-closed `K`, a set `A` and a world `ω₁ ∈ A`, the minimal
//! `K`-intervals from `ω₁` to `Ā = Ω − A` partition `Ā` into disjoint
//! equivalence classes
//!
//! ```text
//! Ā = D₁ ∪ D₂ ∪ … ∪ D_m ∪ D∞
//! ```
//!
//! where two worlds share a class `D_i` iff they lie in the same minimal
//! interval, and `D∞` collects the worlds of `Ā` in *no* minimal interval.
//! `Δ_K(Ā, ω₁) := {D₁, …, D_m}` (Definition 4.11), and `Safe_K(A,B)` holds
//! iff every `ω₁ ∈ AB` has `B ∩ D_i ≠ ∅` for each of its classes
//! (Corollary 4.12).

use super::minimal::minimal_intervals;
use super::IntervalOracle;
use crate::world::{WorldId, WorldSet};

/// The partition of `Ā` induced by the minimal intervals from one world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaPartition {
    /// The source world `ω₁ ∈ A`.
    pub source: WorldId,
    /// The classes `Δ_K(Ā, ω₁) = {D₁, …, D_m}` — intersections of `Ā` with
    /// the minimal intervals; pairwise disjoint by Proposition 4.10.
    pub classes: Vec<WorldSet>,
    /// The residual class `D∞`: worlds of `Ā` in no minimal interval.
    pub residual: WorldSet,
}

/// Computes `Δ_K(Ā, ω₁)` together with the residual class
/// (Proposition 4.10 / Definition 4.11).
pub fn delta_partition(
    oracle: &impl IntervalOracle,
    a: &WorldSet,
    source: WorldId,
) -> DeltaPartition {
    let not_a = a.complement();
    let minimal = minimal_intervals(oracle, source, &not_a);
    let mut classes: Vec<WorldSet> = Vec::with_capacity(minimal.len());
    let mut covered = WorldSet::empty(a.universe_size());
    for m in &minimal {
        let class = m.interval.intersection(&not_a);
        covered.union_with(&class);
        classes.push(class);
    }
    DeltaPartition {
        source,
        classes,
        residual: not_a.difference(&covered),
    }
}

impl DeltaPartition {
    /// Verifies the disjointness guaranteed by Proposition 4.10; used by
    /// tests and by debug assertions in callers.
    pub fn is_disjoint(&self) -> bool {
        for (i, c1) in self.classes.iter().enumerate() {
            for c2 in &self.classes[i + 1..] {
                if c1.intersects(c2) {
                    return false;
                }
            }
            if c1.intersects(&self.residual) {
                return false;
            }
        }
        true
    }

    /// The union of the classes and the residual (must equal `Ā`).
    pub fn union_all(&self) -> WorldSet {
        let mut out = self.residual.clone();
        for c in &self.classes {
            out.union_with(c);
        }
        out
    }
}

/// Tests `Safe_K(A, B)` via Corollary 4.12:
///
/// ```text
/// ∀ ω₁ ∈ AB, ∀ D_i ∈ Δ_K(Ā, ω₁):  B ∩ D_i ≠ ∅
/// ```
pub fn safe_via_delta(oracle: &impl IntervalOracle, a: &WorldSet, b: &WorldSet) -> bool {
    let ab = a.intersection(b);
    for w1 in &ab {
        let delta = delta_partition(oracle, a, w1);
        debug_assert!(delta.is_disjoint(), "Proposition 4.10 violated");
        if delta.classes.iter().any(|d| !b.intersects(d)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{safe_via_intervals, ExplicitOracle};
    use crate::knowledge::PossKnowledge;
    use crate::world::all_nonempty_subsets;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    #[test]
    fn partition_covers_complement_disjointly() {
        let k = PossKnowledge::unrestricted(5);
        let oracle = ExplicitOracle::new(&k);
        let a = ws(5, &[0, 1]);
        for w1 in &a {
            let delta = delta_partition(&oracle, &a, w1);
            assert!(delta.is_disjoint(), "Prop 4.10: classes must be disjoint");
            assert_eq!(delta.union_all(), a.complement());
        }
    }

    #[test]
    fn powerset_classes_are_singletons() {
        // In Ω ⊗ P(Ω) the minimal intervals are pairs, so each class is a
        // singleton and the residual is empty.
        let k = PossKnowledge::unrestricted(4);
        let oracle = ExplicitOracle::new(&k);
        let a = ws(4, &[0]);
        let delta = delta_partition(&oracle, &a, WorldId(0));
        assert_eq!(delta.classes.len(), 3);
        assert!(delta.classes.iter().all(|c| c.len() == 1));
        assert!(delta.residual.is_empty());
    }

    #[test]
    fn residual_class_appears_when_worlds_unreachable() {
        // K with knowledge sets only {0,1} and its subsets at world 0:
        // world 2 is unreachable from 0, landing in the residual.
        let sigma = vec![ws(3, &[0, 1]), ws(3, &[0]), ws(3, &[1])];
        let k = PossKnowledge::product(&WorldSet::full(3), &sigma)
            .unwrap()
            .inter_closure();
        let oracle = ExplicitOracle::new(&k);
        let a = ws(3, &[0]);
        let delta = delta_partition(&oracle, &a, WorldId(0));
        assert!(delta.residual.contains(WorldId(2)));
        assert_eq!(delta.classes, vec![ws(3, &[1])]);
    }

    #[test]
    fn corollary_4_12_exhaustive() {
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let oracle = ExplicitOracle::new(&k);
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                assert_eq!(
                    safe_via_intervals(&oracle, &a, &b),
                    safe_via_delta(&oracle, &a, &b),
                    "Cor 4.12 failed at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn corollary_4_12_on_random_closed_families() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let n = 5;
        for _ in 0..30 {
            let sigma: Vec<WorldSet> = (0..4)
                .map(|_| {
                    let mut s = WorldSet::from_predicate(n, |_| rng.gen::<bool>());
                    if s.is_empty() {
                        s.insert(WorldId(rng.gen_range(0..n as u32)));
                    }
                    s
                })
                .collect();
            let k = match PossKnowledge::product(&WorldSet::full(n), &sigma) {
                Ok(k) => k.inter_closure(),
                Err(_) => continue,
            };
            let oracle = ExplicitOracle::new(&k);
            for a in all_nonempty_subsets(n) {
                for b in all_nonempty_subsets(n) {
                    assert_eq!(
                        safe_via_intervals(&oracle, &a, &b),
                        safe_via_delta(&oracle, &a, &b),
                        "Cor 4.12 failed on random family at A={a:?} B={b:?}"
                    );
                }
            }
        }
    }
}
