//! Knowledge worlds and second-level knowledge sets (Section 2 of the paper).
//!
//! A *possibilistic knowledge world* is a pair `(ω, S)` with `ω ∈ S ⊆ Ω`
//! (Definition 2.1): `ω` is the actual database and `S` the set of worlds the
//! user considers possible. The auditor's information about the user is a
//! *second-level knowledge set* `K ⊆ Ω_poss`, a set of such pairs that must
//! contain the actual pair `(ω*, S*)`.
//!
//! The common special case where the auditor separates her knowledge of the
//! database (`C ⊆ Ω`) from her assumptions about the user (a family
//! `Σ ⊆ P(Ω)`) is the product `C ⊗ Σ` of Definition 2.5, which drops the
//! inconsistent pairs (those with `ω ∉ S`).

use crate::world::{WorldId, WorldSet};
use crate::CoreError;

/// A consistent possibilistic knowledge world `(ω, S)` with `ω ∈ S`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct KnowledgeWorld {
    world: WorldId,
    set: WorldSet,
}

impl KnowledgeWorld {
    /// Creates `(ω, S)`, enforcing the consistency requirement `ω ∈ S` of
    /// Remark 2.3.
    pub fn new(world: WorldId, set: WorldSet) -> Result<KnowledgeWorld, CoreError> {
        if !set.contains(world) {
            return Err(CoreError::InconsistentKnowledgeWorld { world: world.0 });
        }
        Ok(KnowledgeWorld { world, set })
    }

    /// The actual world `ω` of this pair.
    pub fn world(&self) -> WorldId {
        self.world
    }

    /// The user's knowledge set `S`.
    pub fn set(&self) -> &WorldSet {
        &self.set
    }

    /// The user's posterior pair after acquiring a disclosure `B`
    /// (Section 3.3): `(ω, S ∩ B)`.
    ///
    /// Returns `None` when `ω ∉ B`, i.e. when the pair is inconsistent with
    /// the disclosure ever having happened.
    pub fn acquire(&self, b: &WorldSet) -> Option<KnowledgeWorld> {
        if !b.contains(self.world) {
            return None;
        }
        Some(KnowledgeWorld {
            world: self.world,
            set: self.set.intersection(b),
        })
    }

    /// `true` iff the agent *knows* property `A`, i.e. `S ⊆ A`.
    pub fn knows(&self, a: &WorldSet) -> bool {
        self.set.is_subset(a)
    }

    /// `true` iff the agent considers property `A` *possible*, i.e.
    /// `S ∩ A ≠ ∅`.
    pub fn considers_possible(&self, a: &WorldSet) -> bool {
        self.set.intersects(a)
    }
}

/// An explicit second-level knowledge set `K ⊆ Ω_poss` — the auditor's
/// (assumed) knowledge about the user, as a finite list of consistent pairs.
///
/// # Examples
///
/// ```
/// use epi_core::{PossKnowledge, WorldId, WorldSet};
/// // Auditor knows the database is ω₀ but nothing about the user:
/// // K = {ω₀} ⊗ P(Ω).
/// let c = WorldSet::singleton(3, WorldId(0));
/// let k = PossKnowledge::product_with_powerset(&c);
/// assert_eq!(k.len(), 4); // the four subsets of Ω containing ω₀
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PossKnowledge {
    universe: usize,
    pairs: Vec<KnowledgeWorld>,
}

impl PossKnowledge {
    /// Builds `K` from explicit pairs.
    ///
    /// Fails when the list is empty (∅ is not a valid second-level knowledge
    /// set) or when the pairs disagree about the universe size.
    pub fn from_pairs(pairs: Vec<KnowledgeWorld>) -> Result<PossKnowledge, CoreError> {
        let universe = pairs
            .first()
            .ok_or(CoreError::EmptyKnowledge)?
            .set()
            .universe_size();
        if let Some(bad) = pairs.iter().find(|p| p.set().universe_size() != universe) {
            return Err(CoreError::UniverseMismatch {
                expected: universe,
                found: bad.set().universe_size(),
            });
        }
        Ok(PossKnowledge { universe, pairs })
    }

    /// The product `C ⊗ Σ` of Definition 2.5: all pairs `(ω, S)` with
    /// `ω ∈ C`, `S ∈ Σ` and `ω ∈ S`.
    ///
    /// Fails when the product is empty (the pair `(C, Σ)` is inconsistent).
    pub fn product(c: &WorldSet, sigma: &[WorldSet]) -> Result<PossKnowledge, CoreError> {
        let universe = c.universe_size();
        let mut pairs = Vec::new();
        for s in sigma {
            if s.universe_size() != universe {
                return Err(CoreError::UniverseMismatch {
                    expected: universe,
                    found: s.universe_size(),
                });
            }
            for w in &c.intersection(s) {
                pairs.push(KnowledgeWorld {
                    world: w,
                    set: s.clone(),
                });
            }
        }
        if pairs.is_empty() {
            return Err(CoreError::EmptyKnowledge);
        }
        Ok(PossKnowledge { universe, pairs })
    }

    /// The product `C ⊗ P(Ω)`: the auditor knows `C` about the database and
    /// assumes nothing about the user. Exponential in `|Ω|`; guarded to small
    /// universes.
    pub fn product_with_powerset(c: &WorldSet) -> PossKnowledge {
        let universe = c.universe_size();
        assert!(
            universe <= 16,
            "product_with_powerset enumerates 2^|Ω| sets; universe too large"
        );
        let sigma: Vec<WorldSet> = crate::world::all_nonempty_subsets(universe).collect();
        Self::product(c, &sigma).expect("C ⊗ P(Ω) is consistent for non-empty C")
    }

    /// The fully unrestricted `K = Ω_poss = Ω ⊗ P(Ω)`.
    pub fn unrestricted(universe: usize) -> PossKnowledge {
        Self::product_with_powerset(&WorldSet::full(universe))
    }

    /// Number of pairs in `K`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` iff `K` has no pairs (never constructible via the public API).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Universe size shared by all pairs.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// The pairs of `K`.
    pub fn pairs(&self) -> &[KnowledgeWorld] {
        &self.pairs
    }

    /// `true` iff `(ω, S) ∈ K`.
    pub fn contains_pair(&self, world: WorldId, set: &WorldSet) -> bool {
        self.pairs
            .iter()
            .any(|p| p.world() == world && p.set() == set)
    }

    /// The projection `π₁(K)`: all worlds appearing as first components.
    pub fn worlds(&self) -> WorldSet {
        let mut out = WorldSet::empty(self.universe);
        for p in &self.pairs {
            out.insert(p.world());
        }
        out
    }

    /// The projection `π₂(K)`: the distinct knowledge sets appearing as
    /// second components.
    pub fn knowledge_sets(&self) -> Vec<WorldSet> {
        let mut out: Vec<WorldSet> = Vec::new();
        for p in &self.pairs {
            if !out.contains(p.set()) {
                out.push(p.set().clone());
            }
        }
        out
    }

    /// `true` iff `K` is intersection-closed (Definition 4.3): whenever
    /// `(ω, S₁) ∈ K` and `(ω, S₂) ∈ K`, also `(ω, S₁ ∩ S₂) ∈ K`.
    pub fn is_inter_closed(&self) -> bool {
        for (i, p1) in self.pairs.iter().enumerate() {
            for p2 in &self.pairs[i + 1..] {
                if p1.world() != p2.world() {
                    continue;
                }
                let inter = p1.set().intersection(p2.set());
                if inter != *p1.set()
                    && inter != *p2.set()
                    && !self.contains_pair(p1.world(), &inter)
                {
                    return false;
                }
            }
        }
        true
    }

    /// The smallest intersection-closed superset of `K` (closes the pairs at
    /// each world under `∩`; collusion closure per Section 4.1).
    pub fn inter_closure(&self) -> PossKnowledge {
        let mut pairs = self.pairs.clone();
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot_len = pairs.len();
            for i in 0..snapshot_len {
                for j in (i + 1)..snapshot_len {
                    if pairs[i].world() != pairs[j].world() {
                        continue;
                    }
                    let inter = pairs[i].set().intersection(pairs[j].set());
                    let w = pairs[i].world();
                    if !pairs.iter().any(|p| p.world() == w && *p.set() == inter) {
                        pairs.push(KnowledgeWorld {
                            world: w,
                            set: inter,
                        });
                        changed = true;
                    }
                }
            }
        }
        PossKnowledge {
            universe: self.universe,
            pairs,
        }
    }

    /// Restricts `K` to the pairs consistent with a disclosure `B`
    /// (the auditor "discards from `K` all pairs `(ω, S)` such that `ω ∉ B`",
    /// Section 3.1), without updating the knowledge sets.
    pub fn restrict_to(&self, b: &WorldSet) -> Vec<&KnowledgeWorld> {
        self.pairs
            .iter()
            .filter(|p| b.contains(p.world()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    #[test]
    fn knowledge_world_requires_consistency() {
        let s = ws(4, &[1, 2]);
        assert!(KnowledgeWorld::new(WorldId(1), s.clone()).is_ok());
        assert!(matches!(
            KnowledgeWorld::new(WorldId(0), s),
            Err(CoreError::InconsistentKnowledgeWorld { world: 0 })
        ));
    }

    #[test]
    fn acquisition_updates_knowledge() {
        let kw = KnowledgeWorld::new(WorldId(1), ws(4, &[0, 1, 2])).unwrap();
        let b = ws(4, &[1, 2, 3]);
        let post = kw.acquire(&b).unwrap();
        assert_eq!(*post.set(), ws(4, &[1, 2]));
        assert_eq!(post.world(), WorldId(1));
        // ω ∉ B ⇒ inconsistent with the disclosure.
        let b2 = ws(4, &[0, 2]);
        assert!(kw.acquire(&b2).is_none());
    }

    #[test]
    fn knows_and_possible() {
        let kw = KnowledgeWorld::new(WorldId(1), ws(4, &[1, 2])).unwrap();
        assert!(kw.knows(&ws(4, &[0, 1, 2])));
        assert!(!kw.knows(&ws(4, &[1, 3])));
        assert!(kw.considers_possible(&ws(4, &[2, 3])));
        assert!(!kw.considers_possible(&ws(4, &[0, 3])));
    }

    #[test]
    fn product_drops_inconsistent_pairs() {
        let c = ws(3, &[0, 1]);
        let sigma = vec![ws(3, &[0, 2]), ws(3, &[1]), ws(3, &[2])];
        let k = PossKnowledge::product(&c, &sigma).unwrap();
        // (0, {0,2}), (1, {1}) — pairs with ω ∉ S or ω ∉ C are dropped.
        assert_eq!(k.len(), 2);
        assert!(k.contains_pair(WorldId(0), &ws(3, &[0, 2])));
        assert!(k.contains_pair(WorldId(1), &ws(3, &[1])));
        assert!(!k.contains_pair(WorldId(2), &ws(3, &[2])));
    }

    #[test]
    fn product_empty_is_error() {
        let c = ws(3, &[0]);
        let sigma = vec![ws(3, &[1, 2])];
        assert!(matches!(
            PossKnowledge::product(&c, &sigma),
            Err(CoreError::EmptyKnowledge)
        ));
    }

    #[test]
    fn powerset_product_counts() {
        // For |Ω| = 3 and C = {ω₀}: subsets containing ω₀ are 2² = 4.
        let k = PossKnowledge::product_with_powerset(&WorldSet::singleton(3, WorldId(0)));
        assert_eq!(k.len(), 4);
        // Unrestricted: Σ_{ω} 2^{n−1} = n·2^{n−1} = 12 pairs for n = 3.
        let k = PossKnowledge::unrestricted(3);
        assert_eq!(k.len(), 12);
    }

    #[test]
    fn projections() {
        let c = ws(3, &[0, 1]);
        let sigma = vec![ws(3, &[0, 1]), ws(3, &[1, 2])];
        let k = PossKnowledge::product(&c, &sigma).unwrap();
        assert_eq!(k.worlds(), ws(3, &[0, 1]));
        let sets = k.knowledge_sets();
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn inter_closure_adds_missing_intersections() {
        // Two sets at the same world whose intersection is absent.
        let pairs = vec![
            KnowledgeWorld::new(WorldId(0), ws(3, &[0, 1])).unwrap(),
            KnowledgeWorld::new(WorldId(0), ws(3, &[0, 2])).unwrap(),
        ];
        let k = PossKnowledge::from_pairs(pairs).unwrap();
        assert!(!k.is_inter_closed());
        let closed = k.inter_closure();
        assert!(closed.is_inter_closed());
        assert!(closed.contains_pair(WorldId(0), &ws(3, &[0])));
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn closure_of_closed_is_identity() {
        let k = PossKnowledge::unrestricted(3);
        assert!(k.is_inter_closed());
        assert_eq!(k.inter_closure().len(), k.len());
    }

    #[test]
    fn restrict_to_discards_inconsistent() {
        let k = PossKnowledge::unrestricted(3);
        let b = ws(3, &[1]);
        let restricted = k.restrict_to(&b);
        assert!(restricted.iter().all(|p| p.world() == WorldId(1)));
        assert_eq!(restricted.len(), 4);
    }

    #[test]
    fn from_pairs_rejects_empty_and_mismatched() {
        assert!(matches!(
            PossKnowledge::from_pairs(vec![]),
            Err(CoreError::EmptyKnowledge)
        ));
        let pairs = vec![
            KnowledgeWorld::new(WorldId(0), ws(3, &[0])).unwrap(),
            KnowledgeWorld::new(WorldId(0), ws(4, &[0])).unwrap(),
        ];
        assert!(matches!(
            PossKnowledge::from_pairs(pairs),
            Err(CoreError::UniverseMismatch { .. })
        ));
    }
}
