//! # epi-core
//!
//! Core framework of the *Epistemic Privacy* reproduction (Evfimievski,
//! Fagin, Woodruff — PODS 2008).
//!
//! The paper defines privacy of a sensitive property `A ⊆ Ω` given the
//! disclosure of a property `B ⊆ Ω` as the impossibility of any admissible
//! user *gaining confidence* in `A` by learning `B`; losing confidence is
//! explicitly allowed. This crate implements the paper's Sections 2–4:
//!
//! * [`world`] — finite universes of possible worlds (databases) and dense
//!   sets of worlds;
//! * [`knowledge`] — possibilistic knowledge worlds `(ω, S)` and the
//!   auditor's second-level knowledge sets `K`, including the products
//!   `C ⊗ Σ` of Definition 2.5;
//! * [`possibilistic`] — the privacy predicate `Safe_K(A,B)` of
//!   Definition 3.1 and its family form (Proposition 3.3);
//! * [`probabilistic`] — distributions over worlds, probabilistic knowledge
//!   worlds, `Safe_K(A,B)` of Definition 3.4, the family forms of
//!   Propositions 3.6/3.8, and liftability (Definition 3.7);
//! * [`preserving`] — `K`-preserving disclosures and the composition rules
//!   of Proposition 3.10;
//! * [`unrestricted`] — the closed-form characterization of privacy under
//!   unrestricted priors (Theorem 3.11);
//! * [`intervals`] — the interval machinery for intersection-closed `K`
//!   (Definitions 4.3–4.13, Propositions 4.1–4.10, Corollaries 4.12/4.14);
//! * [`risk`] — the exact uniform-prior safety margin and the normalized
//!   per-disclosure risk score derived from it;
//! * [`families`] — concrete intersection-closed knowledge families,
//!   including the integer-rectangle family of Example 4.9 / Figure 1.
//!
//! # Quick start
//!
//! ```
//! use epi_core::{possibilistic, unrestricted, PossKnowledge, WorldSet};
//!
//! // Ω = {0,1}²: world index = 2·[Bob is HIV+] + [Bob had transfusions].
//! let a = WorldSet::from_indices(4, [2, 3]);     // "Bob is HIV-positive"
//! let b = WorldSet::from_indices(4, [0, 1, 3]);  // "HIV+ ⟹ transfusions"
//!
//! // Safe even with NO assumptions on the user's prior knowledge:
//! assert!(unrestricted::safe_unrestricted(&a, &b));
//! let k = PossKnowledge::unrestricted(4);
//! assert!(possibilistic::is_safe(&k, &a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
mod error;
pub mod families;
pub mod intervals;
pub mod knowledge;
pub mod possibilistic;
pub mod preserving;
pub mod probabilistic;
pub mod risk;
pub mod unrestricted;
pub mod wire;
pub mod world;

pub use deadline::{CancelToken, Deadline, StopReason};
pub use error::CoreError;
pub use knowledge::{KnowledgeWorld, PossKnowledge};
pub use probabilistic::{Distribution, ProbKnowledge, ProbKnowledgeWorld};
pub use risk::{UniformMargin, RISK_SCALE};
pub use world::{WorldId, WorldSet};
