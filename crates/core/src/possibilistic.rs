//! Possibilistic privacy: Definition 3.1, Proposition 3.3 and the
//! grade-of-confidence semantics of Section 3.1.
//!
//! In the possibilistic model a user has only two grades of confidence in a
//! property `A`: he either *knows* it (`S ⊆ A`) or he does not. The user
//! gains confidence through a disclosure `B` exactly when he did not know `A`
//! before (`S ⊄ A`) and knows it after (`S ∩ B ⊆ A`). Privacy of `A` given
//! `B` therefore requires, for every pair the auditor considers possible and
//! consistent with the disclosure:
//!
//! ```text
//! ∀ (ω, S) ∈ K:  ω ∈ B  ∧  S ∩ B ⊆ A   ⟹   S ⊆ A        (Definition 3.1)
//! ```

use crate::knowledge::{KnowledgeWorld, PossKnowledge};
use crate::world::WorldSet;

/// Evidence that a disclosure breaches privacy: the knowledge world that
/// gains confidence in `A` upon learning `B`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PossBreach {
    /// The pair `(ω, S)` that witnesses the breach.
    pub witness: KnowledgeWorld,
}

/// Tests `Safe_K(A, B)` per Definition 3.1 for an explicit second-level
/// knowledge set `K`.
///
/// Returns `Ok(())` when `A` is `K`-private given the disclosure of `B`, and
/// `Err(breach)` carrying a witnessing pair otherwise.
///
/// # Examples
///
/// The Alice/Bob example of Section 1.1 with `Ω = {0,1}²` encoded as
/// `ω = 2·[r₁∈ω] + [r₂∈ω]`: `A` = "Bob is HIV-positive" = `{2, 3}`, and
/// `B` = "`r₁ ∈ ω ⟹ r₂ ∈ ω`" = `{0, 1, 3}`. `A` is private given `B` even
/// under a fully unrestricted prior:
///
/// ```
/// use epi_core::{possibilistic, PossKnowledge, WorldSet};
/// let k = PossKnowledge::unrestricted(4);
/// let a = WorldSet::from_indices(4, [2, 3]);
/// let b = WorldSet::from_indices(4, [0, 1, 3]);
/// assert!(possibilistic::safe(&k, &a, &b).is_ok());
/// ```
pub fn safe(k: &PossKnowledge, a: &WorldSet, b: &WorldSet) -> Result<(), PossBreach> {
    for pair in k.pairs() {
        if !b.contains(pair.world()) {
            continue; // inconsistent with the disclosure of B
        }
        let posterior_knows_a = pair.set().intersection(b).is_subset(a);
        let prior_knows_a = pair.set().is_subset(a);
        if posterior_knows_a && !prior_knows_a {
            return Err(PossBreach {
                witness: pair.clone(),
            });
        }
    }
    Ok(())
}

/// Boolean convenience wrapper around [`safe`].
pub fn is_safe(k: &PossKnowledge, a: &WorldSet, b: &WorldSet) -> bool {
    safe(k, a, b).is_ok()
}

/// Tests `Safe_{C,Σ}(A, B)` via the equivalent formulation of
/// Proposition 3.3, without materializing the product `C ⊗ Σ`:
///
/// ```text
/// ∀ S ∈ Σ:  S∩B∩C ≠ ∅  ∧  S∩B ⊆ A   ⟹   S ⊆ A
/// ```
///
/// This form is what a production auditor evaluates when her database
/// knowledge `C` and her user-model `Σ` are kept separate; it touches each
/// `S ∈ Σ` once instead of once per `(ω, S)` pair.
pub fn safe_family(c: &WorldSet, sigma: &[WorldSet], a: &WorldSet, b: &WorldSet) -> bool {
    sigma.iter().all(|s| {
        let sb = s.intersection(b);
        // SBC = ∅  ∨  SB ⊄ A  ∨  S ⊆ A
        !sb.intersects(c) || !sb.is_subset(a) || s.is_subset(a)
    })
}

/// The two-grade confidence of a possibilistic agent in `A`: `true` iff the
/// agent knows `A`.
pub fn confidence(s: &WorldSet, a: &WorldSet) -> bool {
    s.is_subset(a)
}

/// Whether an agent with prior knowledge `S` *gains confidence* in `A` upon
/// learning `B` (the quantity Definition 3.1 forbids).
pub fn gains_confidence(s: &WorldSet, a: &WorldSet, b: &WorldSet) -> bool {
    !confidence(s, a) && confidence(&s.intersection(b), a)
}

/// Whether an agent with prior knowledge `S` *loses confidence* in `A` upon
/// learning `B`. In the possibilistic model knowledge can never be lost
/// (posterior `S∩B ⊆ S`), so this is always `false`; it exists to make the
/// gain/loss asymmetry of the paper executable and testable.
pub fn loses_confidence(s: &WorldSet, a: &WorldSet, b: &WorldSet) -> bool {
    confidence(s, a) && !confidence(&s.intersection(b), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeWorld;
    use crate::world::{all_nonempty_subsets, WorldId};
    use proptest::prelude::*;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    /// Section 1.1 example: r₁ = "Bob is HIV-positive", r₂ = "Bob had blood
    /// transfusions"; world index = 2·[r₁] + [r₂].
    #[test]
    fn hiv_example_is_safe_unrestricted() {
        let k = PossKnowledge::unrestricted(4);
        let a = ws(4, &[2, 3]); // r₁ ∈ ω
        let b = ws(4, &[0, 1, 3]); // r₁ ∈ ω ⟹ r₂ ∈ ω (rules out ω = 2)
        assert!(safe(&k, &a, &b).is_ok());
    }

    #[test]
    fn direct_disclosure_is_unsafe() {
        let k = PossKnowledge::unrestricted(4);
        let a = ws(4, &[2, 3]);
        // Disclosing A itself breaches privacy of A.
        let breach = safe(&k, &a, &a).unwrap_err();
        assert!(b_contains_world(&a, &breach));
        // Witness must not have known A a priori but know it a posteriori.
        assert!(!breach.witness.set().is_subset(&a));
        assert!(breach.witness.set().intersection(&a).is_subset(&a));
    }

    fn b_contains_world(b: &WorldSet, breach: &PossBreach) -> bool {
        b.contains(breach.witness.world())
    }

    #[test]
    fn proposition_3_3_agrees_with_definition_3_1() {
        // Exhaustive over a small universe: for every C, every Σ drawn from a
        // pool, and every (A, B), the product-based and family-based
        // evaluations agree.
        let n = 4;
        let sigma: Vec<WorldSet> = all_nonempty_subsets(n).collect();
        let c = ws(n, &[0, 2]);
        let k = PossKnowledge::product(&c, &sigma).unwrap();
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                assert_eq!(
                    is_safe(&k, &a, &b),
                    safe_family(&c, &sigma, &a, &b),
                    "disagreement at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_k() {
        // Remark 3.2: Safe_K(A,B) and K' ⊆ K imply Safe_K'(A,B).
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let a = ws(n, &[2, 3]);
        let b = ws(n, &[0, 1, 3]);
        assert!(is_safe(&k, &a, &b));
        // Any sub-knowledge-set keeps safety.
        let sub = PossKnowledge::from_pairs(k.pairs().iter().take(5).cloned().collect()).unwrap();
        assert!(is_safe(&sub, &a, &b));
    }

    #[test]
    fn gain_loss_asymmetry() {
        let s = ws(4, &[0, 2]);
        let a = ws(4, &[2, 3]);
        let b = ws(4, &[2]);
        // learning B = {2} makes S∩B = {2} ⊆ A: gain.
        assert!(gains_confidence(&s, &a, &b));
        // knowledge can never be lost possibilistically.
        for s in all_nonempty_subsets(4) {
            for a in all_nonempty_subsets(4) {
                for b in all_nonempty_subsets(4) {
                    if s.intersects(&b) {
                        assert!(!loses_confidence(&s, &a, &b));
                    }
                }
            }
        }
    }

    #[test]
    fn breach_witness_is_genuine() {
        let n = 3;
        let k = PossKnowledge::unrestricted(n);
        let a = ws(n, &[1]);
        let b = ws(n, &[1, 2]);
        match safe(&k, &a, &b) {
            Err(breach) => {
                let s = breach.witness.set();
                assert!(gains_confidence(s, &a, &b));
                assert!(b.contains(breach.witness.world()));
            }
            Ok(()) => panic!("expected a breach: B narrows {{0,1,2}} → {{1}} ⊆ A"),
        }
    }

    #[test]
    fn full_knowledge_user_never_gains() {
        // A user who already knows the exact world cannot gain confidence.
        let n = 4;
        for w in 0..n as u32 {
            let pair = KnowledgeWorld::new(WorldId(w), WorldSet::singleton(n, WorldId(w))).unwrap();
            let k = PossKnowledge::from_pairs(vec![pair]).unwrap();
            for a in all_nonempty_subsets(n) {
                for b in all_nonempty_subsets(n) {
                    assert!(is_safe(&k, &a, &b));
                }
            }
        }
    }

    proptest! {
        /// Safety is antitone in K: removing pairs preserves safety
        /// (Remark 3.2), checked on random subsets of the unrestricted K.
        #[test]
        fn prop_safe_antitone_in_k(
            a_bits in 1u8..15, b_bits in 1u8..15, keep in proptest::collection::vec(any::<bool>(), 32)
        ) {
            let n = 4;
            let k = PossKnowledge::unrestricted(n);
            let a = WorldSet::from_predicate(n, |w| a_bits >> w.0 & 1 == 1);
            let b = WorldSet::from_predicate(n, |w| b_bits >> w.0 & 1 == 1);
            if is_safe(&k, &a, &b) {
                let pairs: Vec<_> = k
                    .pairs()
                    .iter()
                    .zip(keep.iter().cycle())
                    .filter(|(_, &keep)| keep)
                    .map(|(p, _)| p.clone())
                    .collect();
                if let Ok(sub) = PossKnowledge::from_pairs(pairs) {
                    prop_assert!(is_safe(&sub, &a, &b));
                }
            }
        }

        /// B ⊇ A-complement-union trick: disclosing a tautology (B = Ω) is
        /// always safe.
        #[test]
        fn prop_tautology_always_safe(a_bits in 1u8..15) {
            let n = 4;
            let k = PossKnowledge::unrestricted(n);
            let a = WorldSet::from_predicate(n, |w| a_bits >> w.0 & 1 == 1);
            prop_assert!(is_safe(&k, &a, &WorldSet::full(n)));
        }
    }
}
