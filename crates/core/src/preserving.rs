//! Knowledge acquisition and `K`-preserving disclosures (Section 3.3,
//! Definition 3.9, Proposition 3.10).
//!
//! When the auditor's second-level knowledge set `K` encodes an *assumption*
//! about users rather than exact knowledge, she may require that the
//! assumption stays valid after each disclosure. A set `B` is *`K`-preserving*
//! when for every `(ω, S) ∈ K` with `ω ∈ B`, the posterior pair
//! `(ω, S ∩ B)` is again in `K` (resp. `(ω, P(·|B)) ∈ K` probabilistically).
//!
//! Proposition 3.10 then composes disclosures: if `B₁` and `B₂` are both
//! individually safe for `A` and at least one of them is `K`-preserving, the
//! combined disclosure `B₁ ∩ B₂` is safe too.

use crate::knowledge::PossKnowledge;
use crate::probabilistic::ProbKnowledge;
use crate::world::WorldSet;

/// Tests whether `B` is `K`-preserving for a possibilistic `K`
/// (Definition 3.9).
pub fn is_preserving_poss(k: &PossKnowledge, b: &WorldSet) -> bool {
    k.pairs().iter().all(|pair| match pair.acquire(b) {
        None => true, // ω ∉ B: pair not constrained
        Some(post) => k.contains_pair(post.world(), post.set()),
    })
}

/// Tests whether `B` is `K`-preserving for a probabilistic `K`
/// (Definition 3.9). Posterior distributions are compared with an `L∞`
/// tolerance of `1e-12` to absorb float rounding in the conditioning.
pub fn is_preserving_prob(k: &ProbKnowledge, b: &WorldSet) -> bool {
    k.pairs().iter().all(|pair| match pair.acquire(b) {
        None => true,
        Some(post) => k
            .pairs()
            .iter()
            .any(|q| q.world() == post.world() && q.dist().linf_distance(post.dist()) < 1e-12),
    })
}

/// Part 1 of Proposition 3.10, executable form: given that `B₁` and `B₂` are
/// both `K`-preserving, checks (and returns) that `B₁ ∩ B₂` is
/// `K`-preserving.
///
/// # Panics
///
/// Panics if the precondition fails — callers use [`is_preserving_poss`]
/// first; the function exists to make the proposition testable.
pub fn preserving_intersection_poss(k: &PossKnowledge, b1: &WorldSet, b2: &WorldSet) -> WorldSet {
    assert!(
        is_preserving_poss(k, b1) && is_preserving_poss(k, b2),
        "preserving_intersection_poss requires both sets to be K-preserving"
    );
    let b12 = b1.intersection(b2);
    debug_assert!(is_preserving_poss(k, &b12), "Proposition 3.10(1) violated");
    b12
}

/// The sequential-acquisition identity of Section 3.3: acquiring `B₁` then
/// `B₂` equals acquiring `B₁ ∩ B₂`. Returns the posterior knowledge set.
pub fn acquire_sequence(s: &WorldSet, disclosures: &[&WorldSet]) -> WorldSet {
    let mut out = s.clone();
    for b in disclosures {
        out.intersect_with(b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeWorld;
    use crate::possibilistic;
    use crate::probabilistic::{self, Distribution, ProbKnowledgeWorld};
    use crate::world::{all_nonempty_subsets, WorldId};

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    #[test]
    fn unrestricted_k_preserves_everything() {
        // K = Ω ⊗ P(Ω) contains every consistent pair, so every B preserves.
        let k = PossKnowledge::unrestricted(4);
        for b in all_nonempty_subsets(4) {
            assert!(is_preserving_poss(&k, &b));
        }
    }

    #[test]
    fn rigid_k_is_not_preserved() {
        // Remark 4.2 family: K = Ω ⊗ {Ω} — only the vacuous knowledge set.
        // Any strict B breaks the assumption.
        let n = 3;
        let full = WorldSet::full(n);
        let pairs: Vec<_> = (0..n as u32)
            .map(|i| KnowledgeWorld::new(WorldId(i), full.clone()).unwrap())
            .collect();
        let k = PossKnowledge::from_pairs(pairs).unwrap();
        assert!(is_preserving_poss(&k, &full));
        assert!(!is_preserving_poss(&k, &ws(n, &[0, 1])));
    }

    #[test]
    fn proposition_3_10_part1_possibilistic() {
        // Exhaustive: for an ∩-closed K built from a family of down-closed
        // prefixes, B₁, B₂ preserving ⟹ B₁∩B₂ preserving.
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let preserving: Vec<WorldSet> = all_nonempty_subsets(n)
            .filter(|b| is_preserving_poss(&k, b))
            .collect();
        for b1 in &preserving {
            for b2 in &preserving {
                if b1.intersects(b2) {
                    let b12 = preserving_intersection_poss(&k, b1, b2);
                    assert!(is_preserving_poss(&k, &b12));
                }
            }
        }
    }

    #[test]
    fn proposition_3_10_part2_possibilistic() {
        // Safe(A,B₁) ∧ Safe(A,B₂) ∧ (B₁ or B₂ K-preserving) ⟹ Safe(A,B₁∩B₂).
        // Exhaustive over a 4-world universe with K unrestricted (every B is
        // preserving there, so the composition always holds).
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        let subsets: Vec<WorldSet> = all_nonempty_subsets(n).collect();
        for a in &subsets {
            for b1 in &subsets {
                if !possibilistic::is_safe(&k, a, b1) {
                    continue;
                }
                for b2 in &subsets {
                    if !possibilistic::is_safe(&k, a, b2) || b1.is_disjoint(b2) {
                        continue;
                    }
                    let b12 = b1.intersection(b2);
                    assert!(
                        possibilistic::is_safe(&k, a, &b12),
                        "Prop 3.10(2) violated: A={a:?} B1={b1:?} B2={b2:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_preserving_composition_can_breach() {
        // Remark 4.2: Ω = {1,2,3} (indices 0,1,2), K = Ω ⊗ {Ω}, A = {2}.
        // B₁ = {0,2} and B₂ = {1,2} are each safe, but B₁∩B₂ = {2} is not —
        // and indeed neither B₁ nor B₂ is K-preserving.
        let n = 3;
        let full = WorldSet::full(n);
        let pairs: Vec<_> = (0..n as u32)
            .map(|i| KnowledgeWorld::new(WorldId(i), full.clone()).unwrap())
            .collect();
        let k = PossKnowledge::from_pairs(pairs).unwrap();
        let a = ws(n, &[2]);
        let b1 = ws(n, &[0, 2]);
        let b2 = ws(n, &[1, 2]);
        assert!(possibilistic::is_safe(&k, &a, &b1));
        assert!(possibilistic::is_safe(&k, &a, &b2));
        assert!(!possibilistic::is_safe(&k, &a, &b1.intersection(&b2)));
        assert!(!is_preserving_poss(&k, &b1));
        assert!(!is_preserving_poss(&k, &b2));
    }

    #[test]
    fn sequential_acquisition_is_intersection() {
        let s = ws(5, &[0, 1, 2, 3]);
        let b1 = ws(5, &[1, 2, 3, 4]);
        let b2 = ws(5, &[0, 2, 3]);
        assert_eq!(
            acquire_sequence(&s, &[&b1, &b2]),
            s.intersection(&b1.intersection(&b2))
        );
    }

    #[test]
    fn probabilistic_preserving() {
        // A family closed under conditioning on B: point masses.
        let n = 3;
        let pairs: Vec<_> = (0..n as u32)
            .map(|i| {
                ProbKnowledgeWorld::new(WorldId(i), Distribution::point_mass(n, WorldId(i)))
                    .unwrap()
            })
            .collect();
        let k = ProbKnowledge::from_pairs(pairs).unwrap();
        for b in all_nonempty_subsets(n) {
            assert!(
                is_preserving_prob(&k, &b),
                "point masses are closed under conditioning"
            );
        }
        // A singleton family {uniform} is not preserved by strict B.
        let k1 = ProbKnowledge::from_pairs(vec![ProbKnowledgeWorld::new(
            WorldId(0),
            Distribution::uniform(n),
        )
        .unwrap()])
        .unwrap();
        assert!(is_preserving_prob(&k1, &WorldSet::full(n)));
        assert!(!is_preserving_prob(&k1, &ws(n, &[0, 1])));
    }

    #[test]
    fn proposition_3_10_part2_probabilistic() {
        // With a conditioning-closed probabilistic K (point masses plus all
        // conditionals of a base distribution), verify composition on a
        // concrete instance.
        let n = 3;
        let base = Distribution::from_unnormalized(vec![1.0, 2.0, 3.0]).unwrap();
        let mut dists = vec![base.clone()];
        for b in all_nonempty_subsets(n) {
            if let Some(c) = base.condition(&b) {
                if dists
                    .iter()
                    .all(|d: &Distribution| d.linf_distance(&c) > 1e-12)
                {
                    dists.push(c);
                }
            }
        }
        let k = ProbKnowledge::product(&WorldSet::full(n), &dists).unwrap();
        for b in all_nonempty_subsets(n) {
            assert!(is_preserving_prob(&k, &b));
        }
        let a = ws(n, &[2]);
        let safe_bs: Vec<WorldSet> = all_nonempty_subsets(n)
            .filter(|b| probabilistic::is_safe(&k, &a, b))
            .collect();
        for b1 in &safe_bs {
            for b2 in &safe_bs {
                if b1.intersects(b2) {
                    assert!(
                        probabilistic::is_safe(&k, &a, &b1.intersection(b2)),
                        "Prop 3.10(2) probabilistic violated: B1={b1:?} B2={b2:?}"
                    );
                }
            }
        }
    }
}
