//! Probabilistic privacy: Definitions 2.2 and 3.4, Propositions 3.6 and 3.8.
//!
//! A probabilistic agent's knowledge is a distribution `P` over `Ω` with
//! `P(ω*) > 0`. The agent's confidence in `A` is `P[A]`; learning `B`
//! replaces `P` with the conditional `P(·|B)`. Privacy of `A` given `B`
//! demands `P[A|B] ≤ P[A]` for every pair `(ω, P) ∈ K` with `ω ∈ B`
//! (Definition 3.4); for a product `C ⊗ Π` this is equivalent to
//!
//! ```text
//! ∀ P ∈ Π:  P[BC] > 0  ⟹  P[AB] ≤ P[A]·P[B]          (Proposition 3.6)
//! ```
//!
//! and, for `C`-liftable families (Definition 3.7), to the unconditional
//! `Safe_Π(A,B) ⟺ ∀ P ∈ Π: P[AB] ≤ P[A]·P[B]` (Proposition 3.8).

use crate::world::{WorldId, WorldSet};
use crate::CoreError;

/// Relative tolerance used when validating that probabilities sum to one.
const NORMALIZATION_TOL: f64 = 1e-9;

/// A probability distribution over a finite universe `Ω`, stored densely.
///
/// # Examples
///
/// ```
/// use epi_core::{Distribution, WorldSet};
/// let p = Distribution::uniform(4);
/// let a = WorldSet::from_indices(4, [0, 1]);
/// assert!((p.prob(&a) - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Distribution {
    weights: Vec<f64>,
}

impl Distribution {
    /// Creates a distribution from explicit weights, which must be
    /// non-negative and sum to 1 within a relative tolerance of `1e-9`.
    pub fn new(weights: Vec<f64>) -> Result<Distribution, CoreError> {
        if weights.is_empty() {
            return Err(CoreError::InvalidDistribution {
                reason: "empty weight vector".into(),
            });
        }
        if let Some((i, &w)) = weights
            .iter()
            .enumerate()
            .find(|(_, &w)| !(0.0..=1.0 + NORMALIZATION_TOL).contains(&w) || w.is_nan())
        {
            return Err(CoreError::InvalidDistribution {
                reason: format!("weight {w} at world {i} outside [0, 1]"),
            });
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > NORMALIZATION_TOL {
            return Err(CoreError::InvalidDistribution {
                reason: format!("weights sum to {total}, not 1"),
            });
        }
        Ok(Distribution { weights })
    }

    /// Creates a distribution by normalizing arbitrary non-negative weights.
    pub fn from_unnormalized(weights: Vec<f64>) -> Result<Distribution, CoreError> {
        let total: f64 = weights.iter().sum();
        if total.is_nan() || total <= 0.0 {
            return Err(CoreError::InvalidDistribution {
                reason: format!("unnormalized weights sum to {total}"),
            });
        }
        Distribution::new(weights.iter().map(|w| w / total).collect()).map_err(|e| match e {
            CoreError::InvalidDistribution { reason } => CoreError::InvalidDistribution {
                reason: format!("after normalization: {reason}"),
            },
            other => other,
        })
    }

    /// The uniform distribution over a universe of the given size.
    pub fn uniform(universe: usize) -> Distribution {
        assert!(
            universe > 0,
            "uniform distribution needs a non-empty universe"
        );
        Distribution {
            weights: vec![1.0 / universe as f64; universe],
        }
    }

    /// A point mass on `ω`.
    pub fn point_mass(universe: usize, w: WorldId) -> Distribution {
        assert!(w.index() < universe);
        let mut weights = vec![0.0; universe];
        weights[w.index()] = 1.0;
        Distribution { weights }
    }

    /// Universe size.
    pub fn universe_size(&self) -> usize {
        self.weights.len()
    }

    /// `P(ω)` for a single world.
    pub fn weight(&self, w: WorldId) -> f64 {
        self.weights[w.index()]
    }

    /// `P[A] = Σ_{ω ∈ A} P(ω)`.
    pub fn prob(&self, a: &WorldSet) -> f64 {
        assert_eq!(a.universe_size(), self.weights.len(), "universe mismatch");
        a.iter().map(|w| self.weights[w.index()]).sum()
    }

    /// The conditional distribution `P(· | B)` of Section 3.3.
    ///
    /// Returns `None` when `P[B] = 0` (conditioning undefined).
    pub fn condition(&self, b: &WorldSet) -> Option<Distribution> {
        let pb = self.prob(b);
        if pb <= 0.0 {
            return None;
        }
        let weights = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                if b.contains(WorldId(i as u32)) {
                    w / pb
                } else {
                    0.0
                }
            })
            .collect();
        Some(Distribution { weights })
    }

    /// The support `supp(P) = {ω : P(ω) > 0}` (Remark 2.3).
    pub fn support(&self) -> WorldSet {
        WorldSet::from_predicate(self.weights.len(), |w| self.weights[w.index()] > 0.0)
    }

    /// `‖P − Q‖_∞`, the norm used in the liftability Definition 3.7.
    pub fn linf_distance(&self, other: &Distribution) -> f64 {
        assert_eq!(self.weights.len(), other.weights.len(), "universe mismatch");
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Mixes `(1−t)·self + t·other`; the lifting construction used to verify
    /// Definition 3.7 for convex families.
    pub fn mix(&self, other: &Distribution, t: f64) -> Distribution {
        assert!((0.0..=1.0).contains(&t));
        assert_eq!(self.weights.len(), other.weights.len(), "universe mismatch");
        Distribution {
            weights: self
                .weights
                .iter()
                .zip(&other.weights)
                .map(|(a, b)| (1.0 - t) * a + t * b)
                .collect(),
        }
    }

    /// The raw weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// A consistent probabilistic knowledge world `(ω, P)` with `P(ω) > 0`
/// (Definition 2.2).
#[derive(Clone, Debug, PartialEq)]
pub struct ProbKnowledgeWorld {
    world: WorldId,
    dist: Distribution,
}

impl ProbKnowledgeWorld {
    /// Creates `(ω, P)`, enforcing `P(ω) > 0`.
    pub fn new(world: WorldId, dist: Distribution) -> Result<ProbKnowledgeWorld, CoreError> {
        if dist.weight(world) <= 0.0 {
            return Err(CoreError::ZeroProbabilityWorld { world: world.0 });
        }
        Ok(ProbKnowledgeWorld { world, dist })
    }

    /// The actual world of the pair.
    pub fn world(&self) -> WorldId {
        self.world
    }

    /// The user's prior distribution.
    pub fn dist(&self) -> &Distribution {
        &self.dist
    }

    /// Posterior pair after acquiring `B`: `(ω, P(·|B))`, or `None` when
    /// `ω ∉ B`.
    pub fn acquire(&self, b: &WorldSet) -> Option<ProbKnowledgeWorld> {
        if !b.contains(self.world) {
            return None;
        }
        let dist = self.dist.condition(b).expect("P[B] ≥ P(ω) > 0 since ω ∈ B");
        Some(ProbKnowledgeWorld {
            world: self.world,
            dist,
        })
    }
}

/// An explicit probabilistic second-level knowledge set `K ⊆ Ω_prob`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbKnowledge {
    universe: usize,
    pairs: Vec<ProbKnowledgeWorld>,
}

impl ProbKnowledge {
    /// Builds `K` from explicit consistent pairs.
    pub fn from_pairs(pairs: Vec<ProbKnowledgeWorld>) -> Result<ProbKnowledge, CoreError> {
        let universe = pairs
            .first()
            .ok_or(CoreError::EmptyKnowledge)?
            .dist()
            .universe_size();
        if let Some(bad) = pairs.iter().find(|p| p.dist().universe_size() != universe) {
            return Err(CoreError::UniverseMismatch {
                expected: universe,
                found: bad.dist().universe_size(),
            });
        }
        Ok(ProbKnowledge { universe, pairs })
    }

    /// The product `C ⊗ Π` (Definition 2.5): all `(ω, P)` with `ω ∈ C`,
    /// `P ∈ Π` and `P(ω) > 0`.
    pub fn product(c: &WorldSet, pi: &[Distribution]) -> Result<ProbKnowledge, CoreError> {
        let universe = c.universe_size();
        let mut pairs = Vec::new();
        for p in pi {
            if p.universe_size() != universe {
                return Err(CoreError::UniverseMismatch {
                    expected: universe,
                    found: p.universe_size(),
                });
            }
            for w in &c.intersection(&p.support()) {
                pairs.push(ProbKnowledgeWorld {
                    world: w,
                    dist: p.clone(),
                });
            }
        }
        if pairs.is_empty() {
            return Err(CoreError::EmptyKnowledge);
        }
        Ok(ProbKnowledge { universe, pairs })
    }

    /// The pairs of `K`.
    pub fn pairs(&self) -> &[ProbKnowledgeWorld] {
        &self.pairs
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` iff no pairs (not constructible via the public API).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Universe size.
    pub fn universe_size(&self) -> usize {
        self.universe
    }
}

/// Evidence of a probabilistic privacy breach: the pair `(ω, P)` and the
/// posterior/prior confidences showing the gain.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbBreach {
    /// The breaching knowledge world.
    pub witness: ProbKnowledgeWorld,
    /// Prior confidence `P[A]`.
    pub prior: f64,
    /// Posterior confidence `P[A|B]`.
    pub posterior: f64,
}

/// Tests `Safe_K(A, B)` per Definition 3.4: for all `(ω, P) ∈ K` with
/// `ω ∈ B`, `P[A|B] ≤ P[A]`.
///
/// Comparisons are exact on the `f64` values; the auditor decides the
/// tolerance policy upstream by choosing how `K` was built.
pub fn safe(k: &ProbKnowledge, a: &WorldSet, b: &WorldSet) -> Result<(), ProbBreach> {
    for pair in k.pairs() {
        if !b.contains(pair.world()) {
            continue;
        }
        let p = pair.dist();
        let pa = p.prob(a);
        let pb = p.prob(b);
        debug_assert!(pb > 0.0, "P[B] ≥ P(ω) > 0 since ω ∈ B");
        let pab = p.prob(&a.intersection(b));
        let posterior = pab / pb;
        if posterior > pa {
            return Err(ProbBreach {
                witness: pair.clone(),
                prior: pa,
                posterior,
            });
        }
    }
    Ok(())
}

/// Boolean convenience wrapper around [`safe`].
pub fn is_safe(k: &ProbKnowledge, a: &WorldSet, b: &WorldSet) -> bool {
    safe(k, a, b).is_ok()
}

/// Tests `Safe_{C,Π}(A, B)` via Proposition 3.6 without materializing
/// `C ⊗ Π`:
///
/// ```text
/// ∀ P ∈ Π:  P[BC] > 0  ⟹  P[AB] ≤ P[A]·P[B]
/// ```
pub fn safe_family(c: &WorldSet, pi: &[Distribution], a: &WorldSet, b: &WorldSet) -> bool {
    let bc = b.intersection(c);
    pi.iter()
        .all(|p| p.prob(&bc) <= 0.0 || p.prob(&a.intersection(b)) <= p.prob(a) * p.prob(b))
}

/// Tests `Safe_Π(A, B)` per Proposition 3.8 (the `C`-liftable form):
///
/// ```text
/// ∀ P ∈ Π:  P[AB] ≤ P[A]·P[B]
/// ```
pub fn safe_pi(pi: &[Distribution], a: &WorldSet, b: &WorldSet) -> bool {
    let ab = a.intersection(b);
    pi.iter().all(|p| p.prob(&ab) <= p.prob(a) * p.prob(b))
}

/// Verifies the `ω`-liftability condition of Definition 3.7 for an
/// explicitly given finite family, for a given `ε`: every `P ∈ Π` with
/// `P(ω) = 0` must have some `P' ∈ Π` with `P'(ω) > 0` and
/// `‖P − P'‖_∞ < ε`.
///
/// For a *finite* family this checks the condition at one fixed `ε` (the
/// definition quantifies over all `ε > 0`, which a finite family can only
/// satisfy degenerately); the function's purpose is to validate lifting
/// witnesses produced by convex-family constructions, see
/// [`lift_towards`].
pub fn is_omega_liftable_at(pi: &[Distribution], w: WorldId, epsilon: f64) -> bool {
    pi.iter().all(|p| {
        p.weight(w) > 0.0
            || pi
                .iter()
                .any(|q| q.weight(w) > 0.0 && p.linf_distance(q) < epsilon)
    })
}

/// Produces the lifting witness for a convex family: given `P` with
/// `P(ω) = 0` and any `Q` in the family with `Q(ω) > 0`, the mixture
/// `(1−t)·P + t·Q` has positive mass at `ω` and is within `t·‖P−Q‖_∞ ≤ t`
/// of `P`. This is the standard argument showing product distributions and
/// other convex families are `Ω`-liftable.
pub fn lift_towards(p: &Distribution, q: &Distribution, t: f64) -> Distribution {
    p.mix(q, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ws(universe: usize, ids: &[u32]) -> WorldSet {
        WorldSet::from_indices(universe, ids.iter().copied())
    }

    #[test]
    fn distribution_validation() {
        assert!(Distribution::new(vec![0.5, 0.5]).is_ok());
        assert!(Distribution::new(vec![0.5, 0.6]).is_err());
        assert!(Distribution::new(vec![-0.1, 1.1]).is_err());
        assert!(Distribution::new(vec![]).is_err());
        assert!(Distribution::from_unnormalized(vec![2.0, 6.0]).is_ok());
        assert!(Distribution::from_unnormalized(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn probabilities_and_conditioning() {
        let p = Distribution::new(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let a = ws(4, &[1, 3]);
        assert!((p.prob(&a) - 0.6).abs() < 1e-12);
        let cond = p.condition(&a).unwrap();
        assert!((cond.weight(WorldId(1)) - 0.2 / 0.6).abs() < 1e-12);
        assert_eq!(cond.weight(WorldId(0)), 0.0);
        assert!((cond.prob(&WorldSet::full(4)) - 1.0).abs() < 1e-12);
        // Conditioning on a null set is undefined.
        let p0 = Distribution::new(vec![1.0, 0.0]).unwrap();
        assert!(p0.condition(&ws(2, &[1])).is_none());
    }

    #[test]
    fn support_and_point_mass() {
        let p = Distribution::new(vec![0.0, 1.0, 0.0]).unwrap();
        assert_eq!(p.support(), ws(3, &[1]));
        assert_eq!(p, Distribution::point_mass(3, WorldId(1)));
    }

    #[test]
    fn knowledge_world_consistency() {
        let p = Distribution::new(vec![0.0, 1.0]).unwrap();
        assert!(matches!(
            ProbKnowledgeWorld::new(WorldId(0), p.clone()),
            Err(CoreError::ZeroProbabilityWorld { world: 0 })
        ));
        assert!(ProbKnowledgeWorld::new(WorldId(1), p).is_ok());
    }

    #[test]
    fn acquisition() {
        let p = Distribution::new(vec![0.25, 0.25, 0.25, 0.25]).unwrap();
        let kw = ProbKnowledgeWorld::new(WorldId(1), p).unwrap();
        let b = ws(4, &[1, 2]);
        let post = kw.acquire(&b).unwrap();
        assert!((post.dist().weight(WorldId(1)) - 0.5).abs() < 1e-12);
        assert!(kw.acquire(&ws(4, &[0])).is_none());
    }

    /// The §1.1 HIV example: under *any* prior, learning
    /// `B = (r₁∈ω ⟹ r₂∈ω)` cannot raise the probability of `A = (r₁∈ω)`.
    /// World index = 2·[r₁] + [r₂]; B rules out ω = 2 only, which is in A.
    #[test]
    fn hiv_example_safe_for_random_priors() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = ws(4, &[2, 3]);
        let b = ws(4, &[0, 1, 3]);
        let ab = a.intersection(&b);
        for _ in 0..2000 {
            let raw: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
            let p = Distribution::from_unnormalized(raw).unwrap();
            assert!(
                p.prob(&ab) <= p.prob(&a) * p.prob(&b) + 1e-12,
                "P[AB] > P[A]P[B] for P = {:?}",
                p.weights()
            );
        }
    }

    #[test]
    fn unsafe_pair_detected() {
        // A = B = {1}: learning B reveals A to a uniform prior.
        let p = Distribution::uniform(3);
        let kw = ProbKnowledgeWorld::new(WorldId(1), p).unwrap();
        let k = ProbKnowledge::from_pairs(vec![kw]).unwrap();
        let a = ws(3, &[1]);
        let breach = safe(&k, &a, &a).unwrap_err();
        assert!(breach.posterior > breach.prior);
        assert!((breach.posterior - 1.0).abs() < 1e-12);
        assert!((breach.prior - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn product_drops_zero_mass_pairs() {
        let c = WorldSet::full(3);
        let p = Distribution::new(vec![0.5, 0.5, 0.0]).unwrap();
        let k = ProbKnowledge::product(&c, &[p]).unwrap();
        assert_eq!(k.len(), 2); // (ω₀, P), (ω₁, P); (ω₂, P) inconsistent
    }

    #[test]
    fn proposition_3_6_matches_definition_3_4() {
        use epi_num::Rational;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 4;
        let (mut compared, mut ties) = (0u32, 0u32);
        for _ in 0..200 {
            // Small integer raw weights: exactly representable as f64, so
            // the margin of every prior is computable as an exact rational
            // from the same numbers the float predicates consume.
            let weights: Vec<Vec<i128>> = (0..3)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=1000i128)).collect())
                .collect();
            let pi: Vec<Distribution> = weights
                .iter()
                .map(|w| {
                    Distribution::from_unnormalized(w.iter().map(|&x| x as f64).collect()).unwrap()
                })
                .collect();
            let c = WorldSet::from_predicate(n, |_| rng.gen::<bool>());
            if c.is_empty() {
                continue;
            }
            let a = WorldSet::from_predicate(n, |_| rng.gen::<bool>());
            let b = WorldSet::from_predicate(n, |_| rng.gen::<bool>());
            if b.intersection(&c).is_empty() {
                continue;
            }
            // Positive weights mean full support, so C ⊗ Π is never empty.
            let k = ProbKnowledge::product(&c, &pi).unwrap();
            // Exact margin P[A]·P[B] − P[AB] per prior: with raw weights
            // w summing to T, it is (Σ_A w · Σ_B w − Σ_AB w · T) / T².
            let sum = |w: &[i128], s: &WorldSet| -> i128 {
                (0..n)
                    .filter(|&i| s.contains(WorldId(i as u32)))
                    .map(|i| w[i])
                    .sum()
            };
            let ab = a.intersection(&b);
            let margins: Vec<Rational> = weights
                .iter()
                .map(|w| {
                    let t: i128 = w.iter().sum();
                    Rational::new(sum(w, &a) * sum(w, &b) - sum(w, &ab) * t, t * t)
                })
                .collect();
            // Every prior has full support, so every prior is relevant
            // (P[BC] > 0) and exact safety is "no prior has a negative
            // margin" — the same ground truth for Def 3.4 and Prop 3.6.
            let exact_safe = margins.iter().all(|m| !m.is_negative());
            if margins.iter().any(|m| m.is_zero()) {
                // A true tie: P[A|B] = P[A] exactly for some prior. Both
                // predicates call that safe (no *gain* in confidence),
                // but their f64 evaluations of an exact equality can land
                // on either side, so only these cases are exempt.
                ties += 1;
                continue;
            }
            compared += 1;
            assert_eq!(
                is_safe(&k, &a, &b),
                exact_safe,
                "Def 3.4 disagrees with the exact margin: A={a:?} B={b:?} C={c:?} w={weights:?}"
            );
            assert_eq!(
                safe_family(&c, &pi, &a, &b),
                exact_safe,
                "Prop 3.6 disagrees with the exact margin: A={a:?} B={b:?} C={c:?} w={weights:?}"
            );
        }
        // Integer weights make true ties rare: the bulk of the cases must
        // actually be compared, or the test has regressed into skipping.
        assert!(
            compared >= 100,
            "only {compared} cases compared ({ties} exact ties)"
        );
    }

    #[test]
    fn liftability_of_mixtures() {
        let p = Distribution::new(vec![0.5, 0.5, 0.0]).unwrap();
        let q = Distribution::uniform(3);
        for t in [0.5, 0.1, 1e-3, 1e-9] {
            let lifted = lift_towards(&p, &q, t);
            assert!(lifted.weight(WorldId(2)) > 0.0);
            assert!(lifted.linf_distance(&p) <= t + 1e-15);
        }
        let family = vec![p, q.clone()];
        assert!(is_omega_liftable_at(&family, WorldId(2), 1.0));
        // With only the deficient distribution, not liftable.
        let lonely = vec![Distribution::new(vec![0.5, 0.5, 0.0]).unwrap()];
        assert!(!is_omega_liftable_at(&lonely, WorldId(2), 0.5));
    }

    proptest! {
        /// P[A|B] ≤ P[A] ⟺ P[AB] ≤ P[A]P[B] whenever P[B] > 0 — the
        /// equivalence underlying Proposition 3.6.
        #[test]
        fn prop_conditional_vs_product_form(
            raw in proptest::collection::vec(0.01f64..1.0, 6),
            a_bits in 0u8..63, b_bits in 1u8..63
        ) {
            let p = Distribution::from_unnormalized(raw).unwrap();
            let a = WorldSet::from_predicate(6, |w| a_bits >> w.0 & 1 == 1);
            let b = WorldSet::from_predicate(6, |w| b_bits >> w.0 & 1 == 1);
            prop_assume!(p.prob(&b) > 1e-9);
            let lhs = p.prob(&a.intersection(&b)) / p.prob(&b) <= p.prob(&a) + 1e-12;
            let rhs = p.prob(&a.intersection(&b)) <= p.prob(&a) * p.prob(&b) + 1e-12;
            prop_assert_eq!(lhs, rhs);
        }

        /// Conditioning is idempotent: P(·|B)(·|B) = P(·|B).
        #[test]
        fn prop_condition_idempotent(
            raw in proptest::collection::vec(0.01f64..1.0, 6),
            b_bits in 1u8..63
        ) {
            let p = Distribution::from_unnormalized(raw).unwrap();
            let b = WorldSet::from_predicate(6, |w| b_bits >> w.0 & 1 == 1);
            let once = p.condition(&b).unwrap();
            let twice = once.condition(&b).unwrap();
            prop_assert!(once.linf_distance(&twice) < 1e-12);
        }
    }
}
