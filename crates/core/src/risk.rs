//! Quantitative disclosure risk: the uniform-prior safety margin.
//!
//! The paper's safety predicates are boolean — a disclosure is safe or
//! it is not — and the set-valued β function of Prop 4.1/Cor 4.14
//! ([`crate::intervals::margin`]) certifies *which worlds* separate the
//! two. Operationally a daemon also wants a *number*: how close did this
//! disclosure come to the breach boundary, and how does that closeness
//! compose across a session? This module derives that number exactly.
//!
//! The reference point is the **uniform prior**: the product distribution
//! that assigns every atom probability 1/2, i.e. the uniform distribution
//! over all `N = 2^n` worlds. At that prior every probability is a count
//! divided by `N`, so the safety gap
//!
//! ```text
//! gap = Pr[A]·Pr[B] − Pr[A ∧ B]  =  (|A|·|B| − |A∩B|·N) / N²
//! ```
//!
//! is an exact integer fraction — no floats, no tolerance. The uniform
//! prior is covered by every assumption family the auditor supports
//! (it is a product distribution, and trivially a member of the
//! unrestricted family), so a verdict of *safe* implies `gap ≥ 0` here:
//! the margin is a certified lower bound on distance to breach at the
//! least-informed prior, and a breach at the uniform prior saturates the
//! score.
//!
//! The normalized **risk score** is the posterior/prior confidence ratio
//! at that prior, clamped to `[0, 1]`:
//!
//! ```text
//! risk = Pr[A | B] / Pr[A]  =  |A∩B|·N / (|A|·|B|)     (clamped to 1)
//! ```
//!
//! `0` means the disclosure taught the attacker nothing about `A`
//! (independent or disjoint), `1` means it reached (or crossed) the
//! breach boundary. Scores are carried as integer **micro-units**
//! (`0 ..= 1_000_000`, see [`RISK_SCALE`]) so they stay `Eq`-comparable
//! and byte-stable on the wire; the f64 rendering is derived, never
//! stored.

use crate::world::WorldSet;

/// One unit of risk (`1.0`) in integer micro-units.
pub const RISK_SCALE: u64 = 1_000_000;

/// The exact uniform-prior safety margin of one disclosure `B` against
/// an audited property `A`, kept as integer counts so every derived
/// quantity is exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UniformMargin {
    /// `|A|` — worlds satisfying the audited property.
    pub a: u64,
    /// `|B|` — worlds consistent with the disclosure.
    pub b: u64,
    /// `|A ∩ B|`.
    pub ab: u64,
    /// Universe size `N` (all counts are out of this many worlds).
    pub n: u64,
}

impl UniformMargin {
    /// Margin from raw counts. `a`, `b` and `ab` must not exceed `n`,
    /// and `n` must be nonzero.
    pub fn from_counts(a: u64, b: u64, ab: u64, n: u64) -> UniformMargin {
        assert!(n > 0, "empty universe has no margin");
        assert!(a <= n && b <= n && ab <= n, "counts exceed the universe");
        assert!(ab <= a && ab <= b, "|A∩B| exceeds |A| or |B|");
        UniformMargin { a, b, ab, n }
    }

    /// Margin of disclosure `b` against audited set `a` (same universe).
    pub fn from_sets(a: &WorldSet, b: &WorldSet) -> UniformMargin {
        UniformMargin::from_counts(
            a.len() as u64,
            b.len() as u64,
            a.intersection_len(b) as u64,
            a.universe_size() as u64,
        )
    }

    /// Numerator of the exact gap `Pr[A]·Pr[B] − Pr[A∧B]` over the
    /// common denominator `N²`: `|A|·|B| − |A∩B|·N`. Negative means the
    /// uniform prior already gains confidence in `A` from `B`.
    pub fn gap_numerator(&self) -> i128 {
        self.a as i128 * self.b as i128 - self.ab as i128 * self.n as i128
    }

    /// Denominator of the exact gap: `N²`.
    pub fn gap_denominator(&self) -> u128 {
        self.n as u128 * self.n as u128
    }

    /// The gap as a float, for display only.
    pub fn gap_f64(&self) -> f64 {
        self.gap_numerator() as f64 / self.gap_denominator() as f64
    }

    /// True when the disclosure sits exactly on the breach boundary at
    /// the uniform prior (`Pr[A|B] = Pr[A]` with both sides defined).
    pub fn is_tie(&self) -> bool {
        self.a > 0 && self.b > 0 && self.gap_numerator() == 0
    }

    /// The normalized risk score in micro-units: `Pr[A|B] / Pr[A]`
    /// at the uniform prior, clamped to `[0, RISK_SCALE]`. Degenerate
    /// cases (`A` impossible, `B` impossible) score `0` — an impossible
    /// disclosure or a vacuous property teaches nothing.
    pub fn risk_micros(&self) -> u32 {
        if self.a == 0 || self.b == 0 || self.ab == 0 {
            return 0;
        }
        // risk = ab·N / (a·b), scaled. Products stay within u128:
        // ab, n ≤ 2^64 would overflow, but counts are world counts of
        // in-memory sets, far below 2^40 in practice; u128 holds
        // ab·N·SCALE for all representable inputs (≤ 2^40·2^40·2^20).
        let num = self.ab as u128 * self.n as u128 * RISK_SCALE as u128;
        let den = self.a as u128 * self.b as u128;
        let scaled = num / den;
        scaled.min(RISK_SCALE as u128) as u32
    }

    /// The risk score as a float in `[0, 1]`, derived from
    /// [`risk_micros`](Self::risk_micros) — use only for rendering.
    pub fn risk_f64(&self) -> f64 {
        self.risk_micros() as f64 / RISK_SCALE as f64
    }
}

/// Renders a micro-unit score as the wire's f64 in `[0, 1]`.
pub fn micros_to_f64(micros: u64) -> f64 {
    micros as f64 / RISK_SCALE as f64
}

/// Parses a wire f64 back to micro-units, rounding to the nearest
/// micro. Exact for every value produced by [`micros_to_f64`] (micro
/// counts are far below 2^52, so the division and the round-trip are
/// lossless in f64).
pub fn f64_to_micros(value: f64) -> u64 {
    if !value.is_finite() || value <= 0.0 {
        return 0;
    }
    (value * RISK_SCALE as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldSet;

    #[test]
    fn independent_sets_have_zero_gap_and_half_risk_structure() {
        // 4 worlds over 2 atoms; A = atom 0, B = atom 1 — independent
        // under the uniform prior, so the gap is exactly zero.
        let a = WorldSet::from_predicate(4, |w| w.index() & 1 != 0);
        let b = WorldSet::from_predicate(4, |w| w.index() & 2 != 0);
        let m = UniformMargin::from_sets(&a, &b);
        assert_eq!(m.gap_numerator(), 0);
        assert!(m.is_tie());
        // At the boundary the confidence ratio is exactly 1.
        assert_eq!(m.risk_micros(), RISK_SCALE as u32);
    }

    #[test]
    fn disjoint_sets_are_zero_risk() {
        let a = WorldSet::from_predicate(4, |w| w.index() < 2);
        let b = WorldSet::from_predicate(4, |w| w.index() >= 2);
        let m = UniformMargin::from_sets(&a, &b);
        assert_eq!(m.ab, 0);
        assert_eq!(m.risk_micros(), 0);
        assert!(m.gap_numerator() > 0);
        assert!(!m.is_tie());
    }

    #[test]
    fn containment_saturates_risk() {
        // B ⊂ A with B small: learning B pins A, risk clamps to 1.
        let a = WorldSet::from_predicate(8, |w| w.index() < 4);
        let b = WorldSet::from_predicate(8, |w| w.index() == 1);
        let m = UniformMargin::from_sets(&a, &b);
        assert!(m.gap_numerator() < 0);
        assert_eq!(m.risk_micros(), RISK_SCALE as u32);
        assert_eq!(m.risk_f64(), 1.0);
    }

    #[test]
    fn degenerate_sets_score_zero() {
        let empty = WorldSet::empty(4);
        let full = WorldSet::from_predicate(4, |_| true);
        assert_eq!(UniformMargin::from_sets(&empty, &full).risk_micros(), 0);
        assert_eq!(UniformMargin::from_sets(&full, &empty).risk_micros(), 0);
        assert!(!UniformMargin::from_sets(&empty, &full).is_tie());
    }

    #[test]
    fn gap_matches_float_computation_on_small_universes() {
        for mask_a in 0u32..16 {
            for mask_b in 0u32..16 {
                let a = WorldSet::from_predicate(4, |w| mask_a & (1 << w.index()) != 0);
                let b = WorldSet::from_predicate(4, |w| mask_b & (1 << w.index()) != 0);
                let m = UniformMargin::from_sets(&a, &b);
                let pa = a.len() as f64 / 4.0;
                let pb = b.len() as f64 / 4.0;
                let pab = a.intersection_len(&b) as f64 / 4.0;
                let float_gap = pa * pb - pab;
                assert!(
                    (m.gap_f64() - float_gap).abs() < 1e-12,
                    "A={mask_a:04b} B={mask_b:04b}"
                );
            }
        }
    }

    #[test]
    fn micro_round_trip_is_exact() {
        for micros in [0u64, 1, 499_999, 500_000, 999_999, 1_000_000] {
            assert_eq!(f64_to_micros(micros_to_f64(micros)), micros);
        }
        assert_eq!(f64_to_micros(f64::NAN), 0);
        assert_eq!(f64_to_micros(-0.5), 0);
    }
}
