//! Privacy under unrestricted prior knowledge: Theorem 3.11.
//!
//! When the auditor assumes nothing about the user, the privacy relation
//! collapses to a purely combinatorial condition. For all `A, B ⊆ Ω` and
//! `ω* ∈ B`, the following are equivalent (Theorem 3.11):
//!
//! 1. `A ∩ B = ∅` or `A ∪ B = Ω`;
//! 2. `Safe_K(A,B)` for `K = Ω_poss`;
//! 3. `Safe_K(A,B)` for `K = Ω_prob`;
//! 4. `Safe_K(A,B)` for `K = {ω*} ⊗ P_prob(Ω)`.
//!
//! And `Safe_K(A,B)` for the possibilistic `K = {ω*} ⊗ P(Ω)` holds iff
//! `A∩B = ∅`, `A∪B = Ω`, or `ω* ∈ B − A`.
//!
//! Remark 3.12: in auditing practice `ω* ∈ A ∩ B` (both the protected and
//! the disclosed property are true), so unconditional privacy reduces to
//! checking whether `A ∪ B = Ω`, i.e. whether "`A` or `B`" is a tautology.

use crate::probabilistic::Distribution;
use crate::world::{WorldId, WorldSet};

/// The combinatorial condition (1) of Theorem 3.11:
/// `A ∩ B = ∅ ∨ A ∪ B = Ω`. Equivalent to `Safe` for the fully unrestricted
/// possibilistic and probabilistic knowledge sets.
pub fn safe_unrestricted(a: &WorldSet, b: &WorldSet) -> bool {
    a.is_disjoint(b) || a.union(b).is_full()
}

/// `Safe` for `K = {ω*} ⊗ P(Ω)` (auditor knows the database, assumes nothing
/// about the possibilistic user): `A∩B = ∅ ∨ A∪B = Ω ∨ ω* ∈ B − A`.
pub fn safe_known_world_poss(a: &WorldSet, b: &WorldSet, actual: WorldId) -> bool {
    safe_unrestricted(a, b) || (b.contains(actual) && !a.contains(actual))
}

/// `Safe` for `K = {ω*} ⊗ P_prob(Ω)`: by Theorem 3.11 this coincides with
/// the fully unrestricted condition (knowing the world does not help the
/// probabilistic auditor).
pub fn safe_known_world_prob(a: &WorldSet, b: &WorldSet, _actual: WorldId) -> bool {
    safe_unrestricted(a, b)
}

/// Remark 3.12's practical test: when `ω* ∈ A ∩ B`, unconditional privacy
/// holds iff `A ∪ B = Ω`.
pub fn safe_both_true(a: &WorldSet, b: &WorldSet, actual: WorldId) -> bool {
    debug_assert!(a.contains(actual) && b.contains(actual));
    a.union(b).is_full()
}

/// A two-point prior distribution witnessing that `(A, B)` is *not* safe
/// under unrestricted probabilistic priors, together with the actual world
/// placing the witness in `K`.
#[derive(Clone, Debug, PartialEq)]
pub struct UnrestrictedRefutation {
    /// The breaching prior.
    pub prior: Distribution,
    /// The actual world `ω ∈ B` with `P(ω) > 0`.
    pub world: WorldId,
    /// `P[A]` before the disclosure.
    pub prior_confidence: f64,
    /// `P[A|B]` after the disclosure.
    pub posterior_confidence: f64,
}

/// When condition (1) of Theorem 3.11 fails, constructs the explicit
/// refuting prior used in its proof: pick `ω₁ ∈ A∩B` and `ω₂ ∉ A∪B` and let
/// `P(ω₁) = P(ω₂) = ½`. Then `P[A] = P[B] = ½` but `P[A|B] = 1 > ½`.
///
/// Returns `None` when `(A, B)` *is* unconditionally safe.
pub fn refute_unrestricted(a: &WorldSet, b: &WorldSet) -> Option<UnrestrictedRefutation> {
    if safe_unrestricted(a, b) {
        return None;
    }
    let n = a.universe_size();
    let w1 = a.intersection(b).first().expect("A∩B ≠ ∅ since not safe");
    let w2 = a
        .union(b)
        .complement()
        .first()
        .expect("A∪B ≠ Ω since not safe");
    let mut weights = vec![0.0; n];
    weights[w1.index()] = 0.5;
    weights[w2.index()] = 0.5;
    let prior = Distribution::new(weights).expect("two-point mass is valid");
    let pa = prior.prob(a);
    let pb = prior.prob(b);
    let pab = prior.prob(&a.intersection(b));
    Some(UnrestrictedRefutation {
        world: w1,
        prior_confidence: pa,
        posterior_confidence: pab / pb,
        prior,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::PossKnowledge;
    use crate::possibilistic;
    use crate::world::all_nonempty_subsets;

    #[test]
    fn condition_matches_possibilistic_definition_exhaustively() {
        // Theorem 3.11, (1) ⟺ (2): compare with Definition 3.1 evaluated on
        // the explicit unrestricted K, over every (A, B) for |Ω| = 4.
        let n = 4;
        let k = PossKnowledge::unrestricted(n);
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                assert_eq!(
                    safe_unrestricted(&a, &b),
                    possibilistic::is_safe(&k, &a, &b),
                    "Theorem 3.11 (1)⟺(2) failed at A={a:?} B={b:?}"
                );
            }
        }
    }

    #[test]
    fn known_world_possibilistic_exhaustive() {
        // Theorem 3.11 second part: K = {ω*} ⊗ P(Ω).
        let n = 4;
        for actual in 0..n as u32 {
            let actual = WorldId(actual);
            let c = WorldSet::singleton(n, actual);
            let k = PossKnowledge::product_with_powerset(&c);
            for a in all_nonempty_subsets(n) {
                for b in all_nonempty_subsets(n) {
                    if !b.contains(actual) {
                        continue; // theorem assumes ω* ∈ B
                    }
                    assert_eq!(
                        safe_known_world_poss(&a, &b, actual),
                        possibilistic::is_safe(&k, &a, &b),
                        "failed at A={a:?} B={b:?} ω*={actual:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn refutation_is_genuine() {
        let n = 5;
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                match refute_unrestricted(&a, &b) {
                    None => assert!(safe_unrestricted(&a, &b)),
                    Some(r) => {
                        assert!(!safe_unrestricted(&a, &b));
                        assert!(b.contains(r.world));
                        assert!(r.prior.weight(r.world) > 0.0);
                        assert!(
                            r.posterior_confidence > r.prior_confidence,
                            "refutation must show a confidence gain"
                        );
                        assert_eq!(r.posterior_confidence, 1.0);
                        assert_eq!(r.prior_confidence, 0.5);
                    }
                }
            }
        }
    }

    #[test]
    fn both_true_reduction() {
        // Remark 3.12: with ω* ∈ A∩B, safety ⟺ A∪B = Ω.
        let n = 4;
        for a in all_nonempty_subsets(n) {
            for b in all_nonempty_subsets(n) {
                let ab = a.intersection(&b);
                if let Some(actual) = ab.first() {
                    assert_eq!(
                        safe_both_true(&a, &b, actual),
                        safe_unrestricted(&a, &b),
                        "A={a:?} B={b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hiv_example_unconditionally_safe() {
        // §1.1: A = {2,3} ("HIV+"), B = {0,1,3} ("HIV+ ⟹ transfusions"):
        // A ∪ B = Ω, so safe under *any* prior.
        let a = WorldSet::from_indices(4, [2, 3]);
        let b = WorldSet::from_indices(4, [0, 1, 3]);
        assert!(safe_unrestricted(&a, &b));
        // But disclosing B' = {1,3} ("Bob had transfusions") is not.
        let b2 = WorldSet::from_indices(4, [1, 3]);
        assert!(!safe_unrestricted(&a, &b2));
        let r = refute_unrestricted(&a, &b2).unwrap();
        assert!(r.posterior_confidence > r.prior_confidence);
    }
}
