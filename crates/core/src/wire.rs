//! JSON wire encoding of core types.
//!
//! [`WorldSet`] is the one core type that crosses process boundaries:
//! the persistence layer (`epi-wal`) snapshots each user's cumulative
//! knowledge and logs every disclosed set. The encoding is the bitset's
//! canonical block form rendered as fixed-width hex — compact (16
//! characters per 64 worlds), exact (no float round-trips), and
//! self-validating on decode (block count and padding bits are checked,
//! so a truncated or bit-flipped encoding is rejected rather than
//! silently reinterpreted).
//!
//! ```
//! use epi_core::WorldSet;
//! use epi_json::{Deserialize, Json, Serialize};
//! let set = WorldSet::from_indices(4, [1, 3]);
//! let line = set.to_json().render();
//! assert_eq!(line, r#"{"universe":4,"hex":"000000000000000a"}"#);
//! let back = WorldSet::from_json(&Json::parse(&line).unwrap()).unwrap();
//! assert_eq!(back, set);
//! ```

use crate::world::WorldSet;
use epi_json::{field, Deserialize, Json, JsonError, Serialize};

/// Renders blocks as concatenated 16-digit lowercase hex, first block
/// first (each block's own digits are most-significant first, as hex
/// conventionally reads).
fn blocks_to_hex(blocks: &[u64]) -> String {
    let mut hex = String::with_capacity(blocks.len() * 16);
    for b in blocks {
        hex.push_str(&format!("{b:016x}"));
    }
    hex
}

fn hex_to_blocks(hex: &str) -> Result<Vec<u64>, JsonError> {
    if !hex.len().is_multiple_of(16) {
        return Err(JsonError::decode(
            "world-set hex length is not a multiple of 16",
        ));
    }
    hex.as_bytes()
        .chunks(16)
        .map(|chunk| {
            let s = std::str::from_utf8(chunk)
                .map_err(|_| JsonError::decode("world-set hex is not ASCII"))?;
            u64::from_str_radix(s, 16)
                .map_err(|_| JsonError::decode("world-set hex has a non-hex digit"))
        })
        .collect()
}

impl Serialize for WorldSet {
    fn to_json(&self) -> Json {
        Json::obj([
            ("universe", Json::from(self.universe_size())),
            ("hex", Json::from(blocks_to_hex(self.blocks()))),
        ])
    }
}

impl Deserialize for WorldSet {
    fn from_json(v: &Json) -> Result<WorldSet, JsonError> {
        let universe: usize = field(v, "universe")?;
        let hex: String = field(v, "hex")?;
        let blocks = hex_to_blocks(&hex)?;
        WorldSet::from_blocks(universe, blocks).ok_or_else(|| {
            JsonError::decode("world-set blocks do not match the universe (corrupt encoding)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldId;

    #[test]
    fn worldsets_roundtrip() {
        for universe in [1usize, 4, 63, 64, 65, 130] {
            let mut set = WorldSet::empty(universe);
            for i in (0..universe).step_by(3) {
                set.insert(WorldId(i as u32));
            }
            let back = WorldSet::from_json(&Json::parse(&set.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, set, "universe {universe}");
        }
        let full = WorldSet::full(70);
        let back = WorldSet::from_json(&full.to_json()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn corrupt_encodings_are_rejected() {
        // Wrong block count for the universe.
        let short = Json::parse(r#"{"universe":70,"hex":"00000000000000ff"}"#).unwrap();
        assert!(WorldSet::from_json(&short).is_err());
        // A padding bit set past the universe: world 5 of a 4-world
        // universe. `from_blocks` must reject, not silently mask.
        let padded = Json::parse(r#"{"universe":4,"hex":"0000000000000020"}"#).unwrap();
        assert!(WorldSet::from_json(&padded).is_err());
        // Non-hex digits.
        let junk = Json::parse(r#"{"universe":4,"hex":"zzzzzzzzzzzzzzzz"}"#).unwrap();
        assert!(WorldSet::from_json(&junk).is_err());
        // Odd-length hex.
        let odd = Json::parse(r#"{"universe":4,"hex":"0a"}"#).unwrap();
        assert!(WorldSet::from_json(&odd).is_err());
    }

    #[test]
    fn empty_and_singleton_encode_compactly() {
        let empty = WorldSet::empty(8);
        assert_eq!(
            empty.to_json().render(),
            r#"{"universe":8,"hex":"0000000000000000"}"#
        );
        let one = WorldSet::singleton(8, WorldId(7));
        assert_eq!(
            one.to_json().render(),
            r#"{"universe":8,"hex":"0000000000000080"}"#
        );
    }
}
