//! Possible worlds and dense sets of worlds.
//!
//! Following Section 2 of the paper, the set `Ω` of all possible databases is
//! finite; a *world* `ω ∈ Ω` is a database, and every property of the
//! database is a subset `A ⊆ Ω`. Worlds are represented as `u32` indices into
//! a universe of known size, and subsets of `Ω` as dense bitsets
//! ([`WorldSet`]) so that the set algebra that dominates every privacy test
//! (`∩`, `∪`, `⊆`, complements, cardinalities) runs at memory bandwidth.

use std::fmt;

/// An index identifying one world `ω ∈ Ω`.
///
/// A `WorldId` is only meaningful relative to a universe size carried by the
/// [`WorldSet`]s it is used with; the library checks bounds at the `WorldSet`
/// boundary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorldId(pub u32);

impl WorldId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for WorldId {
    fn from(i: u32) -> Self {
        WorldId(i)
    }
}

impl TryFrom<usize> for WorldId {
    type Error = crate::CoreError;

    /// Converts a raw index, failing (instead of panicking) on indices
    /// beyond `u32` — universes are bounded by `2³²` worlds, and callers
    /// deriving indices from untrusted input get a routable error.
    fn try_from(i: usize) -> Result<Self, Self::Error> {
        u32::try_from(i)
            .map(WorldId)
            .map_err(|_| crate::CoreError::WorldIndexOutOfRange { index: i })
    }
}

impl fmt::Debug for WorldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ω{}", self.0)
    }
}

impl fmt::Display for WorldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ω{}", self.0)
    }
}

const BLOCK_BITS: usize = 64;

/// A subset of a finite universe `Ω = {ω₀, …, ω_{n−1}}`, stored as a dense
/// bitset.
///
/// All binary operations require both operands to share the same universe
/// size and panic otherwise — mixing universes is always a logic error in
/// this domain (a property of one database schema applied to another).
///
/// # Examples
///
/// ```
/// use epi_core::{WorldId, WorldSet};
/// let mut a = WorldSet::empty(8);
/// a.insert(WorldId(1));
/// a.insert(WorldId(3));
/// let b = WorldSet::from_indices(8, [3, 4]);
/// assert_eq!(a.intersection(&b).len(), 1);
/// assert!(a.union(&b).contains(WorldId(4)));
/// assert!(!a.is_subset(&b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WorldSet {
    universe: usize,
    blocks: Vec<u64>,
}

impl WorldSet {
    /// The empty subset of a universe with `universe` worlds.
    pub fn empty(universe: usize) -> WorldSet {
        WorldSet {
            universe,
            blocks: vec![0; universe.div_ceil(BLOCK_BITS)],
        }
    }

    /// The full universe `Ω` of the given size.
    pub fn full(universe: usize) -> WorldSet {
        let mut s = WorldSet::empty(universe);
        for b in &mut s.blocks {
            *b = u64::MAX;
        }
        s.clear_padding();
        s
    }

    /// The singleton `{ω}`.
    pub fn singleton(universe: usize, w: WorldId) -> WorldSet {
        let mut s = WorldSet::empty(universe);
        s.insert(w);
        s
    }

    /// Builds a set from world indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_indices<I: IntoIterator<Item = u32>>(universe: usize, iter: I) -> WorldSet {
        let mut s = WorldSet::empty(universe);
        for i in iter {
            s.insert(WorldId(i));
        }
        s
    }

    /// Builds a set from a membership predicate evaluated on every world.
    pub fn from_predicate(universe: usize, mut pred: impl FnMut(WorldId) -> bool) -> WorldSet {
        let mut s = WorldSet::empty(universe);
        for i in 0..universe {
            let w = WorldId(i as u32);
            if pred(w) {
                s.insert(w);
            }
        }
        s
    }

    fn clear_padding(&mut self) {
        let tail = self.universe % BLOCK_BITS;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    fn assert_same_universe(&self, other: &WorldSet) {
        assert_eq!(
            self.universe, other.universe,
            "WorldSet universe mismatch: {} vs {}",
            self.universe, other.universe
        );
    }

    /// Number of worlds in the universe (not in this set).
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// The raw 64-bit blocks of the bitset, least-significant world
    /// first. Padding bits past `universe_size()` are always zero, so the
    /// blocks are a canonical encoding of the set — what the wire format
    /// and persistence layers serialize and checksum.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuilds a set from raw blocks, the inverse of
    /// [`WorldSet::blocks`]. Returns `None` when the block count does not
    /// match the universe or a padding bit past `universe` is set (a
    /// corrupt or truncated encoding, never a valid set).
    pub fn from_blocks(universe: usize, blocks: Vec<u64>) -> Option<WorldSet> {
        if blocks.len() != universe.div_ceil(BLOCK_BITS) {
            return None;
        }
        let candidate = WorldSet { universe, blocks };
        let mut canonical = candidate.clone();
        canonical.clear_padding();
        (canonical == candidate).then_some(candidate)
    }

    /// Number of worlds in this set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` iff the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `true` iff the set equals the whole universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of bounds for this universe.
    pub fn contains(&self, w: WorldId) -> bool {
        let i = w.index();
        assert!(
            i < self.universe,
            "world {} out of universe {}",
            i,
            self.universe
        );
        self.blocks[i / BLOCK_BITS] >> (i % BLOCK_BITS) & 1 == 1
    }

    /// Inserts a world; returns `true` if it was newly added.
    pub fn insert(&mut self, w: WorldId) -> bool {
        let i = w.index();
        assert!(
            i < self.universe,
            "world {} out of universe {}",
            i,
            self.universe
        );
        let block = &mut self.blocks[i / BLOCK_BITS];
        let mask = 1u64 << (i % BLOCK_BITS);
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Removes a world; returns `true` if it was present.
    pub fn remove(&mut self, w: WorldId) -> bool {
        let i = w.index();
        assert!(
            i < self.universe,
            "world {} out of universe {}",
            i,
            self.universe
        );
        let block = &mut self.blocks[i / BLOCK_BITS];
        let mask = 1u64 << (i % BLOCK_BITS);
        let present = *block & mask != 0;
        *block &= !mask;
        present
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &WorldSet) -> WorldSet {
        self.assert_same_universe(other);
        WorldSet {
            universe: self.universe,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &WorldSet) -> WorldSet {
        self.assert_same_universe(other);
        WorldSet {
            universe: self.universe,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `self − other`.
    pub fn difference(&self, other: &WorldSet) -> WorldSet {
        self.assert_same_universe(other);
        WorldSet {
            universe: self.universe,
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// `Ω − self`.
    pub fn complement(&self) -> WorldSet {
        let mut s = WorldSet {
            universe: self.universe,
            blocks: self.blocks.iter().map(|b| !b).collect(),
        };
        s.clear_padding();
        s
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &WorldSet) {
        self.assert_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &WorldSet) {
        self.assert_same_universe(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &WorldSet) -> bool {
        self.assert_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff `self ⊂ other` strictly.
    pub fn is_proper_subset(&self, other: &WorldSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// `true` iff `self ∩ other = ∅`, without allocating.
    pub fn is_disjoint(&self, other: &WorldSet) -> bool {
        self.assert_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// `true` iff `self ∩ other ≠ ∅`, without allocating.
    pub fn intersects(&self, other: &WorldSet) -> bool {
        !self.is_disjoint(other)
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_len(&self, other: &WorldSet) -> usize {
        self.assert_same_universe(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> WorldSetIter<'_> {
        WorldSetIter {
            set: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<WorldId> {
        self.iter().next()
    }

    /// An arbitrary member (the smallest), if any.
    pub fn any_member(&self) -> Option<WorldId> {
        self.first()
    }
}

impl fmt::Debug for WorldSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", w.0)?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`WorldSet`].
pub struct WorldSetIter<'a> {
    set: &'a WorldSet,
    block_idx: usize,
    current: u64,
}

impl Iterator for WorldSetIter<'_> {
    type Item = WorldId;

    fn next(&mut self) -> Option<WorldId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(WorldId((self.block_idx * BLOCK_BITS + bit) as u32));
            }
            self.block_idx += 1;
            if self.block_idx >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_idx];
        }
    }
}

impl<'a> IntoIterator for &'a WorldSet {
    type Item = WorldId;
    type IntoIter = WorldSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Enumerates every subset of a universe of size `n` (for exhaustive
/// validation on small universes; `n ≤ 20` enforced).
pub fn all_subsets(universe: usize) -> impl Iterator<Item = WorldSet> {
    assert!(
        universe <= 20,
        "all_subsets is exponential; universe too large"
    );
    (0u64..(1u64 << universe)).map(move |mask| {
        let mut s = WorldSet::empty(universe);
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros();
            s.insert(WorldId(i));
            m &= m - 1;
        }
        s
    })
}

/// Enumerates every *non-empty* subset of a universe of size `n`.
pub fn all_nonempty_subsets(universe: usize) -> impl Iterator<Item = WorldSet> {
    all_subsets(universe).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        let e = WorldSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = WorldSet::full(70);
        assert!(f.is_full());
        assert_eq!(f.len(), 70);
        assert!(f.contains(WorldId(69)));
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = WorldSet::empty(100);
        assert!(s.insert(WorldId(63)));
        assert!(s.insert(WorldId(64)));
        assert!(!s.insert(WorldId(63)));
        assert!(s.contains(WorldId(63)));
        assert!(s.contains(WorldId(64)));
        assert!(!s.contains(WorldId(65)));
        assert!(s.remove(WorldId(63)));
        assert!(!s.remove(WorldId(63)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_bounds_contains_panics() {
        WorldSet::empty(4).contains(WorldId(4));
    }

    #[test]
    fn world_id_try_from_usize() {
        assert_eq!(WorldId::try_from(7usize), Ok(WorldId(7)));
        assert_eq!(WorldId::try_from(u32::MAX as usize), Ok(WorldId(u32::MAX)));
        let oversize = u32::MAX as usize + 1;
        assert_eq!(
            WorldId::try_from(oversize),
            Err(crate::CoreError::WorldIndexOutOfRange { index: oversize })
        );
        // The error routes through Display rather than a panic message.
        let err = WorldId::try_from(oversize).unwrap_err();
        assert!(err.to_string().contains("world index"));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = WorldSet::empty(4);
        let b = WorldSet::empty(5);
        let _ = a.union(&b);
    }

    #[test]
    fn set_algebra() {
        let a = WorldSet::from_indices(10, [1, 2, 3]);
        let b = WorldSet::from_indices(10, [3, 4]);
        assert_eq!(a.intersection(&b), WorldSet::from_indices(10, [3]));
        assert_eq!(a.union(&b), WorldSet::from_indices(10, [1, 2, 3, 4]));
        assert_eq!(a.difference(&b), WorldSet::from_indices(10, [1, 2]));
        assert!(a.intersects(&b));
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.intersection_len(&b), 1);
        assert!(WorldSet::from_indices(10, [1, 2]).is_subset(&a));
        assert!(WorldSet::from_indices(10, [1, 2]).is_proper_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn iteration_order() {
        let s = WorldSet::from_indices(130, [0, 63, 64, 127, 129]);
        let got: Vec<u32> = s.iter().map(|w| w.0).collect();
        assert_eq!(got, vec![0, 63, 64, 127, 129]);
        assert_eq!(s.first(), Some(WorldId(0)));
    }

    #[test]
    fn from_predicate_matches_manual() {
        let s = WorldSet::from_predicate(16, |w| w.0 % 3 == 0);
        assert_eq!(s, WorldSet::from_indices(16, [0, 3, 6, 9, 12, 15]));
    }

    #[test]
    fn all_subsets_count() {
        assert_eq!(all_subsets(4).count(), 16);
        assert_eq!(all_nonempty_subsets(4).count(), 15);
        // Every generated set is within bounds.
        for s in all_subsets(4) {
            assert!(s.len() <= 4);
            assert_eq!(s.universe_size(), 4);
        }
    }

    fn arb_set(universe: usize) -> impl Strategy<Value = WorldSet> {
        proptest::collection::vec(any::<bool>(), universe)
            .prop_map(move |bits| WorldSet::from_predicate(universe, |w| bits[w.index()]))
    }

    proptest! {
        #[test]
        fn prop_de_morgan(a in arb_set(80), b in arb_set(80)) {
            prop_assert_eq!(
                a.union(&b).complement(),
                a.complement().intersection(&b.complement())
            );
            prop_assert_eq!(
                a.intersection(&b).complement(),
                a.complement().union(&b.complement())
            );
        }

        #[test]
        fn prop_difference_is_intersection_with_complement(a in arb_set(80), b in arb_set(80)) {
            prop_assert_eq!(a.difference(&b), a.intersection(&b.complement()));
        }

        #[test]
        fn prop_len_inclusion_exclusion(a in arb_set(80), b in arb_set(80)) {
            prop_assert_eq!(
                a.union(&b).len() + a.intersection(&b).len(),
                a.len() + b.len()
            );
        }

        #[test]
        fn prop_subset_iff_difference_empty(a in arb_set(40), b in arb_set(40)) {
            prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
        }

        #[test]
        fn prop_iter_roundtrip(a in arb_set(100)) {
            let rebuilt = WorldSet::from_indices(100, a.iter().map(|w| w.0));
            prop_assert_eq!(rebuilt, a);
        }

        #[test]
        fn prop_intersection_len_matches(a in arb_set(100), b in arb_set(100)) {
            prop_assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
        }
    }
}
