//! # epi-faults
//!
//! A deterministic fault-injection harness for the auditing stack.
//!
//! Chaos testing a concurrent daemon is only useful when failures
//! *reproduce*: a flaky chaos test is worse than none. Everything here is
//! therefore a pure function of a seed —
//!
//! * [`FaultPlan::worker_fault`] scripts what happens inside the decision
//!   worker on its `i`-th computation (nothing, a panic, or a stall),
//!   independent of thread interleaving;
//! * [`FaultPlan::frame_fault`] scripts how the `i`-th NDJSON frame of a
//!   client connection is mangled on the wire (sent intact, truncated
//!   mid-frame, a byte smashed into invalid UTF-8, or the connection
//!   dropped at the frame boundary);
//! * [`FaultPlan::worker_hook`] packages the worker script as the
//!   [`FaultHook`] that [`epi_service::AuditService::with_fault_hook`]
//!   accepts, so faults land inside an otherwise-production service;
//! * [`FaultPlan::slow_client_fault`] scripts slowloris-style client
//!   misbehavior (a half-frame held open in silence, a byte-at-a-time
//!   dribble, a disconnect before the reply is read) for asserting that
//!   one slow connection cannot stall the others.
//!
//! Two runs with the same seed produce the same fault script; two seeds
//! produce different ones. The chaos suite (`tests/chaos_service.rs` at
//! the workspace root) drives a seed matrix through the full service and
//! asserts liveness, fail-closed verdicts, and byte determinism of
//! successful replies.
//!
//! [`RecoveryPlan`] extends the harness to durability: it scripts where
//! in a seeded disclosure stream the process "dies", and what on-disk
//! corruption (a torn tail, a flipped bit) greets the restart. The
//! recovery suite (`tests/recovery_chaos.rs`) uses it to assert that a
//! kill-and-restart run reconstructs byte-identical verdicts and that
//! corrupted log frames are detected and handled fail-closed.
//!
//! [`BudgetPlan`] extends it to exposure budgets: a seeded disclosure
//! stream (which user, which query shape, which state mask) for driving
//! per-user exposure ledgers toward their caps from many directions at
//! once. The budget suites use it to assert that the ledger a restart
//! replays from the disclosure log is byte-identical to the one the
//! interrupted process held in memory, whatever the mix.
//!
//! [`StormPlan`] extends it to overload: a seeded request storm (skewed
//! onto one heavy user, with a scripted fsync-stall point) whose volume
//! deliberately exceeds capacity. The overload suite
//! (`tests/overload_chaos.rs`) uses it to assert that admission control
//! keeps goodput up and verdicts byte-deterministic while the service
//! degrades and drains under pressure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use epi_service::FaultHook;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64: a tiny, high-quality mixer. Used both to derive per-event
/// streams from `(seed, index)` and as the engine of [`Rng64`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic RNG (SplitMix64 stream) for harness code that
/// wants a sequence rather than indexed access.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state.wrapping_sub(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// What the fault plan injects into one worker computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// The computation panics (exercises `catch_unwind` isolation and the
    /// `worker_failed` error path).
    Panic,
    /// The computation stalls this long before running (exercises
    /// deadlines, queue backpressure, and shedding).
    Stall(Duration),
}

/// How the plan mangles one outbound NDJSON frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Delivered unmodified.
    Intact,
    /// Only the first `keep` bytes are sent, then the connection drops —
    /// a torn frame (`keep` is less than the frame length).
    Truncate {
        /// Bytes delivered before the cut.
        keep: usize,
    },
    /// One byte is overwritten with `0xFF` (never valid in UTF-8), so the
    /// frame arrives complete but unparsable.
    CorruptUtf8 {
        /// Offset of the smashed byte.
        at: usize,
    },
    /// The connection drops cleanly at the frame boundary, before any
    /// byte of this frame is sent.
    DropConnection,
}

/// How a scripted slow client misbehaves while sending one frame — the
/// slowloris repertoire. Unlike [`FrameFault`] (which mangles bytes),
/// these mangle *time*: the bytes are valid, the pacing is hostile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlowClientFault {
    /// Send the first `keep` bytes of the frame, then fall silent with
    /// the socket held open for `hold` before finishing the frame — the
    /// classic slowloris half-frame. A correct server must either keep
    /// serving everyone else meanwhile or evict the staller on its
    /// frame deadline.
    HalfFrameStall {
        /// Bytes sent before the silence.
        keep: usize,
        /// How long the client holds the half-frame open.
        hold: Duration,
    },
    /// Dribble the frame one byte at a time with `delay` between bytes.
    ByteAtATime {
        /// Pause between consecutive bytes.
        delay: Duration,
    },
    /// Send the full frame, then disconnect without reading the reply —
    /// the server learns mid-write that the peer is gone.
    DisconnectMidReply,
}

/// A seeded, stateless fault script. Copy it freely: every method is a
/// pure function of `(plan, index)`, so concurrent consumers cannot skew
/// each other's draws.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Out of 1000 worker computations, how many panic.
    pub panic_per_mille: u32,
    /// Out of 1000 worker computations, how many stall.
    pub stall_per_mille: u32,
    /// How long a stalled computation sleeps.
    pub stall: Duration,
    /// Out of 1000 outbound frames, how many are mangled (split evenly
    /// between truncation, UTF-8 corruption, and connection drops).
    pub frame_per_mille: u32,
    /// How long a scripted slowloris half-frame is held open.
    pub slow_hold: Duration,
    /// Pause between bytes for a scripted byte-at-a-time dribble.
    pub slow_delay: Duration,
}

impl FaultPlan {
    /// A plan with the default chaos mix: 15% panics, 10% stalls of 2 ms,
    /// 30% mangled frames, 50 ms slowloris holds, 2 ms dribble gaps.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_per_mille: 150,
            stall_per_mille: 100,
            stall: Duration::from_millis(2),
            frame_per_mille: 300,
            slow_hold: Duration::from_millis(50),
            slow_delay: Duration::from_millis(2),
        }
    }

    /// Derives the draw for event stream `stream`, index `index`.
    fn draw(&self, stream: u64, index: u64) -> u64 {
        splitmix64(self.seed ^ stream.rotate_left(32) ^ splitmix64(index))
    }

    /// What happens to the `index`-th worker computation.
    pub fn worker_fault(&self, index: u64) -> Option<WorkerFault> {
        let roll = (self.draw(0x77_00, index) % 1000) as u32;
        if roll < self.panic_per_mille {
            Some(WorkerFault::Panic)
        } else if roll < self.panic_per_mille + self.stall_per_mille {
            Some(WorkerFault::Stall(self.stall))
        } else {
            None
        }
    }

    /// What happens to the `index`-th outbound frame of `frame_len`
    /// bytes. Degenerate frames (under 2 bytes) are always intact.
    pub fn frame_fault(&self, index: u64, frame_len: usize) -> FrameFault {
        if frame_len < 2 {
            return FrameFault::Intact;
        }
        let roll = (self.draw(0xF0, index) % 1000) as u32;
        if roll >= self.frame_per_mille {
            return FrameFault::Intact;
        }
        let detail = self.draw(0xF1, index);
        match roll % 3 {
            0 => FrameFault::Truncate {
                keep: 1 + (detail as usize % (frame_len - 1)),
            },
            1 => FrameFault::CorruptUtf8 {
                at: detail as usize % frame_len,
            },
            _ => FrameFault::DropConnection,
        }
    }

    /// Applies a frame fault to raw bytes: `Some(bytes_to_send)` (the
    /// connection then drops for torn frames), or `None` when the
    /// connection drops before sending.
    pub fn apply_frame_fault(fault: FrameFault, frame: &[u8]) -> Option<Vec<u8>> {
        match fault {
            FrameFault::Intact => Some(frame.to_vec()),
            FrameFault::Truncate { keep } => Some(frame[..keep.min(frame.len())].to_vec()),
            FrameFault::CorruptUtf8 { at } => {
                let mut bytes = frame.to_vec();
                if let Some(b) = bytes.get_mut(at) {
                    *b = 0xFF;
                }
                Some(bytes)
            }
            FrameFault::DropConnection => None,
        }
    }

    /// How the scripted slow client misbehaves on its `index`-th frame
    /// of `frame_len` bytes. Every connection draws one of the three
    /// slowloris behaviors; frames too short to split (under 2 bytes)
    /// never draw a half-frame stall.
    pub fn slow_client_fault(&self, index: u64, frame_len: usize) -> SlowClientFault {
        let roll = self.draw(0x51_0C, index);
        let variants = if frame_len < 2 { 2 } else { 3 };
        match roll % variants {
            0 => SlowClientFault::ByteAtATime {
                delay: self.slow_delay,
            },
            1 => SlowClientFault::DisconnectMidReply,
            _ => SlowClientFault::HalfFrameStall {
                keep: 1 + (self.draw(0x51_0D, index) as usize % (frame_len - 1)),
                hold: self.slow_hold,
            },
        }
    }

    /// The worker script as a service-pluggable hook. Each invocation
    /// consumes the next index of the worker stream; a scripted panic
    /// actually panics (the pool's `catch_unwind` turns it into a typed
    /// error), a scripted stall sleeps.
    pub fn worker_hook(&self) -> FaultHook {
        let plan = *self;
        let calls = Arc::new(AtomicU64::new(0));
        Arc::new(move |_key| {
            let i = calls.fetch_add(1, Ordering::SeqCst);
            match plan.worker_fault(i) {
                Some(WorkerFault::Panic) => {
                    panic!("injected fault: worker panic (computation {i})")
                }
                Some(WorkerFault::Stall(d)) => std::thread::sleep(d),
                None => {}
            }
        })
    }

    /// Longest run of consecutive scripted panics in the first `horizon`
    /// computations — chaos tests size client retry budgets above this so
    /// a fully-faulted retry chain cannot occur by construction.
    pub fn max_consecutive_panics(&self, horizon: u64) -> u32 {
        let (mut longest, mut run) = (0u32, 0u32);
        for i in 0..horizon {
            if self.worker_fault(i) == Some(WorkerFault::Panic) {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        longest
    }
}

/// One scripted corruption of an on-disk log file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalCorruption {
    /// The file loses its last `cut` bytes — the artifact a crash leaves
    /// when it lands mid-append (a torn final record).
    TornTail {
        /// Bytes removed from the tail (at least 1).
        cut: u64,
    },
    /// One bit of one byte is flipped in place — the artifact silent
    /// media corruption leaves. The framing CRC must catch it.
    BitFlip {
        /// Offset of the corrupted byte.
        offset: u64,
        /// Which bit (0–7) is flipped.
        bit: u8,
    },
}

/// A seeded crash-and-corruption script for the durability suite. Like
/// [`FaultPlan`], every method is a pure function of `(plan, inputs)`:
/// the same seed kills the same run at the same disclosure and corrupts
/// the same byte, so a recovery failure replays exactly.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPlan {
    /// The seed everything derives from.
    pub seed: u64,
}

impl RecoveryPlan {
    /// A plan seeded by `seed`.
    pub fn new(seed: u64) -> RecoveryPlan {
        RecoveryPlan { seed }
    }

    fn draw(&self, stream: u64, index: u64) -> u64 {
        splitmix64(self.seed ^ stream.rotate_left(32) ^ splitmix64(index))
    }

    /// After how many of `total` disclosures the process dies. Always in
    /// `1..total`, so the interrupted run both writes something and
    /// leaves something for the restarted process to serve.
    pub fn kill_point(&self, total: u64) -> u64 {
        assert!(total >= 2, "a kill point needs at least two disclosures");
        1 + self.draw(0x4B, 0) % (total - 1)
    }

    /// A torn-tail injection for a file of `len` bytes: cut somewhere in
    /// the file's second half, leaving a partial record for recovery to
    /// find (`len` must be at least 2).
    pub fn torn_tail(&self, len: u64) -> WalCorruption {
        assert!(len >= 2, "cannot tear a file of {len} bytes");
        WalCorruption::TornTail {
            cut: 1 + self.draw(0xC1, len) % (len / 2).max(1),
        }
    }

    /// A single-bit flip at a scripted offset in `start..end` (a byte
    /// range the caller knows holds committed frame data).
    pub fn bit_flip_in(&self, start: u64, end: u64) -> WalCorruption {
        assert!(end > start, "empty corruption range {start}..{end}");
        let offset = start + self.draw(0xB1, end - start) % (end - start);
        WalCorruption::BitFlip {
            offset,
            bit: (self.draw(0xB2, offset) % 8) as u8,
        }
    }

    /// Applies a corruption to raw file bytes in place.
    pub fn apply_corruption(corruption: WalCorruption, bytes: &mut Vec<u8>) {
        match corruption {
            WalCorruption::TornTail { cut } => {
                let keep = bytes.len().saturating_sub(cut as usize);
                bytes.truncate(keep);
            }
            WalCorruption::BitFlip { offset, bit } => {
                if let Some(b) = bytes.get_mut(offset as usize) {
                    *b ^= 1 << (bit % 8);
                }
            }
        }
    }
}

/// A seeded overload-storm script for the overload chaos suite
/// (`tests/overload_chaos.rs`). Where [`FaultPlan`] breaks individual
/// computations and frames, a `StormPlan` breaks the *load*: it scripts
/// a deterministic request mix whose volume deliberately exceeds the
/// service's capacity, with the traffic skewed onto one heavy user so
/// per-user fairness has something to defend against. Every method is a
/// pure function of `(plan, index)` — the same seed produces the same
/// storm, so a goodput regression replays exactly.
#[derive(Clone, Copy, Debug)]
pub struct StormPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Distinct users issuing requests (user `0` is the heavy one).
    pub users: u64,
    /// Out of 1000 requests, how many the heavy user sends; the rest
    /// spread uniformly over the other users.
    pub heavy_per_mille: u32,
}

impl StormPlan {
    /// A plan with the default storm shape: 8 users, half the traffic
    /// from the heavy one.
    pub fn new(seed: u64) -> StormPlan {
        StormPlan {
            seed,
            users: 8,
            heavy_per_mille: 500,
        }
    }

    fn draw(&self, stream: u64, index: u64) -> u64 {
        splitmix64(self.seed ^ stream.rotate_left(32) ^ splitmix64(index))
    }

    /// Which user sends the `index`-th request (`0` = the heavy user).
    pub fn user(&self, index: u64) -> u64 {
        let roll = (self.draw(0x5A_01, index) % 1000) as u32;
        if roll < self.heavy_per_mille || self.users < 2 {
            0
        } else {
            1 + self.draw(0x5A_02, index) % (self.users - 1)
        }
    }

    /// The disclosed state mask of the `index`-th request, nonzero and
    /// within an `atoms`-bit schema (`0 < atoms <= 32`).
    pub fn state_mask(&self, index: u64, atoms: u32) -> u32 {
        assert!(atoms > 0 && atoms <= 32, "atoms = {atoms}");
        let cap = 1u64 << atoms;
        1 + (self.draw(0x5A_03, index) % (cap - 1)) as u32
    }

    /// After how many of `total` storm requests the scripted fsync
    /// stall begins — always in `1..total`, so the storm has both a
    /// healthy and a stalled phase.
    pub fn fsync_stall_at(&self, total: u64) -> u64 {
        assert!(total >= 2, "a stall point needs at least two requests");
        1 + self.draw(0x5A_04, 0) % (total - 1)
    }
}

/// A seeded disclosure-stream script for the exposure-budget suites.
/// Where [`StormPlan`] scripts *volume*, a `BudgetPlan` scripts *risk
/// accrual*: which user makes the `index`-th disclosure, what state it
/// reveals, and which of a small set of query shapes it uses — so a
/// seed matrix walks many distinct ledgers toward (and past) their caps.
/// Every method is a pure function of `(plan, index)`.
#[derive(Clone, Copy, Debug)]
pub struct BudgetPlan {
    /// The seed everything derives from.
    pub seed: u64,
    /// Distinct users accruing exposure.
    pub users: u64,
    /// Distinct query shapes the driver cycles through.
    pub queries: u64,
}

impl BudgetPlan {
    /// A plan with the default shape: 4 users over 3 query shapes.
    pub fn new(seed: u64) -> BudgetPlan {
        BudgetPlan {
            seed,
            users: 4,
            queries: 3,
        }
    }

    fn draw(&self, stream: u64, index: u64) -> u64 {
        splitmix64(self.seed ^ stream.rotate_left(32) ^ splitmix64(index))
    }

    /// Which user makes the `index`-th disclosure.
    pub fn user(&self, index: u64) -> u64 {
        self.draw(0xB6_01, index) % self.users.max(1)
    }

    /// Which query shape the `index`-th disclosure uses.
    pub fn query(&self, index: u64) -> u64 {
        self.draw(0xB6_02, index) % self.queries.max(1)
    }

    /// The disclosed state mask of the `index`-th disclosure, within an
    /// `atoms`-bit schema (`0 < atoms <= 32`). Unlike a storm, zero is
    /// allowed: all-false states exercise the negative-result gate,
    /// which accrues zero risk but still advances the ledger epoch.
    pub fn state_mask(&self, index: u64, atoms: u32) -> u32 {
        assert!(atoms > 0 && atoms <= 32, "atoms = {atoms}");
        let cap = 1u64 << atoms;
        (self.draw(0xB6_03, index) % cap) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlan::new(42);
        let b = FaultPlan::new(42);
        for i in 0..2000 {
            assert_eq!(a.worker_fault(i), b.worker_fault(i));
            assert_eq!(a.frame_fault(i, 64), b.frame_fault(i, 64));
        }
    }

    #[test]
    fn different_seeds_produce_different_scripts() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let differs = (0..500).any(|i| a.worker_fault(i) != b.worker_fault(i));
        assert!(differs, "seeds 1 and 2 scripted identical worker faults");
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let plan = FaultPlan::new(7);
        let n = 10_000u64;
        let mut panics = 0;
        let mut stalls = 0;
        for i in 0..n {
            match plan.worker_fault(i) {
                Some(WorkerFault::Panic) => panics += 1,
                Some(WorkerFault::Stall(_)) => stalls += 1,
                None => {}
            }
        }
        // 15% ± 5 points, 10% ± 5 points.
        assert!((1_000..=2_000).contains(&panics), "panics = {panics}");
        assert!((500..=1_500).contains(&stalls), "stalls = {stalls}");
    }

    #[test]
    fn frame_faults_stay_in_bounds() {
        let plan = FaultPlan::new(3);
        let frame = br#"{"op":"ping"}"#;
        for i in 0..2000 {
            match plan.frame_fault(i, frame.len()) {
                FrameFault::Intact | FrameFault::DropConnection => {}
                FrameFault::Truncate { keep } => {
                    assert!(keep >= 1 && keep < frame.len(), "keep = {keep}");
                    let sent =
                        FaultPlan::apply_frame_fault(FrameFault::Truncate { keep }, frame).unwrap();
                    assert_eq!(&sent[..], &frame[..keep]);
                }
                FrameFault::CorruptUtf8 { at } => {
                    assert!(at < frame.len());
                    let sent = FaultPlan::apply_frame_fault(FrameFault::CorruptUtf8 { at }, frame)
                        .unwrap();
                    assert_eq!(sent.len(), frame.len());
                    assert_eq!(sent[at], 0xFF);
                    assert!(String::from_utf8(sent).is_err(), "0xFF must break UTF-8");
                }
            }
        }
        assert_eq!(
            FaultPlan::apply_frame_fault(FrameFault::DropConnection, frame),
            None
        );
    }

    #[test]
    fn degenerate_frames_are_never_mangled() {
        let plan = FaultPlan::new(9);
        for i in 0..200 {
            assert_eq!(plan.frame_fault(i, 0), FrameFault::Intact);
            assert_eq!(plan.frame_fault(i, 1), FrameFault::Intact);
        }
    }

    #[test]
    fn slow_client_scripts_are_deterministic_and_bounded() {
        let a = FaultPlan::new(21);
        let b = FaultPlan::new(21);
        let (mut stalls, mut dribbles, mut drops) = (0, 0, 0);
        for i in 0..300 {
            let fault = a.slow_client_fault(i, 40);
            assert_eq!(fault, b.slow_client_fault(i, 40));
            match fault {
                SlowClientFault::HalfFrameStall { keep, hold } => {
                    assert!((1..40).contains(&keep), "keep = {keep}");
                    assert_eq!(hold, a.slow_hold);
                    stalls += 1;
                }
                SlowClientFault::ByteAtATime { delay } => {
                    assert_eq!(delay, a.slow_delay);
                    dribbles += 1;
                }
                SlowClientFault::DisconnectMidReply => drops += 1,
            }
        }
        assert!(
            stalls > 0 && dribbles > 0 && drops > 0,
            "all behaviors should appear over 300 draws \
             (stalls {stalls}, dribbles {dribbles}, drops {drops})"
        );
        // Frames too short to split never draw a half-frame stall.
        for i in 0..200 {
            assert!(!matches!(
                a.slow_client_fault(i, 1),
                SlowClientFault::HalfFrameStall { .. }
            ));
        }
    }

    #[test]
    fn consecutive_panic_runs_are_measured() {
        let plan = FaultPlan::new(5);
        let longest = plan.max_consecutive_panics(5_000);
        assert!(longest >= 1, "a 15% rate over 5000 draws must repeat");
        assert!(longest < 12, "astronomically unlikely: {longest}");
    }

    #[test]
    fn recovery_plans_are_deterministic_and_bounded() {
        let a = RecoveryPlan::new(77);
        let b = RecoveryPlan::new(77);
        for total in 2..200u64 {
            let k = a.kill_point(total);
            assert_eq!(k, b.kill_point(total), "same seed, same kill point");
            assert!((1..total).contains(&k), "kill point {k} out of 1..{total}");
        }
        let differs = (2..100u64)
            .any(|t| RecoveryPlan::new(1).kill_point(t) != RecoveryPlan::new(2).kill_point(t));
        assert!(differs, "seeds 1 and 2 scripted identical kill points");
        for len in 2..500u64 {
            let WalCorruption::TornTail { cut } = a.torn_tail(len) else {
                panic!("torn_tail returned a non-tear");
            };
            assert!(cut >= 1 && cut <= len / 2 + 1, "cut {cut} for len {len}");
            let WalCorruption::BitFlip { offset, bit } = a.bit_flip_in(8, len + 8) else {
                panic!("bit_flip_in returned a non-flip");
            };
            assert!((8..len + 8).contains(&offset));
            assert!(bit < 8);
        }
    }

    #[test]
    fn corruptions_apply_as_scripted() {
        let mut torn = (0u8..100).collect::<Vec<_>>();
        RecoveryPlan::apply_corruption(WalCorruption::TornTail { cut: 30 }, &mut torn);
        assert_eq!(torn.len(), 70);
        assert_eq!(torn[69], 69);
        // A cut past the whole file leaves it empty, not panicking.
        let mut tiny = vec![1u8, 2];
        RecoveryPlan::apply_corruption(WalCorruption::TornTail { cut: 99 }, &mut tiny);
        assert!(tiny.is_empty());
        let mut flipped = vec![0u8; 16];
        RecoveryPlan::apply_corruption(WalCorruption::BitFlip { offset: 5, bit: 3 }, &mut flipped);
        assert_eq!(flipped[5], 1 << 3);
        // Flipping the same bit twice restores the byte.
        RecoveryPlan::apply_corruption(WalCorruption::BitFlip { offset: 5, bit: 3 }, &mut flipped);
        assert_eq!(flipped[5], 0);
        // Out-of-range offsets are ignored rather than panicking.
        RecoveryPlan::apply_corruption(WalCorruption::BitFlip { offset: 99, bit: 0 }, &mut flipped);
        assert_eq!(flipped, vec![0u8; 16]);
    }

    #[test]
    fn storm_plans_are_deterministic_skewed_and_bounded() {
        let a = StormPlan::new(404);
        let b = StormPlan::new(404);
        let mut heavy = 0u64;
        for i in 0..4000 {
            assert_eq!(a.user(i), b.user(i), "same seed, same storm");
            assert_eq!(a.state_mask(i, 4), b.state_mask(i, 4));
            let user = a.user(i);
            assert!(user < a.users, "user {user} out of range");
            if user == 0 {
                heavy += 1;
            }
            let mask = a.state_mask(i, 4);
            assert!(
                (1..16).contains(&mask),
                "mask {mask} out of a 4-atom schema"
            );
        }
        // 50% ± 5 points of the traffic lands on the heavy user.
        assert!((1_800..=2_200).contains(&heavy), "heavy share = {heavy}");
        let differs = (0..500).any(|i| StormPlan::new(1).user(i) != StormPlan::new(2).user(i));
        assert!(differs, "seeds 1 and 2 scripted identical storms");
        for total in 2..200u64 {
            let at = a.fsync_stall_at(total);
            assert_eq!(at, b.fsync_stall_at(total));
            assert!(
                (1..total).contains(&at),
                "stall point {at} out of 1..{total}"
            );
        }
    }

    #[test]
    fn budget_plans_are_deterministic_and_bounded() {
        let a = BudgetPlan::new(909);
        let b = BudgetPlan::new(909);
        let mut gated = 0u64;
        for i in 0..2000 {
            assert_eq!(a.user(i), b.user(i), "same seed, same stream");
            assert_eq!(a.query(i), b.query(i));
            assert_eq!(a.state_mask(i, 3), b.state_mask(i, 3));
            assert!(a.user(i) < a.users);
            assert!(a.query(i) < a.queries);
            let mask = a.state_mask(i, 3);
            assert!(mask < 8, "mask {mask} out of a 3-atom schema");
            if mask == 0 {
                gated += 1;
            }
        }
        assert!(
            gated > 0,
            "all-false states must appear so the zero-risk path is driven"
        );
        let differs = (0..500).any(|i| BudgetPlan::new(1).user(i) != BudgetPlan::new(2).user(i));
        assert!(differs, "seeds 1 and 2 scripted identical streams");
    }

    #[test]
    fn rng_streams_are_deterministic() {
        let mut a = Rng64::new(11);
        let mut b = Rng64::new(11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x = Rng64::new(1).next_u64();
        let y = Rng64::new(2).next_u64();
        assert_ne!(x, y);
        let mut r = Rng64::new(13);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
