//! Dependency-free JSON for the epistemic-privacy workspace.
//!
//! The service layer ([`epi-service`]) speaks newline-delimited JSON over
//! TCP, and audit tooling wants findings/verdicts/reports in a stable
//! machine-readable form. The offline build cannot use `serde`, so this
//! crate provides the minimal equivalent: a [`Json`] value model, a strict
//! parser ([`Json::parse`]), a deterministic writer ([`Json::render`] —
//! object keys keep insertion order, so equal values render byte-for-byte
//! equal), and [`Serialize`] / [`Deserialize`] traits mirroring serde's
//! division of labour.
//!
//! ```
//! use epi_json::{Json, Serialize};
//! let v = Json::obj([("op", Json::from("stats")), ("id", Json::from(7i64))]);
//! assert_eq!(v.render(), r#"{"op":"stats","id":7}"#);
//! assert_eq!(Json::parse(&v.render()).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value.
///
/// Integers and floats are kept apart so `u64` timestamps and counters
/// round-trip exactly; object members keep insertion order so rendering is
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        i64::try_from(i)
            .map(Json::Int)
            .unwrap_or(Json::Float(i as f64))
    }
}
impl From<u32> for Json {
    fn from(i: u32) -> Json {
        Json::Int(i as i64)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::from(i as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl Json {
    /// An object from key/value pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(members: I) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact JSON (no whitespace, keys in insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep floats re-parsable and distinguishable from ints.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or decode error, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for decode errors).
    pub offset: usize,
}

impl JsonError {
    /// A decode-stage error (no source offset).
    pub fn decode(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("expected 'null'"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("expected 'true'"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("expected 'false'"))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected ':' after object key"));
                    }
                    self.pos += 1;
                    let val = self.value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's payloads; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if len == 0 || start + len > self.bytes.len() {
                        return Err(self.err("invalid utf8 in string"));
                    }
                    self.pos = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a JSON value"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|_| self.err("invalid integer literal"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

/// Conversion into [`Json`] (the workspace's stand-in for
/// `serde::Serialize`).
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion from [`Json`] (the workspace's stand-in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Decodes a value, with a descriptive error on shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Json, JsonError> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_via_from {
    ($($t:ty => $as:ident / $want:literal),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::from(self.clone())
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<$t, JsonError> {
                v.$as()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| JsonError::decode(concat!("expected ", $want)))
            }
        }
    )*};
}

impl_serde_via_from!(i64 => as_i64 / "an integer", u64 => as_u64 / "a non-negative integer",
    u32 => as_u64 / "a u32", usize => as_u64 / "a usize");

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::decode("expected a boolean"))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::decode("expected a number"))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::decode("expected a string"))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::decode("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Decodes one required object member.
pub fn field<T: Deserialize>(v: &Json, key: &str) -> Result<T, JsonError> {
    let member = v
        .get(key)
        .ok_or_else(|| JsonError::decode(format!("missing field `{key}`")))?;
    T::from_json(member).map_err(|e| JsonError::decode(format!("field `{key}`: {}", e.message)))
}

/// Decodes an optional object member (missing and `null` both map to
/// `None`).
pub fn opt_field<T: Deserialize>(v: &Json, key: &str) -> Result<Option<T>, JsonError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(member) => T::from_json(member)
            .map(Some)
            .map_err(|e| JsonError::decode(format!("field `{key}`: {}", e.message))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-42", "3.5", "\"hi\"", "\"\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
        assert_eq!(Json::parse("17").unwrap(), Json::Int(17));
        assert_eq!(Json::parse("17.0").unwrap(), Json::Float(17.0));
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"op":"disclose","user":"alice","time":2005,"query":"hiv_pos -> transfusions","state":3,"tags":[1,2.5,null,{"x":true}]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("user").and_then(Json::as_str), Some("alice"));
        assert_eq!(v.get("time").and_then(Json::as_u64), Some(2005));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
    }

    #[test]
    fn string_escapes() {
        let s = "line\nquote\"back\\slash\ttab\u{1}unicode é Ω";
        let v = Json::Str(s.to_owned());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn parse_errors_have_offsets() {
        for bad in [
            "",
            "tru",
            "{",
            "{\"a\":}",
            "[1,]",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad}");
        }
    }

    #[test]
    fn field_helpers() {
        let v = Json::parse(r#"{"n":3,"s":"x"}"#).unwrap();
        assert_eq!(field::<u64>(&v, "n").unwrap(), 3);
        assert_eq!(field::<String>(&v, "s").unwrap(), "x");
        assert!(field::<u64>(&v, "missing").is_err());
        assert_eq!(opt_field::<u64>(&v, "missing").unwrap(), None);
        assert_eq!(opt_field::<u64>(&v, "n").unwrap(), Some(3));
        assert!(field::<String>(&v, "n").is_err());
    }

    #[test]
    fn deterministic_rendering() {
        let a = Json::obj([("b", Json::from(1i64)), ("a", Json::from(2i64))]);
        let b = Json::obj([("b", Json::from(1i64)), ("a", Json::from(2i64))]);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn float_int_distinction_survives() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Int(2).render(), "2");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn vec_and_option_serde() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let j = xs.to_json();
        assert_eq!(Vec::<u64>::from_json(&j).unwrap(), xs);
        let none: Option<String> = None;
        assert_eq!(none.to_json(), Json::Null);
        assert_eq!(Option::<String>::from_json(&Json::Null).unwrap(), None);
    }
}
