//! Matrix decompositions: Cholesky, LDLᵀ, Gaussian-elimination solve, and
//! the cyclic Jacobi symmetric eigendecomposition.
//!
//! These are the numerical kernels of the projection-based SDP solver in
//! `epi-sdp`: the eigendecomposition drives the projection onto the PSD
//! cone, Cholesky certifies positive semidefiniteness of SOS Gram matrices,
//! and the linear solver projects onto affine constraint subspaces.

use crate::matrix::Matrix;

/// Error from a decomposition routine.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Cholesky hit a non-positive pivot: the matrix is not positive
    /// definite (within tolerance).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// Gaussian elimination hit a (numerically) singular pivot.
    Singular {
        /// Index of the failing pivot column.
        pivot: usize,
    },
    /// The Jacobi sweep did not converge within the iteration budget.
    NoConvergence {
        /// Off-diagonal norm at give-up time.
        off_diagonal: f64,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix not positive definite: pivot {pivot} = {value}")
            }
            LinalgError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            LinalgError::NoConvergence { off_diagonal } => {
                write!(
                    f,
                    "Jacobi eigensolver did not converge (off-diag {off_diagonal})"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix; returns the lower-triangular `L`.
///
/// `A` must be symmetric (only the lower triangle is read). Fails with
/// [`LinalgError::NotPositiveDefinite`] when a pivot drops below
/// `tol` (use a small positive `tol` to accept semidefinite matrices with a
/// ridge added by the caller).
pub fn cholesky(a: &Matrix, tol: f64) -> Result<Matrix, LinalgError> {
    assert!(a.is_square(), "Cholesky requires a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= tol {
            return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / dj;
        }
    }
    Ok(l)
}

/// `true` iff the symmetric matrix is positive semidefinite within `tol`,
/// decided by attempting Cholesky on `A + tol·I`.
pub fn is_psd(a: &Matrix, tol: f64) -> bool {
    let n = a.rows();
    let ridged = Matrix::from_fn(n, n, |i, j| a[(i, j)] + if i == j { tol } else { 0.0 });
    cholesky(&ridged, 0.0).is_ok()
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    assert!(a.is_square(), "solve requires a square matrix");
    let n = a.rows();
    assert_eq!(b.len(), n, "right-hand side length mismatch");
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return Err(LinalgError::Singular { pivot: col });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[(col, col)];
        for r in (col + 1)..n {
            let factor = m[(r, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(r, j)] -= factor * v;
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in (i + 1)..n {
            s -= m[(i, j)] * x[j];
        }
        x[i] = s / m[(i, i)];
    }
    Ok(x)
}

/// The symmetric eigendecomposition `A = Q·Λ·Qᵀ`.
#[derive(Clone, Debug)]
pub struct SymEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as the *columns* of `Q`, ordered to match.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Robust and simple; `O(n³)` per sweep with typically 6–12 sweeps. The
/// input is symmetrized first (asymmetries below `1e-9` are tolerated,
/// larger ones panic — feeding a genuinely asymmetric matrix here is a
/// logic error upstream).
pub fn sym_eigen(a: &Matrix) -> Result<SymEigen, LinalgError> {
    assert!(a.is_square(), "eigendecomposition requires a square matrix");
    assert!(
        a.asymmetry() < 1e-9,
        "sym_eigen requires a symmetric matrix (asymmetry {})",
        a.asymmetry()
    );
    let n = a.rows();
    let mut m = a.clone();
    m.symmetrize();
    let mut q = Matrix::identity(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + m.frobenius_norm()) {
            return Ok(collect_eigen(m, q));
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apr = m[(p, r)];
                if apr.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let arr = m[(r, r)];
                // Classical Jacobi rotation angle.
                let theta = 0.5 * (arr - app) / apr;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation J(p, r, θ): M ← JᵀMJ, Q ← QJ.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkr = m[(k, r)];
                    m[(k, p)] = c * mkp - s * mkr;
                    m[(k, r)] = s * mkp + c * mkr;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mrk = m[(r, k)];
                    m[(p, k)] = c * mpk - s * mrk;
                    m[(r, k)] = s * mpk + c * mrk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkr = q[(k, r)];
                    q[(k, p)] = c * qkp - s * qkr;
                    q[(k, r)] = s * qkp + c * qkr;
                }
            }
        }
    }
    let mut off = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            off += m[(i, j)] * m[(i, j)];
        }
    }
    Err(LinalgError::NoConvergence {
        off_diagonal: off.sqrt(),
    })
}

fn collect_eigen(m: Matrix, q: Matrix) -> SymEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| q[(i, order[j])]);
    SymEigen { values, vectors }
}

/// Projects a symmetric matrix onto the PSD cone (Frobenius-nearest):
/// eigendecompose and clamp negative eigenvalues to zero.
pub fn project_psd(a: &Matrix) -> Result<Matrix, LinalgError> {
    let eig = sym_eigen(a)?;
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for (k, &lambda) in eig.values.iter().enumerate() {
        if lambda <= 0.0 {
            continue;
        }
        for i in 0..n {
            let vik = eig.vectors[(i, k)];
            if vik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[(i, j)] += lambda * vik * eig.vectors[(j, k)];
            }
        }
    }
    out.symmetrize();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_sym(n: usize, rng: &mut impl Rng) -> Matrix {
        let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        m.symmetrize();
        m
    }

    fn random_psd(n: usize, rng: &mut impl Rng) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        &b * &b.transpose()
    }

    #[test]
    fn cholesky_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(139);
        for _ in 0..20 {
            let a = {
                // PSD + ridge to make it definite.
                let p = random_psd(5, &mut rng);
                &p + &Matrix::identity(5).scale(0.5)
            };
            let l = cholesky(&a, 0.0).expect("positive definite");
            let rebuilt = &l * &l.transpose();
            assert!((&rebuilt - &a).frobenius_norm() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, −1
        assert!(matches!(
            cholesky(&a, 0.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(!is_psd(&a, 1e-9));
        assert!(is_psd(&Matrix::identity(3), 0.0));
        // Semidefinite accepted with tolerance.
        let semi = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(is_psd(&semi, 1e-9));
    }

    #[test]
    fn solve_linear_systems() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(149);
        for _ in 0..20 {
            let a = {
                let m = random_sym(6, &mut rng);
                &m + &Matrix::identity(6).scale(3.0) // well-conditioned
            };
            let x_true: Vec<f64> = (0..6).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.mul_vec(&x_true);
            let x = solve(&a, &b).unwrap();
            let err: f64 = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "solve error {err}");
        }
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn eigen_reconstruction_and_orthogonality() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(151);
        for _ in 0..10 {
            let a = random_sym(6, &mut rng);
            let eig = sym_eigen(&a).unwrap();
            // Q·Λ·Qᵀ = A
            let lambda = Matrix::diagonal(&eig.values);
            let rebuilt = &(&eig.vectors * &lambda) * &eig.vectors.transpose();
            assert!((&rebuilt - &a).frobenius_norm() < 1e-9);
            // QᵀQ = I
            let qtq = &eig.vectors.transpose() * &eig.vectors;
            assert!((&qtq - &Matrix::identity(6)).frobenius_norm() < 1e-9);
            // Ascending order.
            for w in eig.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigen_known_values() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = sym_eigen(&a).unwrap();
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn psd_projection_properties() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(157);
        for _ in 0..10 {
            let a = random_sym(5, &mut rng);
            let p = project_psd(&a).unwrap();
            assert!(is_psd(&p, 1e-9), "projection must be PSD");
            // Projection is idempotent.
            let pp = project_psd(&p).unwrap();
            assert!((&pp - &p).frobenius_norm() < 1e-9);
            // Already-PSD matrices are fixed points.
            let q = random_psd(5, &mut rng);
            let pq = project_psd(&q).unwrap();
            assert!((&pq - &q).frobenius_norm() < 1e-9);
        }
    }

    #[test]
    fn psd_projection_is_frobenius_nearest() {
        // For a diagonal matrix, the projection clamps negatives; any other
        // PSD matrix is farther in Frobenius norm.
        let a = Matrix::diagonal(&[2.0, -3.0]);
        let p = project_psd(&a).unwrap();
        assert!((&p - &Matrix::diagonal(&[2.0, 0.0])).frobenius_norm() < 1e-12);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "symmetric")]
    fn eigen_rejects_asymmetric_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let _ = sym_eigen(&a);
    }

    #[test]
    fn eigen_handles_repeated_eigenvalues() {
        // The identity: every direction is an eigenvector; the decomposition
        // must still reconstruct and stay orthonormal.
        let eig = sym_eigen(&Matrix::identity(6).scale(3.0)).unwrap();
        assert!(eig.values.iter().all(|&v| (v - 3.0).abs() < 1e-12));
        let qtq = &eig.vectors.transpose() * &eig.vectors;
        assert!((&qtq - &Matrix::identity(6)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn eigen_rank_deficient() {
        // Rank-1 outer product: one positive eigenvalue, rest ~0.
        let v = [1.0, 2.0, -1.0, 0.5];
        let a = Matrix::from_fn(4, 4, |i, j| v[i] * v[j]);
        let eig = sym_eigen(&a).unwrap();
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        assert!((eig.values[3] - norm2).abs() < 1e-10);
        for &l in &eig.values[..3] {
            assert!(l.abs() < 1e-10);
        }
    }

    #[test]
    fn larger_random_eigen_reconstruction() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let n = 24;
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        a.symmetrize();
        let eig = sym_eigen(&a).unwrap();
        let rebuilt = &(&eig.vectors * &Matrix::diagonal(&eig.values)) * &eig.vectors.transpose();
        assert!((&rebuilt - &a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn cholesky_solve_consistency() {
        // x from solve() satisfies L·Lᵀ·x = b for the Cholesky factor.
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        let b_mat = Matrix::from_fn(5, 5, |_, _| rng.gen_range(-1.0..1.0));
        let a = &(&b_mat * &b_mat.transpose()) + &Matrix::identity(5).scale(0.1);
        let rhs: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = solve(&a, &rhs).unwrap();
        let l = cholesky(&a, 0.0).unwrap();
        let llt_x = (&l * &l.transpose()).mul_vec(&x);
        for (got, want) in llt_x.iter().zip(&rhs) {
            assert!((got - want).abs() < 1e-9);
        }
    }
}
