//! # epi-linalg
//!
//! Dense linear algebra substrate for the `epistemic-privacy` workspace —
//! the numerical kernels under the SDP solver (`epi-sdp`) and the
//! sum-of-squares pipeline (`epi-sos`): matrices, Cholesky and LDL-style
//! factorizations, Gaussian elimination, the cyclic Jacobi symmetric
//! eigendecomposition, and Frobenius-nearest projection onto the positive
//! semidefinite cone.
//!
//! Everything is implemented from scratch on `Vec<f64>` storage; the sizes
//! involved (SOS Gram matrices over monomial bases) stay in the dozens to a
//! few hundreds of rows, where simple `O(n³)` kernels are entirely adequate
//! and easy to audit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decomp;
mod matrix;

pub use decomp::{cholesky, is_psd, project_psd, solve, sym_eigen, LinalgError, SymEigen};
pub use matrix::Matrix;
