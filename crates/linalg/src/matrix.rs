//! Dense row-major matrices over `f64`.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use epi_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(&a * &b, a);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// The `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// A diagonal matrix from its diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Matrix {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum absolute asymmetry `max |Aᵢⱼ − Aⱼᵢ|`.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square());
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Frobenius inner product `⟨A, B⟩ = Σ AᵢⱼBᵢⱼ`.
    pub fn frobenius_dot(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_dot(self).sqrt()
    }

    /// Trace.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order for cache-friendly access of rhs rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert!(!m.is_square());
        let d = Matrix::diagonal(&[1.0, 2.0]);
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let sum = &a + &b;
        assert_eq!(sum[(1, 1)], 12.0);
        let diff = &b - &a;
        assert_eq!(diff[(0, 0)], 4.0);
        let prod = &a * &b;
        assert_eq!(prod, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        assert_eq!(a.scale(2.0)[(1, 0)], 6.0);
    }

    #[test]
    fn transpose_and_symmetry() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.transpose()[(0, 1)], 3.0);
        assert!(a.asymmetry() > 0.0);
        let mut s = a.clone();
        s.symmetrize();
        assert_eq!(s.asymmetry(), 0.0);
        assert_eq!(s[(0, 1)], 2.5);
    }

    #[test]
    fn vector_products_and_norms() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(a.trace(), 5.0);
        assert_eq!(a.frobenius_dot(&a), 30.0);
        assert!((a.frobenius_norm() - 30.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(&a * &Matrix::identity(2), a);
        assert_eq!(&Matrix::identity(2) * &a, a);
    }
}
