//! Closed `f64` intervals with outward-rounded arithmetic.
//!
//! The branch-and-bound decision procedure for product distributions
//! (`epi-solver::product`) needs *rigorous* range bounds of polynomials over
//! boxes `[lo, hi]ⁿ ⊆ [0,1]ⁿ`: if the interval evaluation of the safety
//! polynomial over a box is ≤ 0, the box contains no counterexample to
//! privacy and can be discarded. Plain `f64` arithmetic could round a
//! positive supremum down to a non-positive one; here every upper endpoint is
//! rounded up and every lower endpoint down by one ulp-scale step
//! ([`Interval::widen`]), which is sound (if slightly conservative) without
//! requiring access to the FPU rounding mode.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` of `f64`s with `lo ≤ hi`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// Next representable `f64` above `x` (toward `+∞`).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

/// Next representable `f64` below `x` (toward `-∞`).
fn next_down(x: f64) -> f64 {
    -next_up(-x)
}

impl Interval {
    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };
    /// The degenerate interval `[1, 1]`.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };
    /// The unit interval `[0, 1]`.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };

    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Interval {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "Interval bounds must not be NaN"
        );
        assert!(lo <= hi, "Interval requires lo <= hi, got [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Interval {
        Interval::new(x, x)
    }

    /// Lower endpoint.
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// `hi - lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint `(lo + hi) / 2`, clamped into the interval.
    pub fn midpoint(self) -> f64 {
        let m = self.lo + 0.5 * (self.hi - self.lo);
        m.clamp(self.lo, self.hi)
    }

    /// `true` iff `x ∈ [lo, hi]`.
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `true` iff `other ⊆ self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Smallest interval containing both inputs.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Widens both endpoints outward by one representable step; the sound
    /// post-processing applied after every arithmetic operation.
    pub fn widen(self) -> Interval {
        Interval {
            lo: next_down(self.lo),
            hi: next_up(self.hi),
        }
    }

    /// Splits at the midpoint into `(left, right)` halves.
    pub fn split(self) -> (Interval, Interval) {
        let m = self.midpoint();
        (Interval::new(self.lo, m), Interval::new(m, self.hi))
    }

    /// Interval power for non-negative integer exponents, sharp on monotone
    /// pieces (handles even powers straddling zero).
    pub fn powi(self, exp: u32) -> Interval {
        if exp == 0 {
            return Interval::ONE;
        }
        let a = self.lo.powi(exp as i32);
        let b = self.hi.powi(exp as i32);
        let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
        if exp.is_multiple_of(2) && self.contains(0.0) {
            lo = 0.0;
        }
        let _ = &mut hi;
        Interval { lo, hi }.widen()
    }

    /// `max(0, hi)` — a quick upper bound on the positive part.
    pub fn positive_part_hi(self) -> f64 {
        self.hi.max(0.0)
    }

    /// `true` iff every point of the interval is ≤ `bound`.
    pub fn all_le(self, bound: f64) -> bool {
        self.hi <= bound
    }

    /// `true` iff every point of the interval is ≥ `bound`.
    pub fn all_ge(self, bound: f64) -> bool {
        self.lo >= bound
    }
}

impl From<f64> for Interval {
    fn from(x: f64) -> Self {
        Interval::point(x)
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
        .widen()
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
        .widen()
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in candidates {
            // 0 * inf = NaN cannot arise: endpoints are finite by
            // construction, but guard anyway.
            if c.is_nan() {
                continue;
            }
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Interval { lo, hi }.widen()
    }
}

impl Div for Interval {
    type Output = Interval;
    /// Interval division.
    ///
    /// # Panics
    ///
    /// Panics when the divisor contains zero.
    fn div(self, rhs: Interval) -> Interval {
        assert!(
            !rhs.contains(0.0),
            "Interval division by an interval containing zero"
        );
        self * Interval {
            lo: 1.0 / rhs.hi,
            hi: 1.0 / rhs.lo,
        }
        .widen()
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;
    fn mul(self, rhs: f64) -> Interval {
        self * Interval::point(rhs)
    }
}

impl Add<f64> for Interval {
    type Output = Interval;
    fn add(self, rhs: f64) -> Interval {
        self + Interval::point(rhs)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_accessors() {
        let i = Interval::new(-1.0, 2.0);
        assert_eq!(i.lo(), -1.0);
        assert_eq!(i.hi(), 2.0);
        assert_eq!(i.width(), 3.0);
        assert!(i.contains(0.0));
        assert!(!i.contains(2.5));
        assert_eq!(Interval::point(3.0).width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_bounds_panic() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn arithmetic_encloses_pointwise() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-3.0, 0.5);
        let sum = a + b;
        assert!(sum.contains(1.0 + -3.0));
        assert!(sum.contains(2.0 + 0.5));
        let prod = a * b;
        assert!(prod.contains(1.0 * -3.0));
        assert!(prod.contains(2.0 * 0.5));
        let diff = a - b;
        assert!(diff.contains(1.0 - 0.5));
        assert!(diff.contains(2.0 - -3.0));
    }

    #[test]
    fn division() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(2.0, 4.0);
        let q = a / b;
        assert!(q.contains(0.25));
        assert!(q.contains(1.0));
    }

    #[test]
    #[should_panic(expected = "containing zero")]
    fn division_by_zero_interval_panics() {
        let _ = Interval::new(1.0, 2.0) / Interval::new(-1.0, 1.0);
    }

    #[test]
    fn powers() {
        let i = Interval::new(-2.0, 3.0);
        let sq = i.powi(2);
        assert!(sq.lo() <= 0.0 && sq.contains(9.0) && sq.contains(4.0));
        let cube = i.powi(3);
        assert!(cube.contains(-8.0) && cube.contains(27.0));
        assert_eq!(i.powi(0), Interval::ONE);
    }

    #[test]
    fn hull_and_intersect() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(0.5, 2.0);
        assert_eq!(a.hull(b), Interval::new(0.0, 2.0));
        assert_eq!(a.intersect(b), Some(Interval::new(0.5, 1.0)));
        assert_eq!(a.intersect(Interval::new(3.0, 4.0)), None);
    }

    #[test]
    fn split_covers() {
        let i = Interval::new(0.0, 1.0);
        let (l, r) = i.split();
        assert_eq!(l.hi(), r.lo());
        assert_eq!(l.lo(), 0.0);
        assert_eq!(r.hi(), 1.0);
    }

    #[test]
    fn next_up_down() {
        assert!(super::next_up(1.0) > 1.0);
        assert!(super::next_down(1.0) < 1.0);
        assert!(super::next_up(0.0) > 0.0);
        assert!(super::next_down(0.0) < 0.0);
        assert!(super::next_up(-1.0) > -1.0);
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, w)| Interval::new(lo, lo + w))
    }

    proptest! {
        #[test]
        fn prop_mul_soundness(a in arb_interval(), b in arb_interval(),
                              ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
            let x = a.lo() + ta * a.width();
            let y = b.lo() + tb * b.width();
            prop_assert!((a * b).contains(x * y));
        }

        #[test]
        fn prop_add_soundness(a in arb_interval(), b in arb_interval(),
                              ta in 0.0f64..1.0, tb in 0.0f64..1.0) {
            let x = a.lo() + ta * a.width();
            let y = b.lo() + tb * b.width();
            prop_assert!((a + b).contains(x + y));
            prop_assert!((a - b).contains(x - y));
        }

        #[test]
        fn prop_pow_soundness(a in arb_interval(), t in 0.0f64..1.0, e in 0u32..5) {
            let x = a.lo() + t * a.width();
            prop_assert!(a.powi(e).contains(x.powi(e as i32)));
        }

        #[test]
        fn prop_hull_contains_both(a in arb_interval(), b in arb_interval()) {
            let h = a.hull(b);
            prop_assert!(h.contains_interval(a));
            prop_assert!(h.contains_interval(b));
        }
    }
}
