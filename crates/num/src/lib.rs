//! # epi-num
//!
//! Numeric substrate for the `epistemic-privacy` workspace.
//!
//! Two number types are provided:
//!
//! * [`Rational`] — an exact rational number over checked `i128` arithmetic.
//!   Used wherever the library must reason *exactly*: the combinatorial
//!   privacy criteria of Section 5 of the paper, polynomial identity checks,
//!   and the cancellation criterion's monomial bookkeeping. All arithmetic is
//!   overflow-checked; the panicking operator impls report the operation that
//!   overflowed, and `checked_*` variants are available when the caller wants
//!   to recover.
//! * [`Interval`] — a closed `f64` interval with outward-rounded arithmetic,
//!   used by the branch-and-bound solver in `epi-solver` to obtain rigorous
//!   range bounds of multilinear polynomials over boxes.
//!
//! Both types are deliberately small and dependency-free so that every crate
//! in the workspace can use them without pulling in a bignum stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod rational;
mod wire;

pub use interval::Interval;
pub use rational::{ParseRationalError, Rational};
