//! Exact rational arithmetic over checked `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
///
/// The representation is always canonical, so `==` is structural equality and
/// hashing is consistent with `==`. Arithmetic is overflow-checked on the
/// underlying `i128`s; the operator impls panic with a descriptive message on
/// overflow (which, for the workloads in this workspace — counting monomials
/// of indicator polynomials over `{0,1}ⁿ` with `n ≤ 25` — cannot occur in
/// practice), while the `checked_*` methods let callers recover.
///
/// # Examples
///
/// ```
/// use epi_num::Rational;
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert_eq!((a - b) * Rational::from(6), Rational::from(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative `i128`s (binary GCD).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational `num / den`, reducing to canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        Self::checked_new(num, den).expect("Rational::new: zero denominator or overflow")
    }

    /// Creates `num / den` in canonical form, or `None` if `den == 0` or the
    /// sign normalization overflows (only possible for `i128::MIN`).
    pub fn checked_new(num: i128, den: i128) -> Option<Rational> {
        if den == 0 {
            return None;
        }
        let (mut num, mut den) = (num, den);
        if den < 0 {
            num = num.checked_neg()?;
            den = den.checked_neg()?;
        }
        let g = gcd(num.unsigned_abs().try_into().ok()?, den);
        if g > 1 {
            num /= g;
            den /= g;
        }
        Some(Rational { num, den })
    }

    /// The numerator of the canonical form (carries the sign).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The (strictly positive) denominator of the canonical form.
    pub fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff this rational is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff this rational is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff this rational is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// `true` iff the denominator is 1.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// The sign of the rational: `-1`, `0` or `1`.
    pub fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse, or `None` when zero.
    pub fn recip(self) -> Option<Rational> {
        if self.num == 0 {
            None
        } else if self.num < 0 {
            Some(Rational {
                num: -self.den,
                den: -self.num,
            })
        } else {
            Some(Rational {
                num: self.den,
                den: self.num,
            })
        }
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let l = self.den.checked_mul(lhs_scale)?;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        Self::checked_new(num, l)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// Checked negation.
    pub fn checked_neg(self) -> Option<Rational> {
        Some(Rational {
            num: self.num.checked_neg()?,
            den: self.den,
        })
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num.unsigned_abs().try_into().ok()?, rhs.den);
        let g2 = gcd(rhs.num.unsigned_abs().try_into().ok()?, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational { num, den })
    }

    /// Checked division; `None` on overflow or division by zero.
    pub fn checked_div(self, rhs: Rational) -> Option<Rational> {
        self.checked_mul(rhs.recip()?)
    }

    /// Raises to a non-negative integer power by repeated squaring.
    pub fn checked_pow(self, mut exp: u32) -> Option<Rational> {
        let mut base = self;
        let mut acc = Rational::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.checked_mul(base)?;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.checked_mul(base)?;
            }
        }
        Some(acc)
    }

    /// Nearest `f64` approximation.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact conversion from an `f64` whose value is a dyadic rational small
    /// enough to fit; `None` for NaN, infinities, or out-of-range values.
    pub fn from_f64_exact(x: f64) -> Option<Rational> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Rational::ZERO);
        }
        // Decompose x = m · 2^e with m an odd integer.
        let bits = x.abs().to_bits();
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mut mantissa, mut exp) = if exp_bits == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let tz = mantissa.trailing_zeros() as i64;
        mantissa >>= tz;
        exp += tz;
        let sign = if x < 0.0 { -1i128 } else { 1i128 };
        let m = i128::from(mantissa).checked_mul(sign)?;
        if exp >= 0 {
            if exp >= 127 {
                return None;
            }
            Some(Rational::new(
                m.checked_mul(1i128.checked_shl(exp as u32)?)?,
                1,
            ))
        } else {
            let shift = (-exp) as u32;
            if shift >= 127 {
                return None;
            }
            Some(Rational::new(m, 1i128 << shift))
        }
    }

    /// Rounds down to the nearest integer.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Rounds up to the nearest integer.
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from(i128::from(n))
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from(i128::from(n))
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::from(i128::from(n))
    }
}

macro_rules! forward_op {
    ($trait:ident, $method:ident, $checked:ident, $msg:literal) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(rhs).expect($msg)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(*rhs).expect($msg)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (*self).$checked(rhs).expect($msg)
            }
        }
        impl $trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (*self).$checked(*rhs).expect($msg)
            }
        }
    };
}

forward_op!(Add, add, checked_add, "Rational addition overflowed i128");
forward_op!(
    Sub,
    sub,
    checked_sub,
    "Rational subtraction overflowed i128"
);
forward_op!(
    Mul,
    mul,
    checked_mul,
    "Rational multiplication overflowed i128"
);
forward_op!(
    Div,
    div,
    checked_div,
    "Rational division by zero or overflow"
);

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg().expect("Rational negation overflowed")
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -*self
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

impl Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ONE, |a, b| a * b)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  ⟺  a·d ? c·b (denominators positive). Compare via
        // i128 when safe; fall back to wide arithmetic via f64-free path by
        // cross-reduction otherwise.
        let g1 = gcd(self.den, other.den);
        let lhs = self.num.checked_mul(other.den / g1);
        let rhs = other.num.checked_mul(self.den / g1);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            // Extremely unlikely for our magnitudes; resolve via subtraction
            // of continued-fraction style reduction.
            _ => compare_wide(*self, *other),
        }
    }
}

/// Slow-path comparison that never overflows: compares integer parts, then
/// recurses on the reciprocals of the fractional parts (Stern–Brocot style).
fn compare_wide(a: Rational, b: Rational) -> Ordering {
    let (fa, fb) = (a.floor(), b.floor());
    if fa != fb {
        return fa.cmp(&fb);
    }
    let ra = a - Rational::from(fa);
    let rb = b - Rational::from(fb);
    match (ra.is_zero(), rb.is_zero()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => {
            // ra, rb ∈ (0,1): a < b ⟺ 1/ra > 1/rb.
            compare_wide(rb.recip().unwrap(), ra.recip().unwrap())
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned by `Rational::from_str`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"`, `"n/d"`, or a plain decimal such as `"0.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseRationalError(s.to_owned());
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| bad())?;
            let d: i128 = d.trim().parse().map_err(|_| bad())?;
            Rational::checked_new(n, d).ok_or_else(bad)
        } else if let Some((int, frac)) = s.split_once('.') {
            let negative = int.trim_start().starts_with('-');
            let int: i128 = if int.trim() == "-" {
                0
            } else {
                int.trim().parse().map_err(|_| bad())?
            };
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let scale = 10i128.checked_pow(frac.len() as u32).ok_or_else(bad)?;
            let frac_num: i128 = frac.parse().map_err(|_| bad())?;
            let signed_frac = if negative { -frac_num } else { frac_num };
            let num = int
                .checked_mul(scale)
                .and_then(|v| v.checked_add(signed_frac));
            Rational::checked_new(num.ok_or_else(bad)?, scale).ok_or_else(bad)
        } else {
            let n: i128 = s.trim().parse().map_err(|_| bad())?;
            Ok(Rational::from(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(1, 2).denom(), 2);
        assert_eq!(Rational::new(-3, 6).numer(), -1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(Rational::checked_new(1, 0).is_none());
    }

    #[test]
    fn basic_arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(
            Rational::new(2, 3).checked_pow(3).unwrap(),
            Rational::new(8, 27)
        );
        assert_eq!(Rational::new(2, 3).checked_pow(0).unwrap(), Rational::ONE);
        assert_eq!(Rational::new(-2, 5).recip().unwrap(), Rational::new(-5, 2));
        assert!(Rational::ZERO.recip().is_none());
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(7, 7) == Rational::ONE);
        let big = Rational::new(i128::MAX / 2, 3);
        let bigger = Rational::new(i128::MAX / 2, 2);
        assert!(big < bigger);
    }

    #[test]
    fn wide_comparison_does_not_overflow() {
        // Numerator·denominator products overflow i128, forcing the
        // Stern–Brocot slow path.
        let a = Rational::new(i128::MAX / 3, i128::MAX / 5);
        let b = Rational::new(i128::MAX / 4, i128::MAX / 7);
        // a ≈ 5/3 ≈ 1.667, b ≈ 7/4 = 1.75
        assert!(a < b);
        assert_eq!(compare_wide(a, a), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from(5).floor(), 5);
        assert_eq!(Rational::from(5).ceil(), 5);
    }

    #[test]
    fn f64_roundtrip() {
        for x in [0.0, 0.5, -0.25, 3.0, -1024.125, 1.0 / 1048576.0] {
            let r = Rational::from_f64_exact(x).unwrap();
            assert_eq!(r.to_f64(), x, "roundtrip failed for {x}");
        }
        assert!(Rational::from_f64_exact(f64::NAN).is_none());
        assert!(Rational::from_f64_exact(f64::INFINITY).is_none());
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("0.25".parse::<Rational>().unwrap(), Rational::new(1, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), Rational::new(-1, 2));
        assert_eq!("42".parse::<Rational>().unwrap(), Rational::from(42));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
        assert!("1.x".parse::<Rational>().is_err());
    }

    #[test]
    fn sum_product_iterators() {
        let xs = [
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(1, 6),
        ];
        assert_eq!(xs.iter().copied().sum::<Rational>(), Rational::ONE);
        assert_eq!(
            xs.iter().copied().product::<Rational>(),
            Rational::new(1, 36)
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(Rational::new(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from(-2).to_string(), "-2");
    }

    fn arb_rational() -> impl Strategy<Value = Rational> {
        (-10_000i128..10_000, 1i128..10_000).prop_map(|(n, d)| Rational::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_mul_commutative(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_add_associative(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_distributive(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_inverse(a in arb_rational(), b in arb_rational()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn prop_div_inverse(a in arb_rational(), b in arb_rational()) {
            prop_assume!(!b.is_zero());
            prop_assert_eq!(a * b / b, a);
        }

        #[test]
        fn prop_ordering_consistent_with_f64(a in arb_rational(), b in arb_rational()) {
            // f64 has enough precision for these small rationals.
            let fa = a.to_f64();
            let fb = b.to_f64();
            if (fa - fb).abs() > 1e-9 {
                prop_assert_eq!(a < b, fa < fb);
            }
        }

        #[test]
        fn prop_canonical(a in arb_rational()) {
            prop_assert!(a.denom() > 0);
            let g = super::gcd(a.numer().unsigned_abs() as i128, a.denom());
            prop_assert!(a.numer() == 0 || g == 1);
        }

        #[test]
        fn prop_floor_ceil_bracket(a in arb_rational()) {
            let f = Rational::from(a.floor());
            let c = Rational::from(a.ceil());
            prop_assert!(f <= a && a <= c);
            prop_assert!(c - f <= Rational::ONE);
        }
    }
}
