//! JSON wire format for exact rationals.
//!
//! Numerator and denominator are rendered as **strings**, not JSON
//! numbers: they are `i128` and JSON numbers only carry 53 bits of
//! integer precision portably.

use crate::Rational;
use epi_json::{field, Deserialize, Json, JsonError, Serialize};

impl Serialize for Rational {
    fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::Str(self.numer().to_string())),
            ("d", Json::Str(self.denom().to_string())),
        ])
    }
}

impl Deserialize for Rational {
    fn from_json(v: &Json) -> Result<Rational, JsonError> {
        let n: String = field(v, "n")?;
        let d: String = field(v, "d")?;
        let n: i128 = n
            .parse()
            .map_err(|_| JsonError::decode("rational numerator is not an i128"))?;
        let d: i128 = d
            .parse()
            .map_err(|_| JsonError::decode("rational denominator is not an i128"))?;
        if d == 0 {
            return Err(JsonError::decode("rational denominator is zero"));
        }
        Ok(Rational::new(n, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_roundtrips_exactly() {
        for (n, d) in [(0, 1), (1, 3), (-7, 2), (i128::MAX / 2, 3), (5, -10)] {
            let r = Rational::new(n, d);
            let back = Rational::from_json(&Json::parse(&r.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn rational_decode_rejects_bad_shapes() {
        assert!(Rational::from_json(&Json::parse(r#"{"n":"1"}"#).unwrap()).is_err());
        assert!(Rational::from_json(&Json::parse(r#"{"n":"x","d":"1"}"#).unwrap()).is_err());
        assert!(Rational::from_json(&Json::parse(r#"{"n":"1","d":"0"}"#).unwrap()).is_err());
    }
}
