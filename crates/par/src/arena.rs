//! Reusable buffer arenas for allocation-free hot loops.
//!
//! The branch-and-bound solver touches two kinds of temporary storage on
//! every box it evaluates: big `3ⁿ` coefficient tensors and `n`-length
//! point/box vectors. Allocating them per box dominates the hot path at
//! small arities and shreds the allocator at large ones. This module
//! provides the two recycling shapes the workspace needs:
//!
//! * [`BufferPool`] — a process-wide shelf of buffers that *cross
//!   threads*: a worker checks a buffer out, fills it (a child box's
//!   tensor), and the commit thread checks it back in when the box is
//!   pruned. Lock-per-transfer, but the critical section is a `Vec`
//!   push/pop.
//! * [`take_scratch_f64`] / [`give_scratch_f64`] — thread-local scratch
//!   for temporaries that never escape the evaluating worker (midpoint
//!   contraction, corner coordinates). No locking at all.
//!
//! Both record checkout/miss counters and a high-water byte mark into
//! [`crate::stats`], surfaced through the service's Prometheus
//! exposition. The module also hosts the **heap-allocation gauge**: a
//! pair of counters a counting `GlobalAlloc` shim (epi-bench installs
//! one) bumps on every allocation, so benchmarks can report
//! allocations/box and debug builds can assert the steady-state search
//! really does stay off the heap.

use crate::stats;
use std::cell::RefCell;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Cap on bytes parked in any one [`BufferPool`]; beyond it, checked-in
/// buffers are simply dropped. Sized so a full E14 frontier of `3⁹`
/// tensors recycles without ever hitting it — a dropped checkin is not
/// just a future malloc but a round of page faults re-touching tens of
/// kilobytes, which at large arities costs more than the kernel work on
/// the box itself.
const MAX_RESIDENT_BYTES: usize = 1 << 30;

/// Cap on buffers parked per thread-local scratch shelf.
const MAX_SCRATCH_BUFS: usize = 16;

/// A process-wide shelf of reusable `Vec<T>` buffers, safe to check out
/// and in from different threads. Buffers come back empty with their
/// capacity intact; `checkout` hands out the most recently parked one
/// (warmest in cache).
pub struct BufferPool<T> {
    shelf: Mutex<Vec<Vec<T>>>,
    resident_bytes: AtomicU64,
}

impl<T> BufferPool<T> {
    /// An empty pool; usable in `static` position.
    pub const fn new() -> BufferPool<T> {
        BufferPool {
            shelf: Mutex::new(Vec::new()),
            resident_bytes: AtomicU64::new(0),
        }
    }

    /// Check out an empty buffer with capacity ≥ `capacity`, recycling a
    /// parked one when available. Counts a miss (and allocates) when the
    /// shelf is empty or the warmest buffer is too small.
    pub fn checkout(&self, capacity: usize) -> Vec<T> {
        let mut buf = self.checkout_dirty(capacity);
        buf.clear();
        buf
    }

    /// [`checkout`](BufferPool::checkout) without the clear: a buffer
    /// parked via [`checkin_dirty`](BufferPool::checkin_dirty) comes
    /// back with its stale contents and length intact, so a caller that
    /// overwrites every element (`resize` to the same length, then a
    /// full kernel write) pays no zero-fill.
    pub fn checkout_dirty(&self, capacity: usize) -> Vec<T> {
        let popped = self
            .shelf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match popped {
            Some(mut buf) => {
                self.resident_bytes.fetch_sub(
                    (buf.capacity() * mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
                let miss = buf.capacity() < capacity;
                stats::record_arena_checkout(miss);
                if miss {
                    buf.reserve(capacity - buf.len());
                }
                buf
            }
            None => {
                stats::record_arena_checkout(true);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Park a no-longer-needed buffer for reuse. The buffer is cleared;
    /// its capacity is retained unless the pool is already holding
    /// [`MAX_RESIDENT_BYTES`], in which case it is dropped.
    pub fn checkin(&self, mut buf: Vec<T>) {
        buf.clear();
        self.checkin_dirty(buf);
    }

    /// Park a buffer *without* clearing it: contents and length survive
    /// the round trip. When every buffer in a pool has the same shape
    /// (the solver's `3ⁿ` tensors within one solve) this lets the next
    /// user skip the `resize` zero-fill entirely — `Vec::resize` to the
    /// length the buffer already has is a no-op, and on big tensors
    /// that memset is a large fraction of a box's whole evaluation
    /// cost. Only park buffers whose next user overwrites every element
    /// it reads; `checkout` hands stale contents back verbatim.
    pub fn checkin_dirty(&self, buf: Vec<T>) {
        let bytes = buf.capacity() * mem::size_of::<T>();
        if bytes == 0 {
            return;
        }
        let resident = self.resident_bytes.load(Ordering::Relaxed) as usize;
        if resident + bytes > MAX_RESIDENT_BYTES {
            return; // drop: the shelf is full enough
        }
        let new_resident = self
            .resident_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed)
            + bytes as u64;
        stats::record_arena_high_water(new_resident);
        self.shelf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(buf);
    }

    /// Bytes currently parked on the shelf.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes.load(Ordering::Relaxed) as usize
    }

    /// Drop every parked buffer (tests; memory-pressure relief).
    pub fn drain(&self) {
        let mut shelf = self.shelf.lock().unwrap_or_else(PoisonError::into_inner);
        self.resident_bytes.store(0, Ordering::Relaxed);
        shelf.clear();
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        BufferPool::new()
    }
}

thread_local! {
    static SCRATCH_F64: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Take a thread-local `f64` scratch buffer (empty, capacity ≥
/// `capacity`). Pair with [`give_scratch_f64`]; never crosses threads,
/// so there is no lock to take.
pub fn take_scratch_f64(capacity: usize) -> Vec<f64> {
    let popped = SCRATCH_F64.with(|s| s.borrow_mut().pop());
    match popped {
        Some(mut buf) => {
            let miss = buf.capacity() < capacity;
            stats::record_arena_checkout(miss);
            if miss {
                buf.reserve(capacity);
            }
            buf
        }
        None => {
            stats::record_arena_checkout(true);
            Vec::with_capacity(capacity)
        }
    }
}

/// Return a buffer taken with [`take_scratch_f64`] to this thread's
/// shelf (cleared, capacity kept; dropped if the shelf is full).
pub fn give_scratch_f64(mut buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    SCRATCH_F64.with(|s| {
        let mut shelf = s.borrow_mut();
        if shelf.len() < MAX_SCRATCH_BUFS {
            shelf.push(buf);
        }
    });
}

static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

/// Called by a counting `GlobalAlloc` shim on every allocation (and
/// every growing reallocation). Must not allocate: atomics only.
#[inline]
pub fn record_heap_alloc(bytes: usize) {
    HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
    HEAP_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Total heap allocations observed by the counting allocator; stays 0
/// when no counting allocator is installed.
#[inline]
pub fn heap_allocations() -> u64 {
    HEAP_ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested from the heap, as observed by the counting
/// allocator.
#[inline]
pub fn heap_bytes_allocated() -> u64 {
    HEAP_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_recycles_capacity() {
        let pool: BufferPool<f64> = BufferPool::new();
        let mut a = pool.checkout(64);
        a.extend(std::iter::repeat_n(1.0, 64));
        let cap = a.capacity();
        pool.checkin(a);
        assert!(pool.resident_bytes() >= 64 * 8);
        let b = pool.checkout(64);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "the parked buffer came back");
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn checkin_of_empty_buffer_is_a_noop() {
        let pool: BufferPool<u8> = BufferPool::new();
        pool.checkin(Vec::new());
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn drain_empties_the_shelf() {
        let pool: BufferPool<u64> = BufferPool::new();
        pool.checkin(Vec::with_capacity(32));
        assert!(pool.resident_bytes() > 0);
        pool.drain();
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn scratch_round_trips_on_one_thread() {
        let mut a = take_scratch_f64(16);
        a.push(3.0);
        let cap = a.capacity();
        give_scratch_f64(a);
        let b = take_scratch_f64(16);
        assert!(b.is_empty());
        assert!(b.capacity() >= cap.min(16));
        give_scratch_f64(b);
    }

    #[test]
    fn pool_transfers_across_threads() {
        static POOL: BufferPool<f64> = BufferPool::new();
        let mut buf = POOL.checkout(128);
        buf.push(1.0);
        std::thread::spawn(move || POOL.checkin(buf))
            .join()
            .unwrap();
        let back = POOL.checkout(128);
        assert!(back.is_empty());
        assert!(back.capacity() >= 128);
    }
}
