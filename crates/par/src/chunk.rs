//! Frontier chunk-granularity control: when is a wave worth fanning out?
//!
//! Pools in this crate spawn scoped threads *per call*, so a parallel
//! map over a handful of cheap items loses outright — thread spawn and
//! join overhead exceeds the work. E14 measured it: 8 "threads" on a
//! single-core box ran the adversarial matrix at 0.94× sequential. The
//! [`ChunkPolicy`] centralizes the fix: small waves stay sequential, and
//! on machines with no real parallelism *every* wave stays sequential
//! regardless of the configured worker count.

use crate::stats;

/// Environment variable overriding the minimum wave size that fans out.
pub const MIN_WAVE_ENV: &str = "EPI_PAR_MIN_WAVE";

/// Decides, wave by wave, whether a frontier is big enough to justify
/// spawning workers. Resolved once per search from an explicit option,
/// the `EPI_PAR_MIN_WAVE` environment variable, or a machine-derived
/// default — in that order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Waves with fewer items than this run inline on the caller.
    pub min_parallel_items: usize,
}

impl ChunkPolicy {
    /// Resolve the policy. `explicit` (from solver options) wins when
    /// non-zero; then a positive `EPI_PAR_MIN_WAVE`; otherwise the
    /// default: `usize::MAX` (never fan out) when the machine reports a
    /// single core — spawning cannot win there, only lose the E14 way —
    /// and `max(32, 4·threads)` otherwise, enough items to amortize one
    /// round of thread spawns.
    pub fn resolve(explicit: usize, threads: usize) -> ChunkPolicy {
        if explicit > 0 {
            return ChunkPolicy {
                min_parallel_items: explicit,
            };
        }
        if let Ok(raw) = std::env::var(MIN_WAVE_ENV) {
            if let Ok(k) = raw.trim().parse::<usize>() {
                if k >= 1 {
                    return ChunkPolicy {
                        min_parallel_items: k,
                    };
                }
            }
        }
        let machine = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ChunkPolicy {
            min_parallel_items: if machine <= 1 {
                usize::MAX
            } else {
                (4 * threads).max(32)
            },
        }
    }

    /// Whether a wave of `items` should fan out across `threads`
    /// workers. Records the decision in the process-wide wave counters.
    pub fn should_parallelize(&self, items: usize, threads: usize) -> bool {
        let fan_out = threads > 1 && items >= self.min_parallel_items;
        stats::record_wave(fan_out);
        fan_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_threshold_wins() {
        let p = ChunkPolicy::resolve(7, 8);
        assert_eq!(p.min_parallel_items, 7);
        assert!(p.should_parallelize(7, 8));
        assert!(!p.should_parallelize(6, 8));
    }

    #[test]
    fn one_worker_never_fans_out() {
        let p = ChunkPolicy::resolve(1, 1);
        assert!(!p.should_parallelize(usize::MAX, 1));
    }

    #[test]
    fn auto_default_is_conservative_on_a_single_core() {
        let machine = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let p = ChunkPolicy::resolve(0, 8);
        if machine <= 1 && std::env::var(MIN_WAVE_ENV).is_err() {
            assert_eq!(p.min_parallel_items, usize::MAX);
        } else {
            assert!(p.min_parallel_items >= 1);
        }
    }
}
