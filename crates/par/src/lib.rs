//! Std-only parallel execution engine for the epistemic-privacy stack.
//!
//! The decision procedures this workspace runs — branch-and-bound over
//! the unit box (§6.1), batch audits, exhaustive theorem sweeps — are
//! all fan-out-heavy and CPU-bound, but the build environment is
//! offline, so no rayon. This crate provides the three primitives the
//! rest of the workspace needs, over nothing but `std::thread`:
//!
//! * [`Pool::scope`] — a scoped work-stealing task pool: spawn
//!   heterogeneous jobs that may themselves spawn more jobs; per-worker
//!   deques (LIFO for the owner, FIFO for thieves) keep related work
//!   local.
//! * [`Pool::parallel_map`] — order-preserving data parallelism over a
//!   slice, with steal-half range stealing so uneven item costs (easy
//!   vs hard solver instances) don't serialize the tail.
//! * [`BestFirstQueue`] — a blocking priority queue with termination
//!   detection, for best-first branch-and-bound where workers both
//!   consume and produce boxes.
//!
//! Around them, two allocation-discipline helpers: [`BufferPool`] and
//! the thread-local scratch shelf ([`take_scratch_f64`]) recycle the
//! hot-path buffers of the box search, and [`ChunkPolicy`] decides when
//! a frontier wave is big enough to be worth fanning out at all
//! (`EPI_PAR_MIN_WAVE`).
//!
//! Worker counts resolve, in order: an explicit count passed to
//! [`Pool::new`], the `EPI_PAR_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`]. All pools are
//! value-types; threads are scoped (spawned per `scope`/`parallel_map`
//! call and joined before it returns), so there is no global executor
//! to shut down and nested parallelism cannot deadlock — inner calls
//! get their own threads.
//!
//! # Fault tolerance
//!
//! All primitives are hardened for a long-lived daemon:
//!
//! * **Panic isolation** — a panic inside a mapped closure or scoped
//!   task never kills a pool thread silently: peers finish their work,
//!   every internal thread is joined, and the first panic payload is
//!   re-raised on the calling thread.
//! * **Poison recovery** — internal locks recover from poisoning (the
//!   guarded state is always updated atomically under the lock), so one
//!   panicking task cannot wedge subsequent calls.
//! * **Deadlines** — [`Pool::parallel_map_deadline`] and
//!   [`BestFirstQueue::pop_deadline`] stop cooperatively at item
//!   boundaries when a [`Deadline`] expires or its [`CancelToken`]
//!   fires, returning [`StopReason`] instead of hanging.

#![forbid(unsafe_code)]

mod arena;
mod chunk;
mod map;
mod queue;
mod scope;
mod stats;

pub use arena::{
    give_scratch_f64, heap_allocations, heap_bytes_allocated, record_heap_alloc, take_scratch_f64,
    BufferPool,
};
pub use chunk::{ChunkPolicy, MIN_WAVE_ENV};
pub use epi_core::{CancelToken, Deadline, StopReason};
pub use queue::{BestFirstQueue, OrdF64};
pub use scope::Scope;
pub use stats::{record_batch_sweep, record_soa_staged_bytes, stats, StatsSnapshot};

use std::sync::OnceLock;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "EPI_PAR_THREADS";

/// Upper bound on worker counts; guards against absurd overrides.
const MAX_THREADS: usize = 128;

/// Resolve the default worker count: `EPI_PAR_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(k) = raw.trim().parse::<usize>() {
            if k >= 1 {
                return k.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// A worker-count policy. Cheap to copy; owns no threads — each
/// [`Pool::scope`] / [`Pool::parallel_map`] call spawns scoped workers
/// and joins them before returning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count; `0` means "use the
    /// default" (see [`default_threads`]).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads.min(MAX_THREADS)
            },
        }
    }

    /// A single-worker pool: everything runs inline on the caller.
    pub fn sequential() -> Pool {
        Pool { threads: 1 }
    }

    /// The process-wide default pool. The worker count is resolved once
    /// (first call reads `EPI_PAR_THREADS`) and cached.
    pub fn global() -> Pool {
        static THREADS: OnceLock<usize> = OnceLock::new();
        Pool {
            threads: *THREADS.get_or_init(default_threads),
        }
    }

    /// Number of workers this pool uses (always ≥ 1). The caller's
    /// thread counts as one of them.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`] on which tasks can be spawned; returns
    /// once every spawned task (including tasks spawned by tasks) has
    /// finished. The calling thread participates in draining the queue,
    /// so `threads == 1` executes everything inline and in spawn order.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> T) -> T {
        scope::run_scope(self.threads, f)
    }

    /// Map `f` over `items` in parallel, returning outputs in input
    /// order. Falls back to a plain sequential map when the pool has
    /// one worker or the slice is short.
    pub fn parallel_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        map::parallel_map_impl(self.threads, items, &f)
    }

    /// [`Pool::parallel_map`] with a stop condition: workers check the
    /// [`Deadline`] between items and the call returns `Err(reason)` —
    /// discarding partial output — once it expires or its token is
    /// cancelled. An unbounded deadline adds no per-item cost.
    pub fn parallel_map_deadline<T, U, F>(
        &self,
        items: &[T],
        f: F,
        deadline: &Deadline,
    ) -> Result<Vec<U>, StopReason>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        map::parallel_map_deadline_impl(self.threads, items, &f, deadline)
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_resolves_positive_worker_count() {
        assert!(Pool::new(0).threads() >= 1);
        assert_eq!(Pool::new(3).threads(), 3);
        assert_eq!(Pool::sequential().threads(), 1);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        for threads in [1, 2, 4, 8] {
            let got = Pool::new(threads).parallel_map(&items, |x| x * x + 1);
            let want: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_tiny_inputs() {
        let p = Pool::new(8);
        assert_eq!(p.parallel_map(&[] as &[u32], |x| *x), Vec::<u32>::new());
        assert_eq!(p.parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn scope_runs_all_tasks_including_nested() {
        for threads in [1, 2, 8] {
            let count = AtomicUsize::new(0);
            Pool::new(threads).scope(|s| {
                for _ in 0..50 {
                    let count = &count;
                    s.spawn(move |_| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(count.load(Ordering::SeqCst), 50, "threads={threads}");
        }
    }

    #[test]
    fn scope_tasks_can_spawn_more_tasks() {
        let count = AtomicUsize::new(0);
        Pool::new(4).scope(|s| {
            for _ in 0..8 {
                let count = &count;
                s.spawn(move |inner| {
                    count.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..4 {
                        inner.spawn(move |_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 8 + 8 * 4);
    }

    #[test]
    fn parallel_map_deadline_stops_early() {
        use std::time::Duration;
        let items: Vec<u32> = (0..256).collect();
        let p = Pool::new(4);
        // Already-expired deadline: no items should survive to output.
        let d = Deadline::within(Duration::ZERO);
        let got = p.parallel_map_deadline(&items, |&x| x + 1, &d);
        assert_eq!(got, Err(StopReason::DeadlineExceeded));
        // Unbounded deadline: identical to parallel_map.
        let got = p.parallel_map_deadline(&items, |&x| x + 1, &Deadline::none());
        let want: Vec<u32> = items.iter().map(|&x| x + 1).collect();
        assert_eq!(got, Ok(want));
    }

    #[test]
    fn parallel_map_deadline_observes_cancellation() {
        let items: Vec<u32> = (0..64).collect();
        let token = CancelToken::new();
        token.cancel();
        let d = Deadline::none().with_token(token);
        let got = Pool::new(2).parallel_map_deadline(&items, |&x| x, &d);
        assert_eq!(got, Err(StopReason::Cancelled));
    }

    #[test]
    fn parallel_map_panic_propagates_with_payload() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).parallel_map(&items, |&x| {
                assert!(x != 13, "unlucky item");
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a string");
        assert!(msg.contains("unlucky item"), "got: {msg}");
    }

    #[test]
    fn scope_task_panic_propagates_after_siblings_ran() {
        let count = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Pool::new(2).scope(|s| {
                for i in 0..16 {
                    let count = &count;
                    s.spawn(move |_| {
                        if i == 3 {
                            panic!("task blew up");
                        }
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must surface on the caller");
        // Isolation: the other 15 tasks all ran despite the panic.
        assert_eq!(count.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn uneven_work_is_stolen_not_serialized() {
        // One pathological item plus many cheap ones: order must hold.
        let items: Vec<u32> = (0..64).collect();
        let got = Pool::new(4).parallel_map(&items, |&x| {
            if x == 0 {
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc as u32 ^ acc as u32 // 0, but data-dependent
            } else {
                x
            }
        });
        let want: Vec<u32> = (0..64).map(|x| if x == 0 { 0 } else { x }).collect();
        assert_eq!(got, want);
    }
}
