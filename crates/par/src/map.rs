//! Order-preserving parallel map with steal-half range stealing.
//!
//! The input slice is split into one contiguous range per worker. Each
//! worker drains its range front to back; when it runs dry it steals
//! the *upper half* of the largest remaining range. Contiguous halves
//! (rather than single indices) keep steals rare and preserve spatial
//! locality, which matters when items are solver instances whose costs
//! differ by orders of magnitude — the E8 corpus mixes microsecond
//! criteria hits with multi-millisecond branch-and-bound runs.
//!
//! Fault behavior: a panic in the mapped closure is re-raised on the
//! calling thread with its original payload (never swallowed, never a
//! bare `JoinHandle` panic), poisoned span locks are recovered (the span
//! state is plain bookkeeping that stays consistent), and the
//! deadline-aware variant stops cooperatively between items, returning
//! [`StopReason`] instead of a partial output.

use crate::stats;
use epi_core::{Deadline, StopReason};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// Half-open index range still owned by one worker.
struct Span {
    lo: usize,
    hi: usize,
}

/// Lock a span, recovering from poisoning: span state is two indices
/// mutated atomically under the lock, so a panicking peer cannot leave
/// it torn.
fn lock_span(m: &Mutex<Span>) -> std::sync::MutexGuard<'_, Span> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn parallel_map_impl<T, U, F>(threads: usize, items: &[T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    match parallel_map_deadline_impl(threads, items, f, &Deadline::none()) {
        Ok(out) => out,
        Err(reason) => unreachable!("unbounded deadline stopped a map: {reason}"),
    }
}

pub(crate) fn parallel_map_deadline_impl<T, U, F>(
    threads: usize,
    items: &[T],
    f: &F,
    deadline: &Deadline,
) -> Result<Vec<U>, StopReason>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let k = threads.min(n).max(1);
    if k == 1 {
        let mut out = Vec::with_capacity(n);
        for item in items {
            deadline.check()?;
            out.push(f(item));
        }
        return Ok(out);
    }
    stats::record_map();

    let spans: Vec<Mutex<Span>> = {
        let base = n / k;
        let extra = n % k;
        let mut lo = 0;
        (0..k)
            .map(|i| {
                let len = base + usize::from(i < extra);
                let span = Span { lo, hi: lo + len };
                lo += len;
                Mutex::new(span)
            })
            .collect()
    };

    // Raised by the first worker whose deadline check fails; peers stop
    // at their next item boundary.
    let stopped = AtomicBool::new(false);
    let stop_reason: Mutex<Option<StopReason>> = Mutex::new(None);
    let bounded = deadline.is_bounded();

    let worker = |home: usize| -> Vec<(usize, U)> {
        let mut out = Vec::new();
        loop {
            if bounded {
                if stopped.load(Ordering::Relaxed) {
                    return out;
                }
                if let Err(reason) = deadline.check() {
                    stopped.store(true, Ordering::Relaxed);
                    stop_reason
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get_or_insert(reason);
                    return out;
                }
            }
            let next = {
                let mut span = lock_span(&spans[home]);
                if span.lo < span.hi {
                    let i = span.lo;
                    span.lo += 1;
                    Some(i)
                } else {
                    None
                }
            };
            if let Some(i) = next {
                out.push((i, f(&items[i])));
                continue;
            }
            // Own range dry: steal the upper half of the fattest one.
            let mut victim: Option<(usize, usize)> = None; // (span, remaining)
            for (v, m) in spans.iter().enumerate() {
                if v == home {
                    continue;
                }
                let span = lock_span(m);
                let rem = span.hi - span.lo;
                if rem > 0 && victim.is_none_or(|(_, best)| rem > best) {
                    victim = Some((v, rem));
                }
            }
            let Some((v, _)) = victim else {
                return out;
            };
            let taken = {
                let mut span = lock_span(&spans[v]);
                let rem = span.hi - span.lo;
                if rem == 0 {
                    continue; // someone beat us to it; rescan
                }
                let take = rem.div_ceil(2);
                let mid = span.hi - take;
                let stolen = (mid, span.hi);
                span.hi = mid;
                stolen
            };
            stats::record_steal();
            let mut span = lock_span(&spans[home]);
            span.lo = taken.0;
            span.hi = taken.1;
        }
    };

    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut worker_panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let worker = &worker;
        let handles: Vec<_> = (1..k).map(|w| s.spawn(move || worker(w))).collect();
        for (i, u) in worker(0) {
            slots[i] = Some(u);
        }
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (i, u) in pairs {
                        slots[i] = Some(u);
                    }
                }
                // Keep the first payload; re-raised below so the panic
                // surfaces on the caller with its original message.
                Err(payload) => {
                    worker_panic.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = worker_panic {
        std::panic::resume_unwind(payload);
    }
    if let Some(reason) = *stop_reason.lock().unwrap_or_else(PoisonError::into_inner) {
        return Err(reason);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every index mapped exactly once"))
        .collect())
}
