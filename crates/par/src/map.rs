//! Order-preserving parallel map with steal-half range stealing.
//!
//! The input slice is split into one contiguous range per worker. Each
//! worker drains its range front to back; when it runs dry it steals
//! the *upper half* of the largest remaining range. Contiguous halves
//! (rather than single indices) keep steals rare and preserve spatial
//! locality, which matters when items are solver instances whose costs
//! differ by orders of magnitude — the E8 corpus mixes microsecond
//! criteria hits with multi-millisecond branch-and-bound runs.

use crate::stats;
use std::sync::Mutex;

/// Half-open index range still owned by one worker.
struct Span {
    lo: usize,
    hi: usize,
}

pub(crate) fn parallel_map_impl<T, U, F>(threads: usize, items: &[T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let k = threads.min(n).max(1);
    if k == 1 {
        return items.iter().map(f).collect();
    }
    stats::record_map();

    let spans: Vec<Mutex<Span>> = {
        let base = n / k;
        let extra = n % k;
        let mut lo = 0;
        (0..k)
            .map(|i| {
                let len = base + usize::from(i < extra);
                let span = Span { lo, hi: lo + len };
                lo += len;
                Mutex::new(span)
            })
            .collect()
    };

    let worker = |home: usize| -> Vec<(usize, U)> {
        let mut out = Vec::new();
        loop {
            let next = {
                let mut span = spans[home].lock().unwrap();
                if span.lo < span.hi {
                    let i = span.lo;
                    span.lo += 1;
                    Some(i)
                } else {
                    None
                }
            };
            if let Some(i) = next {
                out.push((i, f(&items[i])));
                continue;
            }
            // Own range dry: steal the upper half of the fattest one.
            let mut victim: Option<(usize, usize)> = None; // (span, remaining)
            for (v, m) in spans.iter().enumerate() {
                if v == home {
                    continue;
                }
                let span = m.lock().unwrap();
                let rem = span.hi - span.lo;
                if rem > 0 && victim.is_none_or(|(_, best)| rem > best) {
                    victim = Some((v, rem));
                }
            }
            let Some((v, _)) = victim else {
                return out;
            };
            let taken = {
                let mut span = spans[v].lock().unwrap();
                let rem = span.hi - span.lo;
                if rem == 0 {
                    continue; // someone beat us to it; rescan
                }
                let take = rem.div_ceil(2);
                let mid = span.hi - take;
                let stolen = (mid, span.hi);
                span.hi = mid;
                stolen
            };
            stats::record_steal();
            let mut span = spans[home].lock().unwrap();
            span.lo = taken.0;
            span.hi = taken.1;
        }
    };

    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let worker = &worker;
        let handles: Vec<_> = (1..k).map(|w| s.spawn(move || worker(w))).collect();
        for (i, u) in worker(0) {
            slots[i] = Some(u);
        }
        for h in handles {
            for (i, u) in h.join().expect("parallel_map worker panicked") {
                slots[i] = Some(u);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index mapped exactly once"))
        .collect()
}
