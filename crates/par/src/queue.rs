//! Blocking best-first work queue with termination detection.
//!
//! Branch-and-bound workers both consume boxes and produce subboxes, so
//! "queue empty" does not mean "search over" — a worker may be about to
//! push children. The queue therefore tracks how many items are
//! *checked out* ([`BestFirstQueue::pop`] increments, [`BestFirstQueue::item_done`]
//! decrements) and [`BestFirstQueue::pop`] returns `None` only when the
//! heap is empty **and** nothing is checked out (global exhaustion), or
//! after [`BestFirstQueue::close`] (early termination: witness found or
//! budget blown).
//!
//! Priorities are served largest first ([`std::collections::BinaryHeap`]
//! is a max-heap); ties break toward the oldest push, so a
//! single-worker run is deterministic.
//!
//! Fault behavior: poisoned locks are recovered (heap and counters are
//! mutated atomically under the lock, never left torn), and
//! [`BestFirstQueue::pop_deadline`] bounds the blocking wait so a
//! worker honoring a [`Deadline`] can stop instead of sleeping forever
//! on a queue whose producers died.

use epi_core::{Deadline, StopReason};
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Longest single sleep inside [`BestFirstQueue::pop_deadline`]: bounds
/// how stale a cancellation check can get while blocked.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Total order on `f64` via [`f64::total_cmp`], for use as a queue
/// priority (wrap in [`std::cmp::Reverse`] to serve smallest first).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry<P, T> {
    prio: P,
    seq: u64,
    item: T,
}

impl<P: Ord, T> PartialEq for Entry<P, T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio && self.seq == other.seq
    }
}

impl<P: Ord, T> Eq for Entry<P, T> {}

impl<P: Ord, T> PartialOrd for Entry<P, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P: Ord, T> Ord for Entry<P, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Higher priority wins; on ties the *older* entry (smaller
        // sequence number) is greater, i.e. served first.
        self.prio
            .cmp(&other.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner<P, T> {
    heap: BinaryHeap<Entry<P, T>>,
    checked_out: usize,
    closed: bool,
    next_seq: u64,
}

/// See the module docs. `P` is the priority (max served first), `T` the
/// work item.
pub struct BestFirstQueue<P, T> {
    inner: Mutex<Inner<P, T>>,
    cv: Condvar,
}

impl<P: Ord, T> BestFirstQueue<P, T> {
    pub fn new() -> Self {
        BestFirstQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                checked_out: 0,
                closed: false,
                next_seq: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Lock the queue state, recovering from poisoning: every mutation
    /// happens in one step under the lock, so a panicking holder cannot
    /// leave it torn.
    fn lock(&self) -> MutexGuard<'_, Inner<P, T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add a work item.
    pub fn push(&self, prio: P, item: T) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.heap.push(Entry { prio, seq, item });
        drop(inner);
        self.cv.notify_one();
    }

    /// Take the highest-priority item, blocking while other workers
    /// might still produce more. `None` means the search is over:
    /// either globally exhausted or closed.
    pub fn pop(&self) -> Option<T> {
        match self.pop_deadline(&Deadline::none()) {
            Ok(item) => item,
            Err(reason) => unreachable!("unbounded deadline stopped a pop: {reason}"),
        }
    }

    /// [`BestFirstQueue::pop`] with a stop condition: returns
    /// `Err(reason)` once the deadline expires or its token is
    /// cancelled, instead of blocking until exhaustion. The caller did
    /// *not* check an item out on the `Err` path (no `item_done` owed).
    ///
    /// Time spent blocked waiting for producers is accumulated into the
    /// process-wide [`crate::stats`] counters (`queue_waits`,
    /// `queue_wait_micros`) — the solver-pool starvation signal the
    /// service's metrics exposition surfaces.
    pub fn pop_deadline(&self, deadline: &Deadline) -> Result<Option<T>, StopReason> {
        let mut waited = Duration::ZERO;
        let result = self.pop_deadline_waiting(deadline, &mut waited);
        if !waited.is_zero() {
            crate::stats::record_queue_wait(waited.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        result
    }

    fn pop_deadline_waiting(
        &self,
        deadline: &Deadline,
        waited: &mut Duration,
    ) -> Result<Option<T>, StopReason> {
        let bounded = deadline.is_bounded();
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Ok(None);
            }
            if bounded {
                deadline.check()?;
            }
            if let Some(entry) = inner.heap.pop() {
                inner.checked_out += 1;
                return Ok(Some(entry.item));
            }
            if inner.checked_out == 0 {
                // Exhausted: wake everyone else so they observe it too.
                drop(inner);
                self.cv.notify_all();
                return Ok(None);
            }
            let blocked = std::time::Instant::now();
            inner = if bounded {
                // Sleep in bounded slices so cancellation and expiry are
                // noticed even if no producer ever signals again.
                let slice = match deadline.remaining() {
                    Some(rem) => rem.min(WAIT_SLICE),
                    None => WAIT_SLICE,
                };
                self.cv
                    .wait_timeout(inner, slice)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            } else {
                self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner)
            };
            *waited += blocked.elapsed();
        }
    }

    /// Declare the item from the matching [`BestFirstQueue::pop`] fully
    /// processed (all children pushed). Call exactly once per pop.
    pub fn item_done(&self) {
        let mut inner = self.lock();
        inner.checked_out = inner.checked_out.saturating_sub(1);
        if inner.checked_out == 0 && inner.heap.is_empty() {
            drop(inner);
            self.cv.notify_all();
        }
    }

    /// Terminate the search: current and future `pop`s return `None`.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }

    /// Whether [`BestFirstQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Remove and return every item still parked in the queue, in no
    /// particular order. For the owner's cleanup pass *after* the search
    /// has ended (workers joined): items abandoned by a close or budget
    /// stop often hold pooled buffers that should be checked back in
    /// rather than dropped.
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.heap.drain().map(|entry| entry.item).collect()
    }
}

impl<P: Ord, T> Default for BestFirstQueue<P, T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn drain_remaining_empties_a_closed_queue() {
        let q: BestFirstQueue<u32, u32> = BestFirstQueue::new();
        q.push(1, 10);
        q.push(2, 20);
        q.close();
        assert_eq!(q.pop(), None, "closed queue serves nothing");
        let mut left = q.drain_remaining();
        left.sort_unstable();
        assert_eq!(left, vec![10, 20], "abandoned items are recoverable");
        assert!(q.drain_remaining().is_empty());
    }

    #[test]
    fn pops_in_priority_order_with_fifo_ties() {
        let q: BestFirstQueue<u32, &str> = BestFirstQueue::new();
        q.push(1, "low");
        q.push(5, "high-a");
        q.push(5, "high-b");
        q.push(3, "mid");
        let mut got = Vec::new();
        while let Some(item) = q.pop() {
            got.push(item);
            q.item_done();
        }
        assert_eq!(got, vec!["high-a", "high-b", "mid", "low"]);
    }

    #[test]
    fn exhaustion_returns_none_across_threads() {
        let q: BestFirstQueue<Reverse<OrdF64>, u32> = BestFirstQueue::new();
        for i in 0..100 {
            q.push(Reverse(OrdF64(f64::from(i))), i);
        }
        let total: u32 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut sum = 0;
                        while let Some(item) = q.pop() {
                            if item % 7 == 0 && item > 0 && item < 50 {
                                q.push(Reverse(OrdF64(1e9)), 1000 + item);
                            }
                            sum += item;
                            q.item_done();
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // 0..100 plus the re-pushed 1000+{7,14,21,28,35,42,49}.
        let expect: u32 = (0..100).sum::<u32>()
            + [7, 14, 21, 28, 35, 42, 49]
                .iter()
                .map(|x| 1000 + x)
                .sum::<u32>();
        assert_eq!(total, expect);
    }

    #[test]
    fn close_unblocks_everyone() {
        let q: BestFirstQueue<u32, u32> = BestFirstQueue::new();
        q.push(1, 1);
        assert_eq!(q.pop(), Some(1));
        // Item checked out: a second pop would block — close instead.
        q.close();
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn pop_deadline_times_out_instead_of_blocking() {
        let q: BestFirstQueue<u32, u32> = BestFirstQueue::new();
        q.push(1, 1);
        assert_eq!(q.pop_deadline(&Deadline::none()), Ok(Some(1)));
        // Item checked out, heap empty: a plain pop would block forever.
        let d = Deadline::within(Duration::from_millis(20));
        assert_eq!(q.pop_deadline(&d), Err(StopReason::DeadlineExceeded));
        // The failed pop checked nothing out; finishing the first item
        // exhausts the queue.
        q.item_done();
        assert_eq!(q.pop_deadline(&Deadline::none()), Ok(None));
    }

    #[test]
    fn pop_deadline_observes_cancellation() {
        use epi_core::CancelToken;
        let q: BestFirstQueue<u32, u32> = BestFirstQueue::new();
        let token = CancelToken::new();
        token.cancel();
        let d = Deadline::none().with_token(token);
        q.push(1, 1);
        assert_eq!(q.pop_deadline(&d), Err(StopReason::Cancelled));
    }

    #[test]
    fn blocked_pops_account_their_wait_time() {
        let before = crate::stats();
        let q: BestFirstQueue<u32, u32> = BestFirstQueue::new();
        q.push(1, 1);
        assert_eq!(q.pop_deadline(&Deadline::none()), Ok(Some(1)));
        // Heap empty with an item checked out: the pop below must block
        // until the deadline fires, and that wait must be accounted.
        let d = Deadline::within(Duration::from_millis(15));
        assert_eq!(q.pop_deadline(&d), Err(StopReason::DeadlineExceeded));
        let after = crate::stats();
        assert!(after.queue_waits > before.queue_waits);
        assert!(
            after.queue_wait_micros >= before.queue_wait_micros + 10_000,
            "blocked ~15ms, accounted {} µs",
            after.queue_wait_micros - before.queue_wait_micros
        );
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = vec![OrdF64(1.5), OrdF64(-2.0), OrdF64(0.0), OrdF64(7.25)];
        v.sort();
        assert_eq!(
            v,
            vec![OrdF64(-2.0), OrdF64(0.0), OrdF64(1.5), OrdF64(7.25)]
        );
    }
}
