//! Scoped work-stealing task pool.
//!
//! A `scope` call spawns `threads − 1` OS threads (the caller is the
//! remaining worker), runs the user closure to seed tasks, then drains
//! the deques until every task — including tasks spawned by tasks —
//! has finished, and joins the workers before returning. Each worker
//! owns a deque: it pushes and pops at the back (LIFO, cache-warm) and
//! thieves take from the front (FIFO, oldest first), the classic
//! work-stealing discipline. `std::sync::Mutex` guards each deque
//! instead of a lock-free Chase–Lev buffer because the workspace
//! forbids `unsafe`; tasks here are coarse (a solver wave, an audit
//! decision), so lock traffic is noise.
//!
//! Fault behavior: a panicking task is **isolated** — the worker that
//! ran it catches the unwind, keeps draining the queue, and the first
//! panic payload is re-raised on the caller once the scope completes,
//! so sibling tasks still run and no waiter deadlocks on a dead worker.
//! Poisoned locks are recovered everywhere (the guarded state — deques
//! and a wake-up epoch — cannot be left torn by an unwinding holder).

use crate::stats;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock, recovering from poisoning.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A queued task. Receives the scope so it can spawn follow-up work.
type Job<'env> = Box<dyn for<'a> FnOnce(&'a Scope<'a, 'env>) + Send + 'env>;

/// Handle passed to the closure given to [`crate::Pool::scope`] (and to
/// every task): spawn tasks onto the pool's deques.
pub struct Scope<'sc, 'env> {
    shared: &'sc Shared<'env>,
}

impl<'sc, 'env> Scope<'sc, 'env> {
    /// Queue a task. Tasks may run on any worker, in any order; use the
    /// task's `&Scope` argument to spawn follow-up work.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'a, 'env>) + Send + 'env,
    {
        let lanes = self.shared.deques.len();
        let lane = self.shared.next_lane.fetch_add(1, Ordering::Relaxed) % lanes;
        self.shared.push(lane, Box::new(f));
    }
}

/// Wake-up channel: `epoch` increments on every queue change so a
/// sleeper can detect "something happened since I last looked" without
/// missed wakeups (pushes bump it under the same lock sleepers check).
struct Signal {
    lock: Mutex<SignalState>,
    cv: Condvar,
}

struct SignalState {
    epoch: u64,
    closed: bool,
}

struct Shared<'env> {
    deques: Vec<Mutex<VecDeque<Job<'env>>>>,
    /// Tasks queued or currently running.
    pending: AtomicUsize,
    next_lane: AtomicUsize,
    signal: Signal,
    /// First panic payload from an isolated task, re-raised on the
    /// caller after the scope drains.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Decrements `pending` when a task finishes — on the normal path *or*
/// during unwind, so a panicking task cannot strand the leader in
/// `drain` (the panic still propagates through the scope's exit).
struct PendingGuard<'a, 'env>(&'a Shared<'env>);

impl Drop for PendingGuard<'_, '_> {
    fn drop(&mut self) {
        if self.0.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.0.bump();
        }
    }
}

impl<'env> Shared<'env> {
    fn new(lanes: usize) -> Self {
        Shared {
            deques: (0..lanes).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            next_lane: AtomicUsize::new(0),
            signal: Signal {
                lock: Mutex::new(SignalState {
                    epoch: 0,
                    closed: false,
                }),
                cv: Condvar::new(),
            },
            panic: Mutex::new(None),
        }
    }

    /// Record a queue change and wake sleepers.
    fn bump(&self) {
        let mut st = lock(&self.signal.lock);
        st.epoch += 1;
        drop(st);
        self.signal.cv.notify_all();
    }

    fn push(&self, lane: usize, job: Job<'env>) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        lock(&self.deques[lane]).push_back(job);
        self.bump();
    }

    /// Pop from our own deque (LIFO) or steal from another (FIFO).
    fn grab(&self, home: usize) -> Option<Job<'env>> {
        if let Some(job) = lock(&self.deques[home]).pop_back() {
            return Some(job);
        }
        let lanes = self.deques.len();
        for off in 1..lanes {
            let victim = (home + off) % lanes;
            if let Some(job) = lock(&self.deques[victim]).pop_front() {
                stats::record_steal();
                return Some(job);
            }
        }
        None
    }

    fn run(&self, job: Job<'env>) {
        let _done = PendingGuard(self);
        let scope = Scope { shared: self };
        // Isolate the task: a panic must not take down the worker (other
        // queued tasks still need it) — catch, remember the first
        // payload, keep draining. Re-raised by `run_scope`.
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| job(&scope))) {
            lock(&self.panic).get_or_insert(payload);
        }
        stats::record_task();
    }

    /// Loop for spawned workers: run tasks until the scope closes.
    fn worker(&self, home: usize) {
        loop {
            let seen = lock(&self.signal.lock).epoch;
            if let Some(job) = self.grab(home) {
                self.run(job);
                continue;
            }
            let mut st = lock(&self.signal.lock);
            while st.epoch == seen && !st.closed {
                st = self
                    .signal
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if st.closed {
                return;
            }
        }
    }

    /// Leader loop: run tasks until none are queued *or running*.
    fn drain(&self, home: usize) {
        loop {
            let seen = lock(&self.signal.lock).epoch;
            if let Some(job) = self.grab(home) {
                self.run(job);
                continue;
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            let mut st = lock(&self.signal.lock);
            while st.epoch == seen {
                st = self
                    .signal
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    fn close(&self) {
        let mut st = lock(&self.signal.lock);
        st.closed = true;
        st.epoch += 1;
        drop(st);
        self.signal.cv.notify_all();
    }
}

pub(crate) fn run_scope<'env, T>(threads: usize, f: impl FnOnce(&Scope<'_, 'env>) -> T) -> T {
    let shared = Shared::new(threads.max(1));
    let out = std::thread::scope(|s| {
        for w in 1..threads {
            let shared = &shared;
            s.spawn(move || shared.worker(w));
        }
        let scope = Scope { shared: &shared };
        let out = f(&scope);
        shared.drain(0);
        shared.close();
        out
    });
    // Every task ran (drain saw pending reach zero); if any panicked,
    // surface the first payload now that the scope is fully joined.
    if let Some(payload) = lock(&shared.panic).take() {
        std::panic::resume_unwind(payload);
    }
    out
}
