//! Process-wide execution counters, cheap enough to leave always-on.
//!
//! Monotonic relaxed atomics; consumers (epi-service's `stats`
//! operation) snapshot them and compute rates from deltas.

use std::sync::atomic::{AtomicU64, Ordering};

static TASKS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static MAPS: AtomicU64 = AtomicU64::new(0);
static QUEUE_WAITS: AtomicU64 = AtomicU64::new(0);
static QUEUE_WAIT_MICROS: AtomicU64 = AtomicU64::new(0);
static ARENA_CHECKOUTS: AtomicU64 = AtomicU64::new(0);
static ARENA_MISSES: AtomicU64 = AtomicU64::new(0);
static ARENA_HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);
static WAVES_SEQUENTIAL: AtomicU64 = AtomicU64::new(0);
static WAVES_PARALLEL: AtomicU64 = AtomicU64::new(0);
static BATCH_SWEEPS: AtomicU64 = AtomicU64::new(0);
static SOA_STAGED_HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time view of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Scoped tasks executed to completion.
    pub tasks_executed: u64,
    /// Successful steals (scoped deques + `parallel_map` range halves).
    pub steals: u64,
    /// `parallel_map` calls that actually fanned out (> 1 worker).
    pub parallel_maps: u64,
    /// Best-first queue pops that had to block for work.
    pub queue_waits: u64,
    /// Total microseconds spent blocked in best-first queue pops — the
    /// starvation signal: high wait with low steals means the search
    /// front is too narrow for the worker count.
    pub queue_wait_micros: u64,
    /// Arena buffer checkouts (pooled tensors/boxes + thread scratch).
    pub arena_checkouts: u64,
    /// Checkouts that had to allocate — a warm hot path keeps this flat
    /// while `arena_checkouts` climbs.
    pub arena_misses: u64,
    /// High-water mark of bytes parked across all buffer pools.
    pub arena_high_water_bytes: u64,
    /// Frontier waves the chunk policy kept on the calling thread.
    pub waves_sequential: u64,
    /// Frontier waves the chunk policy fanned out across workers.
    pub waves_parallel: u64,
    /// Batched structure-of-arrays kernel sweeps over wave chunks (the
    /// solver's vectorized wave path; flat when `wave_batch` is off).
    pub batch_sweeps: u64,
    /// High-water mark of bytes staged in structure-of-arrays wave
    /// buffers (survivor indices plus probe results) across all chunks.
    pub soa_staged_high_water_bytes: u64,
}

/// Snapshot the process-wide counters.
pub fn stats() -> StatsSnapshot {
    StatsSnapshot {
        tasks_executed: TASKS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        parallel_maps: MAPS.load(Ordering::Relaxed),
        queue_waits: QUEUE_WAITS.load(Ordering::Relaxed),
        queue_wait_micros: QUEUE_WAIT_MICROS.load(Ordering::Relaxed),
        arena_checkouts: ARENA_CHECKOUTS.load(Ordering::Relaxed),
        arena_misses: ARENA_MISSES.load(Ordering::Relaxed),
        arena_high_water_bytes: ARENA_HIGH_WATER_BYTES.load(Ordering::Relaxed),
        waves_sequential: WAVES_SEQUENTIAL.load(Ordering::Relaxed),
        waves_parallel: WAVES_PARALLEL.load(Ordering::Relaxed),
        batch_sweeps: BATCH_SWEEPS.load(Ordering::Relaxed),
        soa_staged_high_water_bytes: SOA_STAGED_HIGH_WATER_BYTES.load(Ordering::Relaxed),
    }
}

/// Record one batched structure-of-arrays sweep over a wave chunk.
pub fn record_batch_sweep() {
    BATCH_SWEEPS.fetch_add(1, Ordering::Relaxed);
}

/// Fold a chunk's staged SoA buffer footprint into the high-water mark.
pub fn record_soa_staged_bytes(bytes: u64) {
    SOA_STAGED_HIGH_WATER_BYTES.fetch_max(bytes, Ordering::Relaxed);
}

pub(crate) fn record_task() {
    TASKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_steal() {
    STEALS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_map() {
    MAPS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_queue_wait(micros: u64) {
    QUEUE_WAITS.fetch_add(1, Ordering::Relaxed);
    QUEUE_WAIT_MICROS.fetch_add(micros, Ordering::Relaxed);
}

pub(crate) fn record_arena_checkout(miss: bool) {
    ARENA_CHECKOUTS.fetch_add(1, Ordering::Relaxed);
    if miss {
        ARENA_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

pub(crate) fn record_arena_high_water(resident_bytes: u64) {
    ARENA_HIGH_WATER_BYTES.fetch_max(resident_bytes, Ordering::Relaxed);
}

pub(crate) fn record_wave(parallel: bool) {
    if parallel {
        WAVES_PARALLEL.fetch_add(1, Ordering::Relaxed);
    } else {
        WAVES_SEQUENTIAL.fetch_add(1, Ordering::Relaxed);
    }
}
