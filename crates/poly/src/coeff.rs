//! Coefficient rings for polynomials.
//!
//! The algebraic machinery of Section 6 runs in two modes: exact (rational
//! coefficients — criteria verdicts, polynomial identities) and numeric
//! (`f64` — the SDP/SOS pipeline). [`Coeff`] abstracts the common ring
//! interface so `Polynomial<C>` serves both.

use epi_num::Rational;

/// A commutative ring with identity, as needed by [`crate::Polynomial`].
pub trait Coeff: Clone + PartialEq + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add(&self, other: &Self) -> Self;
    /// `self - other`.
    fn sub(&self, other: &Self) -> Self;
    /// `self * other`.
    fn mul(&self, other: &Self) -> Self;
    /// `-self`.
    fn neg(&self) -> Self;
    /// `true` iff this is the additive identity (exact for [`Rational`],
    /// bitwise for `f64`).
    fn is_zero(&self) -> bool;
    /// Embedding of the integers.
    fn from_i64(v: i64) -> Self;
    /// Nearest `f64` (for numeric hand-off and display).
    fn to_f64(&self) -> f64;
}

impl Coeff for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Coeff for Rational {
    fn zero() -> Self {
        Rational::ZERO
    }
    fn one() -> Self {
        Rational::ONE
    }
    fn add(&self, other: &Self) -> Self {
        *self + *other
    }
    fn sub(&self, other: &Self) -> Self {
        *self - *other
    }
    fn mul(&self, other: &Self) -> Self {
        *self * *other
    }
    fn neg(&self) -> Self {
        -*self
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(*self)
    }
    fn from_i64(v: i64) -> Self {
        Rational::from(i128::from(v))
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ring_laws() {
        assert_eq!(<f64 as Coeff>::zero(), 0.0);
        assert_eq!(<f64 as Coeff>::one(), 1.0);
        assert_eq!(Coeff::add(&2.0, &3.0), 5.0);
        assert_eq!(Coeff::mul(&2.0, &3.0), 6.0);
        assert_eq!(Coeff::neg(&2.0), -2.0);
        assert!(Coeff::is_zero(&0.0));
        assert_eq!(<f64 as Coeff>::from_i64(-7), -7.0);
    }

    #[test]
    fn rational_ring_laws() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(Coeff::add(&a, &b), Rational::new(5, 6));
        assert_eq!(Coeff::sub(&a, &b), Rational::new(1, 6));
        assert_eq!(Coeff::mul(&a, &b), Rational::new(1, 6));
        assert!(Coeff::is_zero(&Rational::ZERO));
        assert_eq!(<Rational as Coeff>::from_i64(4), Rational::from(4));
        assert_eq!(Coeff::to_f64(&a), 0.5);
    }
}
