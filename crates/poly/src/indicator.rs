//! Indicator-set polynomials for product distributions (Section 6.1).
//!
//! For `Ω = {0,1}ⁿ` and a product distribution with Bernoulli vector
//! `p = (p₁, …, pₙ)`, the probability of a set `A` is the polynomial
//!
//! ```text
//! P[A](p) = Σ_{ω ∈ A} Π pᵢ^{ω[i]} · (1 − pᵢ)^{1−ω[i]}        (eq. 17)
//! ```
//!
//! The *safety-gap polynomial* `gap(p) = P[A](p)·P[B](p) − P[AB](p)` is the
//! object the Section 6 decision procedures operate on:
//! `Safe_{Π_m⁰}(A, B) ⟺ gap(p) ≥ 0 on [0,1]ⁿ` — i.e. the semialgebraic
//! set `K(A, B, Π_m⁰)` of Proposition 6.1 is empty.

use crate::coeff::Coeff;
use crate::multilinear::{DensePow3, Multilinear};
use crate::polynomial::Polynomial;
use epi_core::WorldSet;

/// Builds `P[A](p₁ … pₙ)` as a polynomial in `n` variables over ring `C`.
///
/// Uses the dense multilinear butterfly ([`Multilinear::from_set`],
/// `O(n·2ⁿ)`) whenever `n` is within the dense limit, falling back to
/// the world-by-world expansion otherwise. Both constructions produce
/// identical polynomials over an exact ring.
///
/// # Panics
///
/// Panics when `a`'s universe is not `2ⁿ`.
pub fn prob_polynomial<C: Coeff>(n: usize, a: &WorldSet) -> Polynomial<C> {
    if n <= Multilinear::<C>::MAX_ARITY {
        return Multilinear::<C>::from_set(n, a).to_polynomial();
    }
    prob_polynomial_generic(n, a)
}

/// The original world-by-world construction of `P[A]`: expands eq. 17
/// one world at a time through sparse polynomial products. Kept as the
/// fallback for arities beyond the dense limit and as the measured
/// baseline for the dense kernel (E14).
pub fn prob_polynomial_generic<C: Coeff>(n: usize, a: &WorldSet) -> Polynomial<C> {
    assert_eq!(a.universe_size(), 1 << n, "set is not over {{0,1}}^{n}");
    let one = Polynomial::constant(n, C::one());
    let mut out = Polynomial::zero(n);
    for w in a {
        let mut term = Polynomial::constant(n, C::one());
        for i in 0..n {
            let xi = Polynomial::var(n, i);
            let factor = if w.0 >> i & 1 == 1 { xi } else { one.sub(&xi) };
            term = term.mul(&factor);
        }
        out = out.add(&term);
    }
    out
}

/// Builds the safety-gap polynomial
/// `gap(p) = P[A](p)·P[B](p) − P[A∩B](p)`.
///
/// `gap ≥ 0` on `[0,1]ⁿ` ⟺ `Safe_{Π_m⁰}(A, B)` (Propositions 3.8/6.1).
///
/// For `n` within the dense limit the gap is assembled through the
/// dense multilinear kernel (see [`safety_gap_pow3`]) and converted to
/// sparse form once at the end.
pub fn safety_gap_polynomial<C: Coeff>(n: usize, a: &WorldSet, b: &WorldSet) -> Polynomial<C> {
    if n <= DensePow3::<C>::MAX_ARITY {
        return safety_gap_pow3(n, a, b).to_polynomial();
    }
    safety_gap_polynomial_generic(n, a, b)
}

/// The sparse-pipeline gap construction (indicators world by world,
/// then a term-map product). Fallback for large arities; baseline for
/// the dense kernel benchmarks.
pub fn safety_gap_polynomial_generic<C: Coeff>(
    n: usize,
    a: &WorldSet,
    b: &WorldSet,
) -> Polynomial<C> {
    let pa = prob_polynomial_generic::<C>(n, a);
    let pb = prob_polynomial_generic::<C>(n, b);
    let pab = prob_polynomial_generic::<C>(n, &a.intersection(b));
    pa.mul(&pb).sub(&pab)
}

/// The safety gap in the dense base-3 layout: `P[A]·P[B]` accumulated
/// straight into a [`DensePow3`] and `P[A∩B]` subtracted in place —
/// no sparse term map anywhere. This is the direct bridge into the
/// solver's Bernstein coefficient tensor, which shares the
/// `Σ eᵢ·3ⁱ` indexing.
///
/// # Panics
///
/// Panics when the universe is not `2ⁿ` or `n` exceeds
/// [`DensePow3::MAX_ARITY`].
pub fn safety_gap_pow3<C: Coeff>(n: usize, a: &WorldSet, b: &WorldSet) -> DensePow3<C> {
    let pa = Multilinear::<C>::from_set(n, a);
    let pb = Multilinear::<C>::from_set(n, b);
    let pab = Multilinear::<C>::from_set(n, &a.intersection(b));
    let mut gap = pa.mul(&pb);
    gap.sub_multilinear(&pab);
    gap
}

/// The equivalent four-region form of the gap via the identity
/// `P[A]P[B] − P[AB] = P[AB̄]·P[ĀB] − P[AB]·P[ĀB̄]`; exercised by tests
/// and used as a cheaper construction when the regions are small.
pub fn safety_gap_regions<C: Coeff>(n: usize, a: &WorldSet, b: &WorldSet) -> Polynomial<C> {
    let ab = a.intersection(b);
    let a_not_b = a.difference(b);
    let b_not_a = b.difference(a);
    let neither = a.union(b).complement();
    let p1 = prob_polynomial::<C>(n, &a_not_b).mul(&prob_polynomial::<C>(n, &b_not_a));
    let p2 = prob_polynomial::<C>(n, &ab).mul(&prob_polynomial::<C>(n, &neither));
    p1.sub(&p2)
}

/// The monomial `μ_w(p)` of the cancellation expansion for a match vector
/// given as `(stars, values)`: `pᵢ(1−pᵢ)` on stars, `pᵢ²` on ones,
/// `(1−pᵢ)²` on zeros.
pub fn match_monomial<C: Coeff>(n: usize, stars: u32, values: u32) -> Polynomial<C> {
    let one = Polynomial::constant(n, C::one());
    let mut out = Polynomial::constant(n, C::one());
    for i in 0..n {
        let xi = Polynomial::var(n, i);
        let f = if stars >> i & 1 == 1 {
            xi.mul(&one.sub(&Polynomial::var(n, i)))
        } else if values >> i & 1 == 1 {
            xi.pow(2)
        } else {
            one.sub(&xi).pow(2)
        };
        out = out.mul(&f);
    }
    out
}

/// Degree-aware size estimate: number of monomials of `P[A]` is at most
/// `3ⁿ` after expansion; exposed so callers can guard costs.
pub fn max_terms(n: usize) -> usize {
    // Each variable contributes exponent 0, 1, or 2 in the gap polynomial.
    3usize.pow(n as u32)
}

/// A convenience: the multilinear expansion of `P[A]` has one term per
/// subset of coordinates; verify a polynomial is within that budget.
pub fn is_within_budget<C: Coeff>(p: &Polynomial<C>, n: usize) -> bool {
    p.term_count() <= max_terms(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epi_num::Rational;
    use rand::{Rng, SeedableRng};

    fn set(n: usize, masks: &[u32]) -> WorldSet {
        WorldSet::from_indices(1 << n, masks.iter().copied())
    }

    #[test]
    fn prob_polynomial_single_world() {
        // A = {10}: P[A] = p₂·(1−p₁) with variables (x0, x1) = (p₁, p₂).
        let p = prob_polynomial::<f64>(2, &set(2, &[0b10]));
        assert!((p.eval_f64(&[0.3, 0.7]) - (1.0 - 0.3) * 0.7).abs() < 1e-15);
        assert!(p.is_multilinear());
    }

    #[test]
    fn prob_polynomial_full_set_is_one() {
        let p = prob_polynomial::<Rational>(3, &WorldSet::full(8));
        assert_eq!(p.term_count(), 1);
        assert_eq!(p.eval_f64(&[0.1, 0.5, 0.9]), 1.0);
    }

    #[test]
    fn prob_matches_direct_summation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(127);
        let n = 4;
        for _ in 0..20 {
            let a = WorldSet::from_predicate(1 << n, |_| rng.gen());
            let poly = prob_polynomial::<f64>(n, &a);
            let point: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let direct: f64 = a
                .iter()
                .map(|w| {
                    (0..n)
                        .map(|i| {
                            if w.0 >> i & 1 == 1 {
                                point[i]
                            } else {
                                1.0 - point[i]
                            }
                        })
                        .product::<f64>()
                })
                .sum();
            assert!((poly.eval_f64(&point) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn gap_forms_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(131);
        let n = 3;
        for _ in 0..20 {
            let a = WorldSet::from_predicate(1 << n, |_| rng.gen());
            let b = WorldSet::from_predicate(1 << n, |_| rng.gen());
            let g1 = safety_gap_polynomial::<Rational>(n, &a, &b);
            let g2 = safety_gap_regions::<Rational>(n, &a, &b);
            assert_eq!(g1, g2, "the two gap identities must agree exactly");
        }
    }

    #[test]
    fn hiv_gap_is_provably_nonneg_pointwise() {
        // §1.1: gap = P[A]P[B] − P[AB] for A = {10,11}, B = {00,01,11}
        // equals p₁(1−p₁)(1−p₂)·… — sample the unit box.
        let a = set(2, &[0b10, 0b11]);
        let b = set(2, &[0b00, 0b01, 0b11]);
        let gap = safety_gap_polynomial::<f64>(2, &a, &b);
        let mut rng = rand::rngs::StdRng::seed_from_u64(137);
        for _ in 0..2000 {
            let p = [rng.gen::<f64>(), rng.gen::<f64>()];
            assert!(gap.eval_f64(&p) >= -1e-12);
        }
    }

    #[test]
    fn match_monomial_evaluates_correctly() {
        // w = 1*0 over n = 3 (bit2=1 fixed... stars bit1): variables x0..x2.
        let stars = 0b010u32;
        let values = 0b100u32;
        let m = match_monomial::<f64>(3, stars, values);
        let p = [0.2, 0.3, 0.4];
        let expected = (1.0 - 0.2) * (1.0 - 0.2) * (0.3 * (1.0 - 0.3)) * (0.4 * 0.4);
        assert!((m.eval_f64(&p) - expected).abs() < 1e-12);
        assert_eq!(m.degree(), 6);
    }

    #[test]
    fn gap_degree_bounds() {
        let a = set(2, &[0b01, 0b10]);
        let b = set(2, &[0b11]);
        let gap = safety_gap_polynomial::<Rational>(2, &a, &b);
        // Degree ≤ 2 per variable, total ≤ 2n.
        assert!(gap.degree_in(0) <= 2 && gap.degree_in(1) <= 2);
        assert!(is_within_budget(&gap, 2));
    }
}
