//! # epi-poly
//!
//! Sparse multivariate polynomial algebra for the Section 6 machinery of the
//! *Epistemic Privacy* paper: the algebraic description of prior families,
//! the safety-gap polynomials whose non-negativity on `[0,1]ⁿ` is
//! equivalent to product-distribution privacy (Proposition 6.1), and the
//! monomial bases of the sum-of-squares pipeline.
//!
//! * [`Monomial`] — exponent vectors with graded-lex ordering;
//! * [`Polynomial`] — sparse terms over a generic [`Coeff`] ring (`f64` or
//!   exact [`epi_num::Rational`]); arithmetic, derivatives, substitution,
//!   point and rigorous interval evaluation;
//! * [`Multilinear`] / [`DensePow3`] — dense subset-mask-indexed kernels
//!   for the multilinear polynomials of Prop 6.1 and their products;
//! * [`indicator`] — `P[A](p)` indicator polynomials and safety-gap
//!   polynomials over `{0,1}ⁿ`;
//! * [`subdivision`] — de Casteljau halving kernels, Bernstein range
//!   scans and split-axis heuristics for the solver's incremental
//!   branch-and-bound.

// Unsafe is forbidden except under the `simd` feature, where the private
// `simd` module is the one sanctioned user: `std::arch` intrinsics
// require `unsafe` even though every call is guarded by runtime CPU
// detection. `deny` (not `allow`) keeps the rest of the crate
// unsafe-free even in simd builds.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod coeff;
pub mod indicator;
mod monomial;
mod multilinear;
mod polynomial;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;
pub mod subdivision;

pub use coeff::Coeff;
pub use monomial::Monomial;
pub use multilinear::{DensePow3, Multilinear};
pub use polynomial::Polynomial;
