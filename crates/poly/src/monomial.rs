//! Monomials: exponent vectors with a fixed arity.

use std::cmp::Ordering;
use std::fmt;

/// A monomial `x₁^{e₁} ⋯ x_s^{e_s}`, stored as its exponent vector.
///
/// Ordering is graded lexicographic (total degree first, then lex), the
/// conventional term order for the SOS basis construction.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Monomial {
    exps: Vec<u32>,
}

impl Monomial {
    /// The constant monomial `1` in `arity` variables.
    pub fn one(arity: usize) -> Monomial {
        Monomial {
            exps: vec![0; arity],
        }
    }

    /// A single variable `xᵢ`.
    pub fn var(arity: usize, i: usize) -> Monomial {
        assert!(i < arity, "variable index {i} out of arity {arity}");
        let mut exps = vec![0; arity];
        exps[i] = 1;
        Monomial { exps }
    }

    /// From an explicit exponent vector.
    pub fn new(exps: Vec<u32>) -> Monomial {
        Monomial { exps }
    }

    /// The exponent vector.
    pub fn exponents(&self) -> &[u32] {
        &self.exps
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.exps.len()
    }

    /// Exponent of variable `i`.
    pub fn exp(&self, i: usize) -> u32 {
        self.exps[i]
    }

    /// Total degree `Σ eᵢ`.
    pub fn degree(&self) -> u32 {
        self.exps.iter().sum()
    }

    /// Product of two monomials (exponent-wise sum).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        assert_eq!(self.arity(), other.arity(), "monomial arity mismatch");
        Monomial {
            exps: self
                .exps
                .iter()
                .zip(&other.exps)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// `true` iff every exponent is 0 or 1.
    pub fn is_multilinear(&self) -> bool {
        self.exps.iter().all(|&e| e <= 1)
    }

    /// Evaluates at a point.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.arity(), "evaluation point arity mismatch");
        self.exps
            .iter()
            .zip(point)
            .map(|(&e, &x)| x.powi(e as i32))
            .product()
    }

    /// Enumerates all monomials in `arity` variables of total degree ≤
    /// `max_degree`, in graded-lex order — the standard SOS basis.
    pub fn all_up_to_degree(arity: usize, max_degree: u32) -> Vec<Monomial> {
        let caps = vec![max_degree; arity];
        Self::all_with_profile(&caps, max_degree)
    }

    /// Enumerates monomials with a per-variable exponent cap and a total
    /// degree bound — the Newton-polytope-style restricted SOS bases (for
    /// safety-gap polynomials, whose per-variable degree is ≤ 2, this
    /// shrinks Gram blocks from `C(n+d, d)` to `2ⁿ`-sized multilinear
    /// bases).
    pub fn all_with_profile(caps: &[u32], max_total: u32) -> Vec<Monomial> {
        let mut out = Vec::new();
        let mut current = vec![0u32; caps.len()];
        collect_profiled(caps, max_total, 0, &mut current, &mut out);
        out.sort();
        out
    }
}

fn collect_profiled(
    caps: &[u32],
    remaining: u32,
    var: usize,
    current: &mut Vec<u32>,
    out: &mut Vec<Monomial>,
) {
    if var == caps.len() {
        out.push(Monomial {
            exps: current.clone(),
        });
        return;
    }
    for e in 0..=remaining.min(caps[var]) {
        current[var] = e;
        collect_profiled(caps, remaining - e, var + 1, current, out);
    }
    current[var] = 0;
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Monomial) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Monomial) -> Ordering {
        self.degree()
            .cmp(&other.degree())
            .then_with(|| self.exps.cmp(&other.exps))
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.degree() == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for (i, &e) in self.exps.iter().enumerate() {
            if e == 0 {
                continue;
            }
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if e == 1 {
                write!(f, "x{}", i)?;
            } else {
                write!(f, "x{}^{}", i, e)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let m = Monomial::var(3, 1);
        assert_eq!(m.exponents(), &[0, 1, 0]);
        assert_eq!(m.degree(), 1);
        assert_eq!(Monomial::one(3).degree(), 0);
    }

    #[test]
    fn multiplication() {
        let a = Monomial::new(vec![1, 2, 0]);
        let b = Monomial::new(vec![0, 1, 3]);
        assert_eq!(a.mul(&b).exponents(), &[1, 3, 3]);
    }

    #[test]
    fn grlex_order() {
        let one = Monomial::one(2);
        let x = Monomial::var(2, 0);
        let y = Monomial::var(2, 1);
        let x2 = Monomial::new(vec![2, 0]);
        let xy = Monomial::new(vec![1, 1]);
        assert!(one < x && one < y);
        assert!(x < x2 && y < x2);
        assert!(xy < x2); // same degree: lex on exponent vectors [1,1] < [2,0]
    }

    #[test]
    fn basis_enumeration() {
        // |{monomials of degree ≤ d in s vars}| = C(s + d, d).
        assert_eq!(Monomial::all_up_to_degree(2, 2).len(), 6);
        assert_eq!(Monomial::all_up_to_degree(3, 2).len(), 10);
        assert_eq!(Monomial::all_up_to_degree(1, 5).len(), 6);
        // Sorted and unique.
        let b = Monomial::all_up_to_degree(3, 3);
        let mut sorted = b.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(b, sorted);
    }

    #[test]
    fn evaluation() {
        let m = Monomial::new(vec![2, 1]);
        assert_eq!(m.eval_f64(&[3.0, 4.0]), 36.0);
        assert_eq!(Monomial::one(2).eval_f64(&[5.0, 6.0]), 1.0);
    }

    #[test]
    fn multilinearity() {
        assert!(Monomial::new(vec![1, 0, 1]).is_multilinear());
        assert!(!Monomial::new(vec![2, 0]).is_multilinear());
    }

    #[test]
    fn display() {
        assert_eq!(Monomial::new(vec![1, 0, 2]).to_string(), "x0·x2^2");
        assert_eq!(Monomial::one(2).to_string(), "1");
    }
}
