//! Dense multilinear polynomials over `{0,1}ⁿ` — the fast path for the
//! Section 6.1 machinery.
//!
//! Every polynomial the product-distribution decision procedure builds
//! from world sets is multilinear: the indicator `P[A](p)` of eq. 17 has
//! degree ≤ 1 in each variable, and the safety gap
//! `P[A]·P[B] − P[AB]` has degree ≤ 2. A multilinear polynomial in `n`
//! variables is exactly a coefficient per *subset* of variables, so we
//! store it as a `Vec<C>` indexed by subset mask:
//!
//! ```text
//! f(x) = Σ_{S ⊆ {1..n}} coeffs[mask(S)] · Π_{i ∈ S} xᵢ
//! ```
//!
//! This replaces the `BTreeMap<Monomial, C>` term maps (one heap node
//! and an `O(log t)` probe per term merge) with flat array arithmetic:
//!
//! * [`Multilinear::from_set`] builds `P[A]` by an in-place butterfly
//!   (the Möbius transform of the world-indicator vector), `O(n·2ⁿ)` —
//!   versus the `O(|A| · 2ⁿ log)` world-by-world accumulation;
//! * add/sub/derivative are single passes over the vector;
//! * [`Multilinear::eval_f64`] contracts one axis at a time,
//!   `2ⁿ` fused multiply-adds with no monomial powers;
//! * [`Multilinear::mul`] lands directly in the dense base-3 layout
//!   ([`DensePow3`]) that the solver's Bernstein tensor uses, so the
//!   gap polynomial never round-trips through a sparse term map.
//!
//! The generic [`crate::Polynomial`] stays as the representation for
//! everything non-multilinear (SOS certificates, substitutions).

use crate::coeff::Coeff;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use epi_core::WorldSet;

/// A dense multilinear polynomial: one coefficient per variable subset.
#[derive(Clone, Debug, PartialEq)]
pub struct Multilinear<C: Coeff> {
    arity: usize,
    coeffs: Vec<C>,
}

impl<C: Coeff> Multilinear<C> {
    /// Largest supported arity (the coefficient vector has `2ⁿ`
    /// entries; 20 keeps it ≤ 1 Mi entries, matching the `WorldSet`
    /// subset-enumeration guard).
    pub const MAX_ARITY: usize = 20;

    /// The zero polynomial in `arity` variables.
    pub fn zero(arity: usize) -> Multilinear<C> {
        assert!(
            arity <= Self::MAX_ARITY,
            "arity {arity} exceeds dense limit"
        );
        Multilinear {
            arity,
            coeffs: vec![C::zero(); 1 << arity],
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(arity: usize, c: C) -> Multilinear<C> {
        let mut out = Multilinear::zero(arity);
        out.coeffs[0] = c;
        out
    }

    /// The variable `xᵢ`.
    pub fn var(arity: usize, i: usize) -> Multilinear<C> {
        assert!(i < arity, "variable index {i} out of arity {arity}");
        let mut out = Multilinear::zero(arity);
        out.coeffs[1 << i] = C::one();
        out
    }

    /// Builds the indicator polynomial `P[A](p)` of eq. 17 for a world
    /// set over `Ω = {0,1}ⁿ`, via the in-place per-axis butterfly
    /// `(g₀, g₁) ↦ (g₀, g₁ − g₀)` applied to the 0/1 world-membership
    /// vector. `O(n·2ⁿ)` ring operations, no allocation beyond the
    /// output.
    ///
    /// # Panics
    ///
    /// Panics when `a`'s universe is not `2ⁿ` or `n` exceeds
    /// [`Self::MAX_ARITY`].
    pub fn from_set(n: usize, a: &WorldSet) -> Multilinear<C> {
        assert!(n <= Self::MAX_ARITY, "arity {n} exceeds dense limit");
        assert_eq!(a.universe_size(), 1 << n, "set is not over {{0,1}}^{n}");
        let mut coeffs: Vec<C> = (0..1u32 << n)
            .map(|w| {
                if a.contains(epi_core::WorldId(w)) {
                    C::one()
                } else {
                    C::zero()
                }
            })
            .collect();
        for i in 0..n {
            let bit = 1usize << i;
            for mask in 0..coeffs.len() {
                if mask & bit != 0 {
                    // The bit-clear slot still holds the value from
                    // this axis's input — it is never written here.
                    coeffs[mask] = coeffs[mask].sub(&coeffs[mask ^ bit]);
                }
            }
        }
        Multilinear { arity: n, coeffs }
    }

    /// Converts a sparse polynomial, if it is multilinear and within
    /// the arity limit.
    pub fn from_polynomial(p: &Polynomial<C>) -> Option<Multilinear<C>> {
        if p.arity() > Self::MAX_ARITY || !p.is_multilinear() {
            return None;
        }
        let mut out = Multilinear::zero(p.arity());
        for (m, c) in p.terms() {
            let mut mask = 0usize;
            for (i, &e) in m.exponents().iter().enumerate() {
                if e == 1 {
                    mask |= 1 << i;
                }
            }
            out.coeffs[mask] = c.clone();
        }
        Some(out)
    }

    /// Converts to the sparse representation (exact: same coefficients,
    /// zero terms dropped).
    pub fn to_polynomial(&self) -> Polynomial<C> {
        Polynomial::from_terms(
            self.arity,
            self.coeffs.iter().enumerate().filter_map(|(mask, c)| {
                if c.is_zero() {
                    return None;
                }
                let exps: Vec<u32> = (0..self.arity)
                    .map(|i| u32::from(mask >> i & 1 == 1))
                    .collect();
                Some((Monomial::new(exps), c.clone()))
            }),
        )
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The coefficient of `Π_{i ∈ mask} xᵢ`.
    pub fn coeff(&self, mask: usize) -> &C {
        &self.coeffs[mask]
    }

    /// The full subset-mask-indexed coefficient vector (length `2ⁿ`).
    pub fn coeffs(&self) -> &[C] {
        &self.coeffs
    }

    /// `true` iff all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(Coeff::is_zero)
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Multilinear<C>) -> Multilinear<C> {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        Multilinear {
            arity: self.arity,
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &Multilinear<C>) -> Multilinear<C> {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        Multilinear {
            arity: self.arity,
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a.sub(b))
                .collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, c: &C) -> Multilinear<C> {
        Multilinear {
            arity: self.arity,
            coeffs: self.coeffs.iter().map(|k| k.mul(c)).collect(),
        }
    }

    /// Partial derivative `∂/∂xᵢ` (still multilinear: the coefficient
    /// of `S` becomes the coefficient of `S ∪ {i}`).
    pub fn derivative(&self, i: usize) -> Multilinear<C> {
        assert!(i < self.arity, "variable index out of range");
        let bit = 1usize << i;
        Multilinear {
            arity: self.arity,
            coeffs: (0..self.coeffs.len())
                .map(|mask| {
                    if mask & bit == 0 {
                        self.coeffs[mask | bit].clone()
                    } else {
                        C::zero()
                    }
                })
                .collect(),
        }
    }

    /// Evaluates at a point in the coefficient ring.
    pub fn eval(&self, point: &[C]) -> C {
        assert_eq!(point.len(), self.arity, "evaluation point arity mismatch");
        let mut buf = self.coeffs.clone();
        contract(&mut buf, point, |a, x, b| a.add(&x.mul(b)));
        buf.swap_remove(0)
    }

    /// Evaluates at an `f64` point by per-axis contraction: `2ⁿ`
    /// multiply-adds, no per-monomial work.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        let mut buf: Vec<f64> = Vec::new();
        self.eval_f64_with(point, &mut buf)
    }

    /// As [`Self::eval_f64`], reusing `scratch` so repeated evaluations
    /// (solver probes) allocate nothing after the first call.
    pub fn eval_f64_with(&self, point: &[f64], scratch: &mut Vec<f64>) -> f64 {
        assert_eq!(point.len(), self.arity, "evaluation point arity mismatch");
        scratch.clear();
        scratch.extend(self.coeffs.iter().map(Coeff::to_f64));
        let mut len = scratch.len();
        for i in (0..self.arity).rev() {
            let half = len / 2;
            for m in 0..half {
                scratch[m] += point[i] * scratch[m + half];
            }
            len = half;
        }
        scratch[0]
    }

    /// Product of two multilinear polynomials, accumulated directly in
    /// the dense per-variable-degree-≤-2 layout ([`DensePow3`]) — the
    /// layout the solver's Bernstein tensor consumes. `O(t_a · t_b)`
    /// ring multiplies over the *non-zero* coefficients, with a flat
    /// array write instead of a term-map probe per product.
    pub fn mul(&self, other: &Multilinear<C>) -> DensePow3<C> {
        let mut out = DensePow3::zero(self.arity.max(other.arity));
        out.add_product(self, other);
        out
    }
}

/// Applies the per-axis contraction `buf[m] = op(buf[m], x_i, buf[m + half])`
/// folding the top axis first; leaves the result in `buf[0]`.
fn contract<C: Clone>(buf: &mut [C], point: &[C], op: impl Fn(&C, &C, &C) -> C) {
    let mut len = buf.len();
    for i in (0..point.len()).rev() {
        let half = len / 2;
        for m in 0..half {
            buf[m] = op(&buf[m], &point[i], &buf[m + half]);
        }
        len = half;
    }
}

/// A dense polynomial with per-variable degree ≤ 2, coefficient at
/// exponent vector `e` stored at index `Σ eᵢ·3ⁱ` — the exact shape of a
/// product of two multilinear polynomials, and the native layout of the
/// solver's Bernstein coefficient tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct DensePow3<C: Coeff> {
    arity: usize,
    coeffs: Vec<C>,
}

impl<C: Coeff> DensePow3<C> {
    /// Largest supported arity (`3ⁿ` coefficients; 12 keeps the vector
    /// ≤ ~532k entries, matching the Bernstein tensor guard).
    pub const MAX_ARITY: usize = 12;

    /// The zero polynomial.
    pub fn zero(arity: usize) -> DensePow3<C> {
        assert!(arity <= Self::MAX_ARITY, "arity {arity} exceeds pow3 limit");
        DensePow3 {
            arity,
            coeffs: vec![C::zero(); 3usize.pow(arity as u32)],
        }
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Coefficients indexed by `Σ eᵢ·3ⁱ`.
    pub fn coeffs(&self) -> &[C] {
        &self.coeffs
    }

    /// Accumulates `a · b` into this polynomial.
    pub fn add_product(&mut self, a: &Multilinear<C>, b: &Multilinear<C>) {
        assert!(
            a.arity <= self.arity && b.arity <= self.arity,
            "arity mismatch"
        );
        let idx3 = idx3_table(self.arity.max(1));
        for (s, ca) in a.coeffs.iter().enumerate() {
            if ca.is_zero() {
                continue;
            }
            let base = idx3[s] as usize;
            for (t, cb) in b.coeffs.iter().enumerate() {
                if cb.is_zero() {
                    continue;
                }
                let slot = base + idx3[t] as usize;
                self.coeffs[slot] = self.coeffs[slot].add(&ca.mul(cb));
            }
        }
    }

    /// Subtracts a multilinear polynomial in place.
    pub fn sub_multilinear(&mut self, m: &Multilinear<C>) {
        assert!(m.arity <= self.arity, "arity mismatch");
        let idx3 = idx3_table(self.arity.max(1));
        for (s, c) in m.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let slot = idx3[s] as usize;
            self.coeffs[slot] = self.coeffs[slot].sub(c);
        }
    }

    /// Converts to the sparse representation (zero terms dropped).
    pub fn to_polynomial(&self) -> Polynomial<C> {
        Polynomial::from_terms(
            self.arity,
            self.coeffs.iter().enumerate().filter_map(|(idx, c)| {
                if c.is_zero() {
                    return None;
                }
                let mut rest = idx;
                let exps: Vec<u32> = (0..self.arity)
                    .map(|_| {
                        let e = (rest % 3) as u32;
                        rest /= 3;
                        e
                    })
                    .collect();
                Some((Monomial::new(exps), c.clone()))
            }),
        )
    }
}

/// `idx3[mask] = Σ_{i ∈ mask} 3ⁱ`: where a multilinear subset-mask
/// lands in the base-3 dense layout.
fn idx3_table(n: usize) -> Vec<u32> {
    let pow3: Vec<u32> = (0..n).map(|i| 3u32.pow(i as u32)).collect();
    let mut idx3 = vec![0u32; 1 << n];
    for mask in 1..idx3.len() {
        let low = mask.trailing_zeros() as usize;
        idx3[mask] = idx3[mask & (mask - 1)] + pow3[low];
    }
    idx3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicator;
    use epi_num::Rational;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn set(n: usize, masks: &[u32]) -> WorldSet {
        WorldSet::from_indices(1 << n, masks.iter().copied())
    }

    #[test]
    fn from_set_matches_world_by_world_construction() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(211);
        for n in 1..=5 {
            for _ in 0..10 {
                let a = WorldSet::from_predicate(1 << n, |_| rng.gen());
                let dense = Multilinear::<Rational>::from_set(n, &a).to_polynomial();
                let legacy = indicator::prob_polynomial_generic::<Rational>(n, &a);
                assert_eq!(dense, legacy, "n={n} a={a:?}");
            }
        }
    }

    #[test]
    fn butterfly_small_cases() {
        // A = {1} over n = 1: P = x.
        let p = Multilinear::<f64>::from_set(1, &set(1, &[1]));
        assert_eq!(p.coeffs(), &[0.0, 1.0]);
        // A = {0} over n = 1: P = 1 − x.
        let p = Multilinear::<f64>::from_set(1, &set(1, &[0]));
        assert_eq!(p.coeffs(), &[1.0, -1.0]);
        // Full set: P ≡ 1.
        let p = Multilinear::<Rational>::from_set(3, &WorldSet::full(8));
        assert_eq!(p.coeff(0), &Rational::ONE);
        assert!(p.coeffs()[1..].iter().all(|c| c.is_zero()));
    }

    #[test]
    fn eval_via_contraction_matches_direct_sum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(223);
        let n = 6;
        let a = WorldSet::from_predicate(1 << n, |_| rng.gen());
        let ml = Multilinear::<f64>::from_set(n, &a);
        let point: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
        let direct: f64 = a
            .iter()
            .map(|w| {
                (0..n)
                    .map(|i| {
                        if w.0 >> i & 1 == 1 {
                            point[i]
                        } else {
                            1.0 - point[i]
                        }
                    })
                    .product::<f64>()
            })
            .sum();
        assert!((ml.eval_f64(&point) - direct).abs() < 1e-12);
        // Probabilities of complementary sets sum to 1.
        let co = Multilinear::<f64>::from_set(n, &a.complement());
        assert!((ml.eval_f64(&point) + co.eval_f64(&point) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_through_pow3_matches_sparse_pipeline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(227);
        for n in 1..=4 {
            for _ in 0..8 {
                let a = WorldSet::from_predicate(1 << n, |_| rng.gen());
                let b = WorldSet::from_predicate(1 << n, |_| rng.gen());
                let pa = Multilinear::<Rational>::from_set(n, &a);
                let pb = Multilinear::<Rational>::from_set(n, &b);
                let pab = Multilinear::<Rational>::from_set(n, &a.intersection(&b));
                let mut gap = pa.mul(&pb);
                gap.sub_multilinear(&pab);
                let legacy = indicator::safety_gap_polynomial_generic::<Rational>(n, &a, &b);
                assert_eq!(gap.to_polynomial(), legacy, "n={n}");
            }
        }
    }

    /// A random multilinear polynomial with small integer coefficients,
    /// alongside its sparse twin.
    fn random_pair(n: usize, coeffs: &[i64]) -> (Multilinear<Rational>, Polynomial<Rational>) {
        let mut ml = Multilinear::<Rational>::zero(n);
        for (mask, &c) in coeffs.iter().enumerate().take(1 << n) {
            ml.coeffs[mask] = Rational::from(i128::from(c));
        }
        let sparse = ml.to_polynomial();
        (ml, sparse)
    }

    proptest! {
        #[test]
        fn prop_add_sub_derivative_agree_with_sparse(
            ca in proptest::collection::vec(-9i64..9, 32),
            cb in proptest::collection::vec(-9i64..9, 32),
            var in 0usize..5,
        ) {
            let n = 5;
            let (ma, pa) = random_pair(n, &ca);
            let (mb, pb) = random_pair(n, &cb);
            prop_assert_eq!(ma.add(&mb).to_polynomial(), pa.add(&pb));
            prop_assert_eq!(ma.sub(&mb).to_polynomial(), pa.sub(&pb));
            prop_assert_eq!(ma.derivative(var).to_polynomial(), pa.derivative(var));
        }

        #[test]
        fn prop_mul_agrees_with_sparse(
            ca in proptest::collection::vec(-9i64..9, 16),
            cb in proptest::collection::vec(-9i64..9, 16),
        ) {
            let n = 4;
            let (ma, pa) = random_pair(n, &ca);
            let (mb, pb) = random_pair(n, &cb);
            prop_assert_eq!(ma.mul(&mb).to_polynomial(), pa.mul(&pb));
        }

        #[test]
        fn prop_eval_agrees_with_sparse(
            ca in proptest::collection::vec(-9i64..9, 32),
            point in proptest::collection::vec(0.0f64..1.0, 5),
        ) {
            let n = 5;
            let (ma, pa) = random_pair(n, &ca);
            prop_assert!((ma.eval_f64(&point) - pa.eval_f64(&point)).abs() < 1e-9);
        }

        #[test]
        fn prop_roundtrip_through_sparse(
            ca in proptest::collection::vec(-9i64..9, 32),
        ) {
            let n = 5;
            let (ma, pa) = random_pair(n, &ca);
            let back = Multilinear::from_polynomial(&pa).expect("multilinear");
            prop_assert_eq!(back, ma);
        }
    }

    #[test]
    fn exact_eval_in_the_rational_ring() {
        let (ml, sparse) = random_pair(3, &[1, -2, 3, 0, 5, 0, -1, 2]);
        let point = [
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(2, 5),
        ];
        let got = ml.eval(&point);
        let want = sparse
            .terms()
            .map(|(m, c)| {
                let mut acc = *c;
                for (i, &e) in m.exponents().iter().enumerate() {
                    for _ in 0..e {
                        acc *= point[i];
                    }
                }
                acc
            })
            .fold(Rational::ZERO, |a, b| a + b);
        assert_eq!(got, want);
    }
}
