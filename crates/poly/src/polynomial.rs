//! Sparse multivariate polynomials.

use crate::coeff::Coeff;
use crate::monomial::Monomial;
use epi_num::Interval;
use std::collections::BTreeMap;
use std::fmt;

/// A sparse multivariate polynomial with coefficients in `C`, stored as a
/// term map in graded-lex order.
///
/// # Examples
///
/// ```
/// use epi_poly::{Monomial, Polynomial};
/// // f(x, y) = x² − 2·x·y + 1 over f64
/// let f = Polynomial::<f64>::from_terms(
///     2,
///     [
///         (Monomial::new(vec![2, 0]), 1.0),
///         (Monomial::new(vec![1, 1]), -2.0),
///         (Monomial::one(2), 1.0),
///     ],
/// );
/// assert_eq!(f.eval_f64(&[3.0, 1.0]), 4.0);
/// assert_eq!(f.degree(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct Polynomial<C: Coeff> {
    arity: usize,
    terms: BTreeMap<Monomial, C>,
}

impl<C: Coeff> Polynomial<C> {
    /// The zero polynomial in `arity` variables.
    pub fn zero(arity: usize) -> Polynomial<C> {
        Polynomial {
            arity,
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial.
    pub fn constant(arity: usize, c: C) -> Polynomial<C> {
        let mut p = Polynomial::zero(arity);
        if !c.is_zero() {
            p.terms.insert(Monomial::one(arity), c);
        }
        p
    }

    /// The variable `xᵢ`.
    pub fn var(arity: usize, i: usize) -> Polynomial<C> {
        let mut p = Polynomial::zero(arity);
        p.terms.insert(Monomial::var(arity, i), C::one());
        p
    }

    /// Builds from explicit terms, combining duplicates and dropping zeros.
    pub fn from_terms<I: IntoIterator<Item = (Monomial, C)>>(
        arity: usize,
        terms: I,
    ) -> Polynomial<C> {
        let mut p = Polynomial::zero(arity);
        for (m, c) in terms {
            assert_eq!(m.arity(), arity, "term arity mismatch");
            p.add_term(m, c);
        }
        p
    }

    /// Adds a single term in place.
    pub fn add_term(&mut self, m: Monomial, c: C) {
        assert_eq!(m.arity(), self.arity, "term arity mismatch");
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(m);
        match entry {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let sum = o.get().add(&c);
                if sum.is_zero() {
                    o.remove();
                } else {
                    o.insert(sum);
                }
            }
        }
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The terms in graded-lex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &C)> {
        self.terms.iter()
    }

    /// Number of non-zero terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Largest exponent of variable `i` appearing in any term.
    pub fn degree_in(&self, i: usize) -> u32 {
        self.terms.keys().map(|m| m.exp(i)).max().unwrap_or(0)
    }

    /// `true` iff every term is multilinear (degree ≤ 1 in each variable).
    pub fn is_multilinear(&self) -> bool {
        self.terms.keys().all(Monomial::is_multilinear)
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Polynomial<C>) -> Polynomial<C> {
        assert_eq!(self.arity, other.arity, "polynomial arity mismatch");
        let mut out = self.clone();
        for (m, c) in &other.terms {
            out.add_term(m.clone(), c.clone());
        }
        out
    }

    /// Polynomial difference.
    pub fn sub(&self, other: &Polynomial<C>) -> Polynomial<C> {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Polynomial<C> {
        Polynomial {
            arity: self.arity,
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), c.neg()))
                .collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, c: &C) -> Polynomial<C> {
        if c.is_zero() {
            return Polynomial::zero(self.arity);
        }
        Polynomial {
            arity: self.arity,
            terms: self
                .terms
                .iter()
                .map(|(m, k)| (m.clone(), k.mul(c)))
                .collect(),
        }
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Polynomial<C>) -> Polynomial<C> {
        assert_eq!(self.arity, other.arity, "polynomial arity mismatch");
        let mut out = Polynomial::zero(self.arity);
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                out.add_term(m1.mul(m2), c1.mul(c2));
            }
        }
        out
    }

    /// Non-negative integer power by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> Polynomial<C> {
        let mut base = self.clone();
        let mut acc = Polynomial::constant(self.arity, C::one());
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Partial derivative `∂/∂xᵢ`.
    pub fn derivative(&self, i: usize) -> Polynomial<C> {
        assert!(i < self.arity, "variable index out of range");
        let mut out = Polynomial::zero(self.arity);
        for (m, c) in &self.terms {
            let e = m.exp(i);
            if e == 0 {
                continue;
            }
            let mut exps = m.exponents().to_vec();
            exps[i] -= 1;
            out.add_term(Monomial::new(exps), c.mul(&C::from_i64(i64::from(e))));
        }
        out
    }

    /// Substitutes `xᵢ := g` (a polynomial in the same variables).
    pub fn substitute(&self, i: usize, g: &Polynomial<C>) -> Polynomial<C> {
        assert!(i < self.arity);
        assert_eq!(g.arity(), self.arity, "substitution arity mismatch");
        let mut out = Polynomial::zero(self.arity);
        for (m, c) in &self.terms {
            let e = m.exp(i);
            let mut exps = m.exponents().to_vec();
            exps[i] = 0;
            let rest = Polynomial::from_terms(self.arity, [(Monomial::new(exps), c.clone())]);
            out = out.add(&rest.mul(&g.pow(e)));
        }
        out
    }

    /// Evaluates at an `f64` point (via `C::to_f64`).
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.arity, "evaluation point arity mismatch");
        self.terms
            .iter()
            .map(|(m, c)| c.to_f64() * m.eval_f64(point))
            .sum()
    }

    /// Rigorous interval range bound over a box (see
    /// `epi_num::Interval`): the true range of the polynomial over the box
    /// is contained in the returned interval.
    pub fn eval_interval(&self, bx: &[Interval]) -> Interval {
        assert_eq!(bx.len(), self.arity, "box arity mismatch");
        let mut acc = Interval::ZERO;
        for (m, c) in &self.terms {
            let mut term = Interval::point(c.to_f64()).widen();
            for (i, &e) in m.exponents().iter().enumerate() {
                if e > 0 {
                    term = term * bx[i].powi(e);
                }
            }
            acc = acc + term;
        }
        acc
    }

    /// Converts the coefficients into another ring.
    pub fn map_coeffs<D: Coeff>(&self, f: impl Fn(&C) -> D) -> Polynomial<D> {
        Polynomial {
            arity: self.arity,
            terms: self
                .terms
                .iter()
                .filter_map(|(m, c)| {
                    let d = f(c);
                    (!d.is_zero()).then(|| (m.clone(), d))
                })
                .collect(),
        }
    }
}

impl<C: Coeff> fmt::Debug for Polynomial<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{:?}·{}", c, m)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epi_num::Rational;
    use proptest::prelude::*;

    fn x() -> Polynomial<f64> {
        Polynomial::var(2, 0)
    }
    fn y() -> Polynomial<f64> {
        Polynomial::var(2, 1)
    }

    #[test]
    fn construction_and_eval() {
        // f = (x + y)² = x² + 2xy + y²
        let f = x().add(&y()).pow(2);
        assert_eq!(f.term_count(), 3);
        assert_eq!(f.degree(), 2);
        assert_eq!(f.eval_f64(&[2.0, 3.0]), 25.0);
    }

    #[test]
    fn cancellation_removes_terms() {
        let f = x().add(&y());
        let g = x().sub(&y());
        // (x+y)(x−y) = x² − y²
        let h = f.mul(&g);
        assert_eq!(h.term_count(), 2);
        assert_eq!(h.eval_f64(&[3.0, 2.0]), 5.0);
        // f − f = 0
        assert!(f.sub(&f).is_zero());
    }

    #[test]
    fn derivative_rules() {
        // d/dx (x²y + 3x) = 2xy + 3
        let f = x().pow(2).mul(&y()).add(&x().scale(&3.0));
        let df = f.derivative(0);
        assert_eq!(df.eval_f64(&[2.0, 5.0]), 2.0 * 2.0 * 5.0 + 3.0);
        // d/dy of the same: x²
        let dy = f.derivative(1);
        assert_eq!(dy.eval_f64(&[2.0, 5.0]), 4.0);
    }

    #[test]
    fn substitution() {
        // f(x,y) = x·y; x := y + 1 gives y² + y.
        let f = x().mul(&y());
        let g = f.substitute(0, &y().add(&Polynomial::constant(2, 1.0)));
        assert_eq!(g.eval_f64(&[0.0, 3.0]), 12.0);
        assert_eq!(g.degree(), 2);
    }

    #[test]
    fn exact_rational_arithmetic() {
        let x = Polynomial::<Rational>::var(1, 0);
        let half = Polynomial::constant(1, Rational::new(1, 2));
        // (x − ½)² = x² − x + ¼
        let f = x.sub(&half).pow(2);
        assert_eq!(f.term_count(), 3);
        let quarter = f
            .terms()
            .find(|(m, _)| m.degree() == 0)
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(quarter, Rational::new(1, 4));
    }

    #[test]
    fn degrees_and_multilinearity() {
        let f = x().mul(&y()).add(&x());
        assert!(f.is_multilinear());
        assert_eq!(f.degree_in(0), 1);
        let g = x().pow(3);
        assert!(!g.is_multilinear());
        assert_eq!(g.degree_in(0), 3);
        assert_eq!(g.degree_in(1), 0);
    }

    #[test]
    fn map_coeffs_roundtrip() {
        let f = x().scale(&0.5).add(&y().pow(2));
        let r = f.map_coeffs(|c| Rational::from_f64_exact(*c).unwrap());
        let back = r.map_coeffs(|c| c.to_f64());
        assert_eq!(f, back);
    }

    #[test]
    fn interval_eval_soundness_basic() {
        let f = x().mul(&y()).sub(&x().pow(2));
        let bx = [Interval::new(0.0, 1.0), Interval::new(-1.0, 2.0)];
        let range = f.eval_interval(&bx);
        for &(px, py) in &[(0.0, -1.0), (1.0, 2.0), (0.5, 0.5), (1.0, -1.0)] {
            assert!(range.contains(f.eval_f64(&[px, py])));
        }
    }

    proptest! {
        #[test]
        fn prop_mul_matches_eval(
            coeffs1 in proptest::collection::vec(-5i64..5, 4),
            coeffs2 in proptest::collection::vec(-5i64..5, 4),
            px in -2.0f64..2.0, py in -2.0f64..2.0
        ) {
            // Random quadratics in two variables.
            let basis = [
                Monomial::one(2),
                Monomial::var(2, 0),
                Monomial::var(2, 1),
                Monomial::new(vec![1, 1]),
            ];
            let f = Polynomial::<f64>::from_terms(
                2, basis.iter().cloned().zip(coeffs1.iter().map(|&c| c as f64)));
            let g = Polynomial::<f64>::from_terms(
                2, basis.iter().cloned().zip(coeffs2.iter().map(|&c| c as f64)));
            let fg = f.mul(&g);
            let direct = f.eval_f64(&[px, py]) * g.eval_f64(&[px, py]);
            prop_assert!((fg.eval_f64(&[px, py]) - direct).abs() < 1e-9);
        }

        #[test]
        fn prop_interval_eval_sound(
            coeffs in proptest::collection::vec(-3i64..3, 4),
            tx in 0.0f64..1.0, ty in 0.0f64..1.0
        ) {
            let basis = [
                Monomial::one(2),
                Monomial::new(vec![2, 0]),
                Monomial::new(vec![1, 1]),
                Monomial::new(vec![0, 2]),
            ];
            let f = Polynomial::<f64>::from_terms(
                2, basis.iter().cloned().zip(coeffs.iter().map(|&c| c as f64)));
            let bx = [Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)];
            let px = -1.0 + 2.0 * tx;
            let py = 2.0 * ty;
            prop_assert!(f.eval_interval(&bx).contains(f.eval_f64(&[px, py])));
        }

        #[test]
        fn prop_derivative_linear(
            c1 in -5i64..5, c2 in -5i64..5, px in -2.0f64..2.0
        ) {
            // d/dx (c1·x² + c2·x) = 2c1·x + c2
            let x = Polynomial::<f64>::var(1, 0);
            let f = x.pow(2).scale(&(c1 as f64)).add(&x.scale(&(c2 as f64)));
            let df = f.derivative(0);
            let expected = 2.0 * c1 as f64 * px + c2 as f64;
            prop_assert!((df.eval_f64(&[px]) - expected).abs() < 1e-9);
        }
    }
}
