//! x86_64 SSE2/AVX2 implementations of the subdivision kernel
//! primitives — the only module in the crate allowed to use `unsafe`.
//!
//! # Safety argument
//!
//! Three classes of `unsafe` appear here, each with a local invariant:
//!
//! 1. **Instruction availability.** SSE2 is part of the x86_64 baseline
//!    ABI, so [`Sse2K`] needs no runtime gate. Every AVX2 entry point is
//!    an `#[target_feature(enable = "avx2")]` function reached only
//!    through [`Avx2K`], which the dispatcher in
//!    [`subdivision`](crate::subdivision) selects only after
//!    `is_x86_feature_detected!("avx2")` succeeds (enforced again here
//!    by a debug assertion).
//! 2. **Raw loads/stores.** Every pointer is derived from a slice whose
//!    length the loop bound checks *before* the access; the overlapping
//!    triple loads in `swing3` stop one full vector short of the slice
//!    end and finish with scalar code.
//! 3. **No aliasing surprises.** Sources are `&[f64]`, destinations
//!    `&mut [f64]`; Rust's borrow rules already make them disjoint, the
//!    intrinsics just read/write through them unchecked.
//!
//! Results are **bit-identical** to [`ScalarK`](crate::subdivision): the
//! arithmetic kernels evaluate the same expression trees (same
//! association, no FMA anywhere — only `add`/`mul` intrinsics), and the
//! reductions are order-free for finite inputs after `-0.0`
//! canonicalization, exactly as argued in the `subdivision` module docs.

#![allow(unsafe_code)]

use crate::subdivision::{canon, max_sd, min_sd, Kern};
use core::arch::x86_64::*;

/// `|x|` per lane: clear the sign bit.
#[inline(always)]
unsafe fn abs_pd(x: __m128d) -> __m128d {
    _mm_andnot_pd(_mm_set1_pd(-0.0), x)
}

#[inline(always)]
unsafe fn abs256_pd(x: __m256d) -> __m256d {
    _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
}

/// Horizontal min of both lanes with `minsd` semantics.
#[inline(always)]
unsafe fn hmin_pd(v: __m128d) -> f64 {
    min_sd(_mm_cvtsd_f64(v), _mm_cvtsd_f64(_mm_unpackhi_pd(v, v)))
}

#[inline(always)]
unsafe fn hmax_pd(v: __m128d) -> f64 {
    max_sd(_mm_cvtsd_f64(v), _mm_cvtsd_f64(_mm_unpackhi_pd(v, v)))
}

#[inline(always)]
unsafe fn hmin256_pd(v: __m256d) -> f64 {
    hmin_pd(_mm_min_pd(
        _mm256_castpd256_pd128(v),
        _mm256_extractf128_pd(v, 1),
    ))
}

#[inline(always)]
unsafe fn hmax256_pd(v: __m256d) -> f64 {
    hmax_pd(_mm_max_pd(
        _mm256_castpd256_pd128(v),
        _mm256_extractf128_pd(v, 1),
    ))
}

/// 128-bit SSE2 kernels. SSE2 is unconditionally present on x86_64, so
/// these are plain (internally unsafe) functions with no feature gate.
pub(crate) struct Sse2K;

impl Kern for Sse2K {
    fn range(data: &[f64]) -> (f64, f64) {
        // SAFETY: all loads are at `i`/`i + 2` with `i + 4 <= len`.
        unsafe {
            let ptr = data.as_ptr();
            let len = data.len();
            let mut vmin0 = _mm_set1_pd(f64::INFINITY);
            let mut vmin1 = vmin0;
            let mut vmax0 = _mm_set1_pd(f64::NEG_INFINITY);
            let mut vmax1 = vmax0;
            let mut i = 0usize;
            while i + 4 <= len {
                let a = _mm_loadu_pd(ptr.add(i));
                let b = _mm_loadu_pd(ptr.add(i + 2));
                vmin0 = _mm_min_pd(vmin0, a);
                vmax0 = _mm_max_pd(vmax0, a);
                vmin1 = _mm_min_pd(vmin1, b);
                vmax1 = _mm_max_pd(vmax1, b);
                i += 4;
            }
            let mut mn = hmin_pd(_mm_min_pd(vmin0, vmin1));
            let mut mx = hmax_pd(_mm_max_pd(vmax0, vmax1));
            while i < len {
                mn = min_sd(mn, data[i]);
                mx = max_sd(mx, data[i]);
                i += 1;
            }
            (canon(mn), canon(mx))
        }
    }

    fn swing3(data: &[f64]) -> f64 {
        // Overlapping loads turn each stride-1 triple (b0, b1, b2) into
        // [b0,b1] and [b1,b2]; one subtraction yields both adjacent
        // differences. The last triple loads up to index `len - 1 + 1`
        // (exclusive end `len`), still in bounds.
        // SAFETY: loads at `t`/`t + 1` with `t + 3 <= len`, so the
        // two-lane loads end at most at `t + 3 == len`.
        unsafe {
            let ptr = data.as_ptr();
            let mut acc = _mm_setzero_pd();
            let mut t = 0usize;
            while t + 3 <= data.len() {
                let a = _mm_loadu_pd(ptr.add(t));
                let b = _mm_loadu_pd(ptr.add(t + 1));
                acc = _mm_max_pd(acc, abs_pd(_mm_sub_pd(b, a)));
                t += 3;
            }
            hmax_pd(acc)
        }
    }

    fn swing_axis(data: &[f64], stride: usize) -> f64 {
        let block = stride * 3;
        // SAFETY: slab pointers p0/p1/p2 are `base`, `base + stride`,
        // `base + 2·stride` with `base + block <= len`; inner loads stop
        // at `j + 2 <= stride`.
        unsafe {
            let ptr = data.as_ptr();
            let mut acc = _mm_setzero_pd();
            let mut tail = 0.0f64;
            let mut base = 0usize;
            while base + block <= data.len() {
                let p0 = ptr.add(base);
                let p1 = ptr.add(base + stride);
                let p2 = ptr.add(base + 2 * stride);
                let mut j = 0usize;
                while j + 2 <= stride {
                    let v0 = _mm_loadu_pd(p0.add(j));
                    let v1 = _mm_loadu_pd(p1.add(j));
                    let v2 = _mm_loadu_pd(p2.add(j));
                    acc = _mm_max_pd(acc, abs_pd(_mm_sub_pd(v1, v0)));
                    acc = _mm_max_pd(acc, abs_pd(_mm_sub_pd(v2, v1)));
                    j += 2;
                }
                while j < stride {
                    let (b0, b1, b2) = (*p0.add(j), *p1.add(j), *p2.add(j));
                    tail = max_sd(tail, (b1 - b0).abs());
                    tail = max_sd(tail, (b2 - b1).abs());
                    j += 1;
                }
                base += block;
            }
            max_sd(hmax_pd(acc), tail)
        }
    }

    fn contract(src: &[f64], dst: &mut [f64]) {
        debug_assert_eq!(src.len(), dst.len() * 3);
        let quarter = unsafe { _mm_set1_pd(0.25) };
        let half = unsafe { _mm_set1_pd(0.5) };
        // Two triples per iteration: load [x0..x5], shuffle into
        // a = [x0,x3], b = [x1,x4], c = [x2,x5], then the exact scalar
        // expression `(0.25·a + 0.5·b) + 0.25·c` per lane.
        // SAFETY: reads `r .. r + 6` with `r + 6 <= src.len()`, writes
        // `w .. w + 2` with `w + 2 <= dst.len()` (w = r / 3).
        unsafe {
            let sp = src.as_ptr();
            let dp = dst.as_mut_ptr();
            let mut r = 0usize;
            let mut w = 0usize;
            while r + 6 <= src.len() {
                let y0 = _mm_loadu_pd(sp.add(r));
                let y1 = _mm_loadu_pd(sp.add(r + 2));
                let y2 = _mm_loadu_pd(sp.add(r + 4));
                let a = _mm_shuffle_pd(y0, y1, 0b10);
                let b = _mm_shuffle_pd(y0, y2, 0b01);
                let c = _mm_shuffle_pd(y1, y2, 0b10);
                let acc = _mm_add_pd(
                    _mm_add_pd(_mm_mul_pd(quarter, a), _mm_mul_pd(half, b)),
                    _mm_mul_pd(quarter, c),
                );
                _mm_storeu_pd(dp.add(w), acc);
                r += 6;
                w += 2;
            }
            if w < dst.len() {
                dst[w] = 0.25 * src[r] + 0.5 * src[r + 1] + 0.25 * src[r + 2];
            }
        }
    }

    fn split(parent: &[f64], stride: usize, left: &mut [f64], right: &mut [f64]) -> (f64, f64) {
        // SAFETY: every load/store window is bounds-checked by the loop
        // conditions exactly as in `contract`/`swing_axis`; `left` and
        // `right` are pre-sized to `parent.len()` by the driver.
        unsafe {
            let half = _mm_set1_pd(0.5);
            let mut lminv = _mm_set1_pd(f64::INFINITY);
            let mut rminv = lminv;
            let mut lmin = f64::INFINITY;
            let mut rmin = f64::INFINITY;
            let pp = parent.as_ptr();
            let lp = left.as_mut_ptr();
            let rp = right.as_mut_ptr();
            if stride == 1 {
                // Two interleaved triples per iteration: deinterleave
                // with the same shuffles as `contract`, reinterleave the
                // six output values with unpack/shuffle pairs.
                let mut i = 0usize;
                while i + 6 <= parent.len() {
                    let y0 = _mm_loadu_pd(pp.add(i));
                    let y1 = _mm_loadu_pd(pp.add(i + 2));
                    let y2 = _mm_loadu_pd(pp.add(i + 4));
                    let b0 = _mm_shuffle_pd(y0, y1, 0b10);
                    let b1 = _mm_shuffle_pd(y0, y2, 0b01);
                    let b2 = _mm_shuffle_pd(y1, y2, 0b10);
                    let m01 = _mm_mul_pd(half, _mm_add_pd(b0, b1));
                    let m12 = _mm_mul_pd(half, _mm_add_pd(b1, b2));
                    let c = _mm_mul_pd(half, _mm_add_pd(m01, m12));
                    _mm_storeu_pd(lp.add(i), _mm_unpacklo_pd(b0, m01));
                    _mm_storeu_pd(lp.add(i + 2), _mm_shuffle_pd(c, b0, 0b10));
                    _mm_storeu_pd(lp.add(i + 4), _mm_unpackhi_pd(m01, c));
                    _mm_storeu_pd(rp.add(i), _mm_unpacklo_pd(c, m12));
                    _mm_storeu_pd(rp.add(i + 2), _mm_shuffle_pd(b2, c, 0b10));
                    _mm_storeu_pd(rp.add(i + 4), _mm_unpackhi_pd(m12, b2));
                    lminv = _mm_min_pd(lminv, _mm_min_pd(_mm_min_pd(b0, m01), c));
                    rminv = _mm_min_pd(rminv, _mm_min_pd(_mm_min_pd(c, m12), b2));
                    i += 6;
                }
                if i < parent.len() {
                    let (b0, b1, b2) = (parent[i], parent[i + 1], parent[i + 2]);
                    let m01 = 0.5 * (b0 + b1);
                    let m12 = 0.5 * (b1 + b2);
                    let c = 0.5 * (m01 + m12);
                    left[i] = b0;
                    left[i + 1] = m01;
                    left[i + 2] = c;
                    right[i] = c;
                    right[i + 1] = m12;
                    right[i + 2] = b2;
                    lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                    rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
                }
            } else {
                let block = stride * 3;
                let mut base = 0usize;
                while base + block <= parent.len() {
                    let p0 = pp.add(base);
                    let p1 = pp.add(base + stride);
                    let p2 = pp.add(base + 2 * stride);
                    let mut j = 0usize;
                    while j + 2 <= stride {
                        let b0 = _mm_loadu_pd(p0.add(j));
                        let b1 = _mm_loadu_pd(p1.add(j));
                        let b2 = _mm_loadu_pd(p2.add(j));
                        let m01 = _mm_mul_pd(half, _mm_add_pd(b0, b1));
                        let m12 = _mm_mul_pd(half, _mm_add_pd(b1, b2));
                        let c = _mm_mul_pd(half, _mm_add_pd(m01, m12));
                        _mm_storeu_pd(lp.add(base + j), b0);
                        _mm_storeu_pd(lp.add(base + stride + j), m01);
                        _mm_storeu_pd(lp.add(base + 2 * stride + j), c);
                        _mm_storeu_pd(rp.add(base + j), c);
                        _mm_storeu_pd(rp.add(base + stride + j), m12);
                        _mm_storeu_pd(rp.add(base + 2 * stride + j), b2);
                        lminv = _mm_min_pd(lminv, _mm_min_pd(_mm_min_pd(b0, m01), c));
                        rminv = _mm_min_pd(rminv, _mm_min_pd(_mm_min_pd(c, m12), b2));
                        j += 2;
                    }
                    while j < stride {
                        let (b0, b1, b2) = (*p0.add(j), *p1.add(j), *p2.add(j));
                        let m01 = 0.5 * (b0 + b1);
                        let m12 = 0.5 * (b1 + b2);
                        let c = 0.5 * (m01 + m12);
                        left[base + j] = b0;
                        left[base + stride + j] = m01;
                        left[base + 2 * stride + j] = c;
                        right[base + j] = c;
                        right[base + stride + j] = m12;
                        right[base + 2 * stride + j] = b2;
                        lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                        rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
                        j += 1;
                    }
                    base += block;
                }
            }
            (
                canon(min_sd(lmin, hmin_pd(lminv))),
                canon(min_sd(rmin, hmin_pd(rminv))),
            )
        }
    }

    fn split_inplace(left: &mut [f64], stride: usize, right: &mut [f64]) -> (f64, f64) {
        // SAFETY: bounds exactly as in `split`. The parent is read and
        // overwritten through the *same* `left` pointer: every window's
        // loads complete before any of its stores, and windows never
        // overlap, so each element is read before it can be clobbered.
        unsafe {
            let half = _mm_set1_pd(0.5);
            let mut lminv = _mm_set1_pd(f64::INFINITY);
            let mut rminv = lminv;
            let mut lmin = f64::INFINITY;
            let mut rmin = f64::INFINITY;
            let lp = left.as_mut_ptr();
            let rp = right.as_mut_ptr();
            if stride == 1 {
                // Interleaved triples: same shuffles as `split`, with
                // the stores landing back over the load window (the
                // vectors mix `b0` into every store, so all six go out).
                let mut i = 0usize;
                while i + 6 <= left.len() {
                    let y0 = _mm_loadu_pd(lp.add(i));
                    let y1 = _mm_loadu_pd(lp.add(i + 2));
                    let y2 = _mm_loadu_pd(lp.add(i + 4));
                    let b0 = _mm_shuffle_pd(y0, y1, 0b10);
                    let b1 = _mm_shuffle_pd(y0, y2, 0b01);
                    let b2 = _mm_shuffle_pd(y1, y2, 0b10);
                    let m01 = _mm_mul_pd(half, _mm_add_pd(b0, b1));
                    let m12 = _mm_mul_pd(half, _mm_add_pd(b1, b2));
                    let c = _mm_mul_pd(half, _mm_add_pd(m01, m12));
                    _mm_storeu_pd(lp.add(i), _mm_unpacklo_pd(b0, m01));
                    _mm_storeu_pd(lp.add(i + 2), _mm_shuffle_pd(c, b0, 0b10));
                    _mm_storeu_pd(lp.add(i + 4), _mm_unpackhi_pd(m01, c));
                    _mm_storeu_pd(rp.add(i), _mm_unpacklo_pd(c, m12));
                    _mm_storeu_pd(rp.add(i + 2), _mm_shuffle_pd(b2, c, 0b10));
                    _mm_storeu_pd(rp.add(i + 4), _mm_unpackhi_pd(m12, b2));
                    lminv = _mm_min_pd(lminv, _mm_min_pd(_mm_min_pd(b0, m01), c));
                    rminv = _mm_min_pd(rminv, _mm_min_pd(_mm_min_pd(c, m12), b2));
                    i += 6;
                }
                if i < left.len() {
                    let (b0, b1, b2) = (left[i], left[i + 1], left[i + 2]);
                    let m01 = 0.5 * (b0 + b1);
                    let m12 = 0.5 * (b1 + b2);
                    let c = 0.5 * (m01 + m12);
                    left[i + 1] = m01;
                    left[i + 2] = c;
                    right[i] = c;
                    right[i + 1] = m12;
                    right[i + 2] = b2;
                    lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                    rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
                }
            } else {
                let block = stride * 3;
                let mut base = 0usize;
                while base + block <= left.len() {
                    let p0 = lp.add(base);
                    let p1 = lp.add(base + stride);
                    let p2 = lp.add(base + 2 * stride);
                    let mut j = 0usize;
                    while j + 2 <= stride {
                        let b0 = _mm_loadu_pd(p0.add(j));
                        let b1 = _mm_loadu_pd(p1.add(j));
                        let b2 = _mm_loadu_pd(p2.add(j));
                        let m01 = _mm_mul_pd(half, _mm_add_pd(b0, b1));
                        let m12 = _mm_mul_pd(half, _mm_add_pd(b1, b2));
                        let c = _mm_mul_pd(half, _mm_add_pd(m01, m12));
                        // `b0` stays put — no store to `p0`.
                        _mm_storeu_pd(p1.add(j), m01);
                        _mm_storeu_pd(p2.add(j), c);
                        _mm_storeu_pd(rp.add(base + j), c);
                        _mm_storeu_pd(rp.add(base + stride + j), m12);
                        _mm_storeu_pd(rp.add(base + 2 * stride + j), b2);
                        lminv = _mm_min_pd(lminv, _mm_min_pd(_mm_min_pd(b0, m01), c));
                        rminv = _mm_min_pd(rminv, _mm_min_pd(_mm_min_pd(c, m12), b2));
                        j += 2;
                    }
                    while j < stride {
                        let (b0, b1, b2) = (*p0.add(j), *p1.add(j), *p2.add(j));
                        let m01 = 0.5 * (b0 + b1);
                        let m12 = 0.5 * (b1 + b2);
                        let c = 0.5 * (m01 + m12);
                        *p1.add(j) = m01;
                        *p2.add(j) = c;
                        right[base + j] = c;
                        right[base + stride + j] = m12;
                        right[base + 2 * stride + j] = b2;
                        lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                        rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
                        j += 1;
                    }
                    base += block;
                }
            }
            (
                canon(min_sd(lmin, hmin_pd(lminv))),
                canon(min_sd(rmin, hmin_pd(rminv))),
            )
        }
    }
}

/// 256-bit AVX2 kernels; only dispatched after
/// `is_x86_feature_detected!("avx2")`.
pub(crate) struct Avx2K;

#[target_feature(enable = "avx2")]
unsafe fn range_avx2(data: &[f64]) -> (f64, f64) {
    let ptr = data.as_ptr();
    let len = data.len();
    let mut vmin0 = _mm256_set1_pd(f64::INFINITY);
    let mut vmin1 = vmin0;
    let mut vmax0 = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut vmax1 = vmax0;
    let mut i = 0usize;
    while i + 8 <= len {
        let a = _mm256_loadu_pd(ptr.add(i));
        let b = _mm256_loadu_pd(ptr.add(i + 4));
        vmin0 = _mm256_min_pd(vmin0, a);
        vmax0 = _mm256_max_pd(vmax0, a);
        vmin1 = _mm256_min_pd(vmin1, b);
        vmax1 = _mm256_max_pd(vmax1, b);
        i += 8;
    }
    if i + 4 <= len {
        let a = _mm256_loadu_pd(ptr.add(i));
        vmin0 = _mm256_min_pd(vmin0, a);
        vmax0 = _mm256_max_pd(vmax0, a);
        i += 4;
    }
    let mut mn = hmin256_pd(_mm256_min_pd(vmin0, vmin1));
    let mut mx = hmax256_pd(_mm256_max_pd(vmax0, vmax1));
    while i < len {
        mn = min_sd(mn, data[i]);
        mx = max_sd(mx, data[i]);
        i += 1;
    }
    (canon(mn), canon(mx))
}

#[target_feature(enable = "avx2")]
unsafe fn swing3_avx2(data: &[f64]) -> f64 {
    // Four adjacent differences per load pair, with the lane that
    // straddles two triples (|t[0] − s[2]| for consecutive triples s, t)
    // masked out: within a 12-element chunk the valid-difference masks at
    // offsets 0/4/8 are [1,1,0,1], [1,0,1,1], [0,1,1,0]. The chunk loop
    // stops before the final chunk (whose offset-8 load would read one
    // element past the end) and scalar triples finish the remainder.
    let m0 = _mm256_castsi256_pd(_mm256_setr_epi64x(-1, -1, 0, -1));
    let m1 = _mm256_castsi256_pd(_mm256_setr_epi64x(-1, 0, -1, -1));
    let m2 = _mm256_castsi256_pd(_mm256_setr_epi64x(0, -1, -1, 0));
    let ptr = data.as_ptr();
    let len = data.len();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 12 < len {
        for (off, mask) in [(0usize, m0), (4, m1), (8, m2)] {
            let a = _mm256_loadu_pd(ptr.add(i + off));
            let b = _mm256_loadu_pd(ptr.add(i + off + 1));
            acc = _mm256_max_pd(acc, _mm256_and_pd(abs256_pd(_mm256_sub_pd(b, a)), mask));
        }
        i += 12;
    }
    let mut tail = 0.0f64;
    while i + 3 <= len {
        let (b0, b1, b2) = (data[i], data[i + 1], data[i + 2]);
        tail = max_sd(tail, (b1 - b0).abs());
        tail = max_sd(tail, (b2 - b1).abs());
        i += 3;
    }
    max_sd(hmax256_pd(acc), tail)
}

#[target_feature(enable = "avx2")]
unsafe fn swing_axis_avx2(data: &[f64], stride: usize) -> f64 {
    let block = stride * 3;
    let ptr = data.as_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut tail = 0.0f64;
    let mut base = 0usize;
    while base + block <= data.len() {
        let p0 = ptr.add(base);
        let p1 = ptr.add(base + stride);
        let p2 = ptr.add(base + 2 * stride);
        let mut j = 0usize;
        while j + 4 <= stride {
            let v0 = _mm256_loadu_pd(p0.add(j));
            let v1 = _mm256_loadu_pd(p1.add(j));
            let v2 = _mm256_loadu_pd(p2.add(j));
            acc = _mm256_max_pd(acc, abs256_pd(_mm256_sub_pd(v1, v0)));
            acc = _mm256_max_pd(acc, abs256_pd(_mm256_sub_pd(v2, v1)));
            j += 4;
        }
        while j < stride {
            let (b0, b1, b2) = (*p0.add(j), *p1.add(j), *p2.add(j));
            tail = max_sd(tail, (b1 - b0).abs());
            tail = max_sd(tail, (b2 - b1).abs());
            j += 1;
        }
        base += block;
    }
    max_sd(hmax256_pd(acc), tail)
}

#[target_feature(enable = "avx2")]
unsafe fn split_slab_avx2(
    parent: &[f64],
    stride: usize,
    left: &mut [f64],
    right: &mut [f64],
) -> (f64, f64) {
    let half = _mm256_set1_pd(0.5);
    let mut lminv = _mm256_set1_pd(f64::INFINITY);
    let mut rminv = lminv;
    let mut lmin = f64::INFINITY;
    let mut rmin = f64::INFINITY;
    let pp = parent.as_ptr();
    let lp = left.as_mut_ptr();
    let rp = right.as_mut_ptr();
    let block = stride * 3;
    let mut base = 0usize;
    while base + block <= parent.len() {
        let p0 = pp.add(base);
        let p1 = pp.add(base + stride);
        let p2 = pp.add(base + 2 * stride);
        let mut j = 0usize;
        while j + 4 <= stride {
            let b0 = _mm256_loadu_pd(p0.add(j));
            let b1 = _mm256_loadu_pd(p1.add(j));
            let b2 = _mm256_loadu_pd(p2.add(j));
            let m01 = _mm256_mul_pd(half, _mm256_add_pd(b0, b1));
            let m12 = _mm256_mul_pd(half, _mm256_add_pd(b1, b2));
            let c = _mm256_mul_pd(half, _mm256_add_pd(m01, m12));
            _mm256_storeu_pd(lp.add(base + j), b0);
            _mm256_storeu_pd(lp.add(base + stride + j), m01);
            _mm256_storeu_pd(lp.add(base + 2 * stride + j), c);
            _mm256_storeu_pd(rp.add(base + j), c);
            _mm256_storeu_pd(rp.add(base + stride + j), m12);
            _mm256_storeu_pd(rp.add(base + 2 * stride + j), b2);
            lminv = _mm256_min_pd(lminv, _mm256_min_pd(_mm256_min_pd(b0, m01), c));
            rminv = _mm256_min_pd(rminv, _mm256_min_pd(_mm256_min_pd(c, m12), b2));
            j += 4;
        }
        while j < stride {
            let (b0, b1, b2) = (*p0.add(j), *p1.add(j), *p2.add(j));
            let m01 = 0.5 * (b0 + b1);
            let m12 = 0.5 * (b1 + b2);
            let c = 0.5 * (m01 + m12);
            left[base + j] = b0;
            left[base + stride + j] = m01;
            left[base + 2 * stride + j] = c;
            right[base + j] = c;
            right[base + stride + j] = m12;
            right[base + 2 * stride + j] = b2;
            lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
            rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
            j += 1;
        }
        base += block;
    }
    (
        canon(min_sd(lmin, hmin256_pd(lminv))),
        canon(min_sd(rmin, hmin256_pd(rminv))),
    )
}

#[target_feature(enable = "avx2")]
unsafe fn split_slab_inplace_avx2(
    left: &mut [f64],
    stride: usize,
    right: &mut [f64],
) -> (f64, f64) {
    let half = _mm256_set1_pd(0.5);
    let mut lminv = _mm256_set1_pd(f64::INFINITY);
    let mut rminv = lminv;
    let mut lmin = f64::INFINITY;
    let mut rmin = f64::INFINITY;
    let lp = left.as_mut_ptr();
    let rp = right.as_mut_ptr();
    let block = stride * 3;
    let mut base = 0usize;
    while base + block <= left.len() {
        let p0 = lp.add(base);
        let p1 = lp.add(base + stride);
        let p2 = lp.add(base + 2 * stride);
        let mut j = 0usize;
        while j + 4 <= stride {
            let b0 = _mm256_loadu_pd(p0.add(j));
            let b1 = _mm256_loadu_pd(p1.add(j));
            let b2 = _mm256_loadu_pd(p2.add(j));
            let m01 = _mm256_mul_pd(half, _mm256_add_pd(b0, b1));
            let m12 = _mm256_mul_pd(half, _mm256_add_pd(b1, b2));
            let c = _mm256_mul_pd(half, _mm256_add_pd(m01, m12));
            // `b0` stays put — no store to `p0`.
            _mm256_storeu_pd(p1.add(j), m01);
            _mm256_storeu_pd(p2.add(j), c);
            _mm256_storeu_pd(rp.add(base + j), c);
            _mm256_storeu_pd(rp.add(base + stride + j), m12);
            _mm256_storeu_pd(rp.add(base + 2 * stride + j), b2);
            lminv = _mm256_min_pd(lminv, _mm256_min_pd(_mm256_min_pd(b0, m01), c));
            rminv = _mm256_min_pd(rminv, _mm256_min_pd(_mm256_min_pd(c, m12), b2));
            j += 4;
        }
        while j < stride {
            let (b0, b1, b2) = (*p0.add(j), *p1.add(j), *p2.add(j));
            let m01 = 0.5 * (b0 + b1);
            let m12 = 0.5 * (b1 + b2);
            let c = 0.5 * (m01 + m12);
            *p1.add(j) = m01;
            *p2.add(j) = c;
            right[base + j] = c;
            right[base + stride + j] = m12;
            right[base + 2 * stride + j] = b2;
            lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
            rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
            j += 1;
        }
        base += block;
    }
    (
        canon(min_sd(lmin, hmin256_pd(lminv))),
        canon(min_sd(rmin, hmin256_pd(rminv))),
    )
}

#[inline(always)]
fn assert_avx2() {
    debug_assert!(
        std::arch::is_x86_feature_detected!("avx2"),
        "Avx2K dispatched without AVX2 support"
    );
}

impl Kern for Avx2K {
    fn range(data: &[f64]) -> (f64, f64) {
        assert_avx2();
        // SAFETY: AVX2 verified by the dispatcher (and debug-asserted
        // above); bounds as in the SSE2 version, 4 lanes wide.
        unsafe { range_avx2(data) }
    }

    fn swing3(data: &[f64]) -> f64 {
        assert_avx2();
        // SAFETY: AVX2 verified by the dispatcher; the chunk loop stops
        // while a full 13-element window remains, see the function body.
        unsafe { swing3_avx2(data) }
    }

    fn swing_axis(data: &[f64], stride: usize) -> f64 {
        if stride < 4 {
            return Sse2K::swing_axis(data, stride);
        }
        assert_avx2();
        // SAFETY: AVX2 verified by the dispatcher; bounds as in SSE2.
        unsafe { swing_axis_avx2(data, stride) }
    }

    fn contract(src: &[f64], dst: &mut [f64]) {
        // The 6→2 shuffle dance doesn't widen profitably to 256 bits
        // (cross-lane permutes cost more than they save at these sizes);
        // the 128-bit kernel already saturates the port budget.
        Sse2K::contract(src, dst);
    }

    fn split(parent: &[f64], stride: usize, left: &mut [f64], right: &mut [f64]) -> (f64, f64) {
        if stride < 4 {
            // Axis 0 (interleaved) and stride-3 slabs stay on the
            // shuffle-based 128-bit path.
            return Sse2K::split(parent, stride, left, right);
        }
        assert_avx2();
        // SAFETY: AVX2 verified by the dispatcher; bounds as in SSE2.
        unsafe { split_slab_avx2(parent, stride, left, right) }
    }

    fn split_inplace(left: &mut [f64], stride: usize, right: &mut [f64]) -> (f64, f64) {
        if stride < 4 {
            // Axis 0 (interleaved) and stride-3 slabs stay on the
            // shuffle-based 128-bit path.
            return Sse2K::split_inplace(left, stride, right);
        }
        assert_avx2();
        // SAFETY: AVX2 verified by the dispatcher; per-window loads
        // precede the stores that overwrite them, as in the SSE2
        // in-place kernel.
        unsafe { split_slab_inplace_avx2(left, stride, right) }
    }
}
