//! Bernstein subdivision kernels: de Casteljau halving, range scans and
//! split-axis heuristics over dense coefficient tensors.
//!
//! The branch-and-bound solver keeps every open box as the Bernstein
//! coefficient tensor of the gap polynomial *restricted to that box*.
//! Splitting a box in half along one axis then never re-derives the
//! children from the root polynomial: the **de Casteljau algorithm at
//! `t = ½`** produces both children's exact coefficient tensors in a
//! single `O(3ⁿ)` pass over the parent's — versus the `O(n·3ⁿ)` affine
//! re-substitution (plus two fresh allocations) of the recompute path.
//!
//! All kernels here operate on raw `&[f64]` tensors in the [`DensePow3`]
//! index layout (`coeffs[Σ kᵢ·3ⁱ]`, per-variable degree ≤ 2) or the
//! [`Multilinear`] subset-mask layout (degree ≤ 1, `2ⁿ` corner values),
//! so callers can route the buffers through arenas without this crate
//! knowing about them.
//!
//! [`DensePow3`]: crate::DensePow3
//! [`Multilinear`]: crate::Multilinear

use crate::{Coeff, Multilinear};

/// Converts a degree-≤2 tensor from the power basis to the Bernstein
/// basis over `[0,1]ⁿ`, in place: per axis,
/// `(b₀, b₁, b₂) = (a₀, a₀ + a₁/2, a₀ + a₁ + a₂)`.
pub fn pow3_to_bernstein(coeffs: &mut [f64], n: usize) {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    let mut stride = 1usize;
    for _ in 0..n {
        let block = stride * 3;
        for base in (0..coeffs.len()).step_by(block) {
            for inner in 0..stride {
                let i0 = base + inner;
                let i1 = i0 + stride;
                let i2 = i1 + stride;
                let (a0, a1, a2) = (coeffs[i0], coeffs[i1], coeffs[i2]);
                coeffs[i0] = a0;
                coeffs[i1] = a0 + 0.5 * a1;
                coeffs[i2] = a0 + a1 + a2;
            }
        }
        stride *= 3;
    }
}

/// De Casteljau halving of a degree-≤2 Bernstein tensor along `dim`:
/// writes both children's tensors in one pass over the parent.
///
/// Per axis-`dim` triple `(b₀, b₁, b₂)` the children are
/// `left = (b₀, (b₀+b₁)/2, (b₀+2b₁+b₂)/4)` and
/// `right = ((b₀+2b₁+b₂)/4, (b₁+b₂)/2, b₂)` — all divisions by powers of
/// two, so the halving is *exact* while coefficients stay within f64
/// dyadic range.
///
/// `left`/`right` are cleared and resized; pass recycled buffers to keep
/// the hot path allocation-free.
pub fn split_halves(
    parent: &[f64],
    n: usize,
    dim: usize,
    left: &mut Vec<f64>,
    right: &mut Vec<f64>,
) {
    debug_assert_eq!(parent.len(), 3usize.pow(n as u32));
    debug_assert!(dim < n);
    let len = parent.len();
    left.clear();
    left.resize(len, 0.0);
    right.clear();
    right.resize(len, 0.0);
    let stride = 3usize.pow(dim as u32);
    let block = stride * 3;
    for base in (0..len).step_by(block) {
        for inner in 0..stride {
            let i0 = base + inner;
            let i1 = i0 + stride;
            let i2 = i1 + stride;
            let (b0, b1, b2) = (parent[i0], parent[i1], parent[i2]);
            let m01 = 0.5 * (b0 + b1);
            let m12 = 0.5 * (b1 + b2);
            let c = 0.5 * (m01 + m12);
            left[i0] = b0;
            left[i1] = m01;
            left[i2] = c;
            right[i0] = c;
            right[i1] = m12;
            right[i2] = b2;
        }
    }
}

/// De Casteljau halving of a degree-≤1 (multilinear) Bernstein tensor —
/// `2ⁿ` corner values in subset-mask layout — along `dim`.
pub fn split_halves_deg1(
    parent: &[f64],
    n: usize,
    dim: usize,
    left: &mut Vec<f64>,
    right: &mut Vec<f64>,
) {
    debug_assert_eq!(parent.len(), 1usize << n);
    debug_assert!(dim < n);
    let len = parent.len();
    left.clear();
    left.resize(len, 0.0);
    right.clear();
    right.resize(len, 0.0);
    let stride = 1usize << dim;
    let block = stride * 2;
    for base in (0..len).step_by(block) {
        for inner in 0..stride {
            let i0 = base + inner;
            let i1 = i0 + stride;
            let (b0, b1) = (parent[i0], parent[i1]);
            let m = 0.5 * (b0 + b1);
            left[i0] = b0;
            left[i1] = m;
            right[i0] = m;
            right[i1] = b1;
        }
    }
}

/// Minimum and maximum coefficient — a rigorous range enclosure of the
/// polynomial over its box in either Bernstein layout.
pub fn coefficient_range(coeffs: &[f64]) -> (f64, f64) {
    // Four independent accumulator lanes: `f64::min`/`max` are
    // branchless (minsd/maxsd) and the lanes break the loop-carried
    // dependency, so the scan vectorizes — this runs per box on the
    // solver hot path.
    let mut mins = [f64::INFINITY; 4];
    let mut maxs = [f64::NEG_INFINITY; 4];
    let mut chunks = coeffs.chunks_exact(4);
    for chunk in &mut chunks {
        for lane in 0..4 {
            mins[lane] = mins[lane].min(chunk[lane]);
            maxs[lane] = maxs[lane].max(chunk[lane]);
        }
    }
    for &c in chunks.remainder() {
        mins[0] = mins[0].min(c);
        maxs[0] = maxs[0].max(c);
    }
    (
        mins[0].min(mins[1]).min(mins[2]).min(mins[3]),
        maxs[0].max(maxs[1]).max(maxs[2]).max(maxs[3]),
    )
}

/// The tensor index of the vertex coefficient for the corner selected by
/// `mask` (bit `i` set ⟹ the high endpoint of axis `i`): digits are 0 or
/// 2, so `idx = Σ 2·3ⁱ` over set bits. Vertex coefficients equal the
/// polynomial's *exact* value at that corner.
pub fn vertex_index(n: usize, mask: u32) -> usize {
    let mut idx = 0usize;
    let mut stride = 1usize;
    for i in 0..n {
        if mask >> i & 1 == 1 {
            idx += 2 * stride;
        }
        stride *= 3;
    }
    idx
}

/// The split-axis with the widest derivative range: argmax over axes of
/// the largest adjacent Bernstein coefficient difference along that axis
/// (a sup bound on the scaled directional derivative, by the Bernstein
/// derivative formula). Halving the axis the polynomial varies fastest
/// along shrinks the enclosure fastest; ties break to the lowest axis so
/// the search stays deterministic.
pub fn widest_derivative_axis(coeffs: &[f64], n: usize) -> usize {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    let mut best_axis = 0usize;
    let mut best = f64::NEG_INFINITY;
    let mut stride = 1usize;
    for axis in 0..n {
        let block = stride * 3;
        let mut swing = 0.0f64;
        if stride == 1 {
            // Axis 0: triples are interleaved, scan them as such.
            for t in coeffs.chunks_exact(3) {
                swing = swing.max((t[1] - t[0]).abs()).max((t[2] - t[1]).abs());
            }
        } else {
            // The three digit slabs of each block are contiguous runs of
            // `stride` elements; pairwise slice walks keep the loads
            // sequential and the `abs`/`max` chain branchless, which is
            // what lets the compiler vectorize this per-box hot scan.
            for base in (0..coeffs.len()).step_by(block) {
                let (s0, rest) = coeffs[base..base + block].split_at(stride);
                let (s1, s2) = rest.split_at(stride);
                let mut lanes = [0.0f64; 4];
                let mut i = 0;
                while i + 4 <= stride {
                    for (lane, slot) in lanes.iter_mut().enumerate() {
                        let j = i + lane;
                        *slot = slot.max((s1[j] - s0[j]).abs()).max((s2[j] - s1[j]).abs());
                    }
                    i += 4;
                }
                while i < stride {
                    lanes[0] = lanes[0]
                        .max((s1[i] - s0[i]).abs())
                        .max((s2[i] - s1[i]).abs());
                    i += 1;
                }
                swing = swing
                    .max(lanes[0].max(lanes[1]))
                    .max(lanes[2].max(lanes[3]));
            }
        }
        if swing > best {
            best = swing;
            best_axis = axis;
        }
        stride *= 3;
    }
    best_axis
}

/// Evaluates a degree-≤2 Bernstein tensor at the box midpoint
/// (`t = ½` on every axis) by per-axis contraction with the Bernstein
/// weights `(¼, ½, ¼)` — `O(3ⁿ)` total, cheaper than a point evaluation
/// of the root polynomial and needing no global coordinates. `scratch`
/// is cleared and reused; pass a recycled buffer for an allocation-free
/// probe.
pub fn midpoint_value(coeffs: &[f64], n: usize, scratch: &mut Vec<f64>) -> f64 {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    if n == 0 {
        return coeffs[0];
    }
    // First contraction reads straight from `coeffs` — no full-tensor
    // copy; the remaining rounds touch ≤ a third of the elements each.
    scratch.clear();
    scratch.extend(
        coeffs
            .chunks_exact(3)
            .map(|t| 0.25 * t[0] + 0.5 * t[1] + 0.25 * t[2]),
    );
    let mut len = scratch.len();
    for _ in 1..n {
        let mut w = 0usize;
        let mut r = 0usize;
        while r < len {
            scratch[w] = 0.25 * scratch[r] + 0.5 * scratch[r + 1] + 0.25 * scratch[r + 2];
            w += 1;
            r += 3;
        }
        len = w;
    }
    scratch[0]
}

/// Fused midpoint probe and split-axis heuristic: one shrinking
/// contraction pass returns both the box-midpoint value and the axis
/// with the widest derivative range, replacing a [`midpoint_value`]
/// call plus the `O(n·3ⁿ)` exact scan of [`widest_derivative_axis`]
/// with `O(3ⁿ)` total work — the difference between the solver's split
/// cost being dominated by the heuristic or getting it nearly free.
///
/// The swing of axis `k` is measured on the tensor already contracted
/// over axes `< k`, i.e. the Bernstein form of the polynomial's
/// restriction to the mid-slice of those axes (axis 0 is measured
/// exactly). That is a genuine derivative-range bound of the
/// restriction — an *averaged* variant of the exact heuristic, biased
/// toward variation near the box center, which is where the next
/// midpoint probes land anyway. Ties break to the lowest axis, so the
/// choice is deterministic.
///
/// `scratch` is cleared and reused; pass a recycled buffer to keep the
/// probe allocation-free.
pub fn midpoint_and_split_axis(coeffs: &[f64], n: usize, scratch: &mut Vec<f64>) -> (f64, usize) {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    if n == 0 {
        return (coeffs[0], 0);
    }
    // Per stage: swing-scan the stride-1 triples, then contract. The
    // scan uses four independent accumulator lanes — a single `max`
    // chain is a loop-carried dependency that would throttle the whole
    // pass to the fmax latency.
    fn swing_of(data: &[f64]) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut quads = data.chunks_exact(12);
        for quad in &mut quads {
            for (lane, t) in quad.chunks_exact(3).enumerate() {
                lanes[lane] = lanes[lane]
                    .max((t[1] - t[0]).abs())
                    .max((t[2] - t[1]).abs());
            }
        }
        for t in quads.remainder().chunks_exact(3) {
            lanes[0] = lanes[0].max((t[1] - t[0]).abs()).max((t[2] - t[1]).abs());
        }
        lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]))
    }

    // Stage 0 reads straight from `coeffs`: axis 0 is stride-1 in the
    // uncontracted tensor, so its swing is exact.
    let mut best = swing_of(coeffs);
    let mut best_axis = 0usize;
    scratch.clear();
    scratch.extend(
        coeffs
            .chunks_exact(3)
            .map(|t| 0.25 * t[0] + 0.5 * t[1] + 0.25 * t[2]),
    );
    let mut len = scratch.len();
    for axis in 1..n {
        let swing = swing_of(&scratch[..len]);
        if swing > best {
            best = swing;
            best_axis = axis;
        }
        let mut w = 0usize;
        let mut r = 0usize;
        while r < len {
            scratch[w] = 0.25 * scratch[r] + 0.5 * scratch[r + 1] + 0.25 * scratch[r + 2];
            w += 1;
            r += 3;
        }
        len = w;
    }
    (scratch[0], best_axis)
}

/// Evaluates a degree-≤2 **power-basis** tensor (the [`DensePow3`]
/// layout) at `point` by per-axis Horner contraction: each round folds
/// the stride-1 axis as `c₀ + x·(c₁ + x·c₂)`, shrinking the tensor by
/// 3×. `O(3ⁿ)` total versus `O(n·3ⁿ)` per-monomial decoding; `scratch`
/// is cleared and reused, so a recycled buffer makes the evaluation
/// allocation-free.
///
/// [`DensePow3`]: crate::DensePow3
pub fn eval_pow3(coeffs: &[f64], n: usize, point: &[f64], scratch: &mut Vec<f64>) -> f64 {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    debug_assert_eq!(point.len(), n);
    scratch.clear();
    scratch.extend_from_slice(coeffs);
    let mut len = scratch.len();
    for &x in point.iter().take(n) {
        let mut w = 0usize;
        let mut r = 0usize;
        while r < len {
            scratch[w] = scratch[r] + x * (scratch[r + 1] + x * scratch[r + 2]);
            w += 1;
            r += 3;
        }
        len = w;
    }
    scratch[0]
}

/// The `2ⁿ` corner values of a multilinear polynomial — its Bernstein
/// coefficients over `[0,1]ⁿ` — via the subset-sum (zeta) butterfly:
/// `v[mask] = Σ_{S ⊆ mask} coeffs[S]`, `O(n·2ⁿ)`.
pub fn multilinear_corners<C: Coeff>(m: &Multilinear<C>) -> Vec<f64> {
    let n = m.arity();
    let mut v: Vec<f64> = m.coeffs().iter().map(Coeff::to_f64).collect();
    for i in 0..n {
        let bit = 1usize << i;
        for mask in 0..v.len() {
            if mask & bit != 0 {
                v[mask] += v[mask ^ bit];
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polynomial;

    fn quad2() -> Polynomial<f64> {
        // f = 2x² − 3xy + y² + y − 1 over 2 vars: degree 2 per variable.
        let x = Polynomial::<f64>::var(2, 0);
        let y = Polynomial::<f64>::var(2, 1);
        x.pow(2)
            .scale(&2.0)
            .sub(&x.mul(&y).scale(&3.0))
            .add(&y.pow(2))
            .add(&y)
            .sub(&Polynomial::constant(2, 1.0))
    }

    fn pow3_coeffs(p: &Polynomial<f64>, n: usize) -> Vec<f64> {
        let mut coeffs = vec![0.0; 3usize.pow(n as u32)];
        for (m, c) in p.terms() {
            let mut idx = 0usize;
            let mut stride = 1usize;
            for i in 0..n {
                idx += m.exp(i) as usize * stride;
                stride *= 3;
            }
            coeffs[idx] += *c;
        }
        coeffs
    }

    #[test]
    fn bernstein_vertices_equal_corner_values() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        for mask in 0u32..4 {
            let p = [(mask & 1) as f64, (mask >> 1 & 1) as f64];
            let idx = vertex_index(2, mask);
            assert!((b[idx] - f.eval_f64(&p)).abs() < 1e-12, "corner {mask}");
        }
    }

    #[test]
    fn halving_matches_direct_substitution() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        let (mut l, mut r) = (Vec::new(), Vec::new());
        split_halves(&b, 2, 0, &mut l, &mut r);
        // Children's vertex coefficients are values at the halved corners.
        for (child, lo) in [(&l, 0.0), (&r, 0.5)] {
            for mask in 0u32..4 {
                let x = lo + 0.5 * (mask & 1) as f64;
                let y = (mask >> 1 & 1) as f64;
                let idx = vertex_index(2, mask);
                assert!((child[idx] - f.eval_f64(&[x, y])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn midpoint_contraction_matches_eval() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        let mut scratch = Vec::new();
        let got = midpoint_value(&b, 2, &mut scratch);
        assert!((got - f.eval_f64(&[0.5, 0.5])).abs() < 1e-12);
    }

    #[test]
    fn derivative_axis_prefers_fast_variation() {
        // f = 9x² + y: varies much faster along x.
        let x = Polynomial::<f64>::var(2, 0);
        let y = Polynomial::<f64>::var(2, 1);
        let f = x.pow(2).scale(&9.0).add(&y);
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        assert_eq!(widest_derivative_axis(&b, 2), 0);
    }

    #[test]
    fn fused_probe_matches_midpoint_and_prefers_fast_variation() {
        // f = 9x² + y: varies much faster along x (axis 0).
        let x = Polynomial::<f64>::var(2, 0);
        let y = Polynomial::<f64>::var(2, 1);
        let f = x.pow(2).scale(&9.0).add(&y);
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        let mut scratch = Vec::new();
        let (mid, axis) = midpoint_and_split_axis(&b, 2, &mut scratch);
        assert!((mid - midpoint_value(&b, 2, &mut scratch)).abs() < 1e-12);
        assert_eq!(axis, 0);
        // And the mirrored polynomial prefers the other axis.
        let g = y.pow(2).scale(&9.0).add(&x);
        let mut b = pow3_coeffs(&g, 2);
        pow3_to_bernstein(&mut b, 2);
        let (_, axis) = midpoint_and_split_axis(&b, 2, &mut scratch);
        assert_eq!(axis, 1);
    }

    #[test]
    fn pow3_contraction_matches_per_monomial_eval() {
        let f = quad2();
        let coeffs = pow3_coeffs(&f, 2);
        let mut scratch = Vec::new();
        for p in [[0.0, 0.0], [1.0, 1.0], [0.3, 0.7], [0.5, 0.125]] {
            let got = eval_pow3(&coeffs, 2, &p, &mut scratch);
            assert!((got - f.eval_f64(&p)).abs() < 1e-12, "at {p:?}");
        }
    }

    #[test]
    fn deg1_halving_and_corners_agree_with_eval() {
        let m = Multilinear::<f64>::var(3, 0)
            .add(&Multilinear::var(3, 1).scale(&-2.0))
            .add(&Multilinear::var(3, 2))
            .add(&Multilinear::constant(3, 0.25));
        let corners = multilinear_corners(&m);
        for (mask, corner) in corners.iter().enumerate() {
            let p: Vec<f64> = (0..3).map(|i| (mask >> i & 1) as f64).collect();
            assert!((corner - m.eval_f64(&p)).abs() < 1e-12);
        }
        let (mut l, mut r) = (Vec::new(), Vec::new());
        split_halves_deg1(&corners, 3, 1, &mut l, &mut r);
        for (child, lo) in [(&l, 0.0), (&r, 0.5)] {
            for (mask, value) in child.iter().enumerate() {
                let p: Vec<f64> = (0..3)
                    .map(|i| {
                        let t = (mask >> i & 1) as f64;
                        if i == 1 {
                            lo + 0.5 * t
                        } else {
                            t
                        }
                    })
                    .collect();
                assert!((value - m.eval_f64(&p)).abs() < 1e-12);
            }
        }
    }
}
