//! Bernstein subdivision kernels: de Casteljau halving, range scans and
//! split-axis heuristics over dense coefficient tensors.
//!
//! The branch-and-bound solver keeps every open box as the Bernstein
//! coefficient tensor of the gap polynomial *restricted to that box*.
//! Splitting a box in half along one axis then never re-derives the
//! children from the root polynomial: the **de Casteljau algorithm at
//! `t = ½`** produces both children's exact coefficient tensors in a
//! single `O(3ⁿ)` pass over the parent's — versus the `O(n·3ⁿ)` affine
//! re-substitution (plus two fresh allocations) of the recompute path.
//!
//! All kernels here operate on raw `&[f64]` tensors in the [`DensePow3`]
//! index layout (`coeffs[Σ kᵢ·3ⁱ]`, per-variable degree ≤ 2) or the
//! [`Multilinear`] subset-mask layout (degree ≤ 1, `2ⁿ` corner values),
//! so callers can route the buffers through arenas without this crate
//! knowing about them.
//!
//! # Vector dispatch and bit-identity
//!
//! The four hot kernels — [`split_halves`] (and [`split_halves_min`]),
//! [`coefficient_range`], [`midpoint_and_split_axis`] and
//! [`widest_derivative_axis`] — run through a runtime-selected
//! instruction set ([`active_isa`]): portable scalar always, plus SSE2
//! and AVX2 `std::arch` microkernels under the `simd` feature on
//! x86_64. The scalar kernels in [`reference`] are the oracle; every
//! vector path is **bit-identical** to them on finite tensors (asserted
//! by proptest, not approximately), which is what keeps the solver's
//! deterministic wave mode byte-stable regardless of lane width. The
//! identity holds by construction, one argument per kernel class:
//!
//! * **Elementwise dyadic arithmetic** (halving, midpoint contraction):
//!   every path evaluates the same expression tree per element — same
//!   association, no FMA — so results are bitwise equal outright.
//! * **Swing reductions** (split-axis heuristics): the reduced values
//!   are `|a − b|` magnitudes, never `-0.0` and NaN-free for finite
//!   inputs, and `max` over a NaN-free multiset with no negative zeros
//!   is associativity- and order-free. Lane shape may differ per ISA;
//!   the reduced bits cannot.
//! * **Min/max coefficient scans**: the numeric extremum of a finite
//!   multiset is unique except for the sign of zero, so the kernels
//!   canonicalize `-0.0 → +0.0` at the reduction boundary and become
//!   order-free too.
//!
//! Non-finite coefficients (overflow to ±∞, NaN) void the cross-ISA
//! guarantee; the solver's tensors are finite by construction.
//!
//! # Cache blocking
//!
//! Tensors past ~L2 size are walked in L1-sized tiles: the `*_tiled`
//! kernel variants contract each tile through all its stages while hot
//! instead of making one full-width pass per stage, and the split-axis
//! scan computes every in-tile axis in a single pass over the tensor
//! (`1 + (n − t)` passes instead of `n` for tile exponent `t`). Tile
//! sizes come from a small compile-time table ([`auto_tile`]); callers
//! can override per solve (`ProductSolverOptions::kernel_block`).
//! Tiling never changes results: tile boundaries only re-order the
//! order-free reductions above.
//!
//! [`DensePow3`]: crate::DensePow3
//! [`Multilinear`]: crate::Multilinear

use crate::{Coeff, Multilinear};
use std::sync::atomic::{AtomicU8, Ordering};

/// Hard cap on tensor arity for the split-axis kernels (a `3³²`-element
/// tensor is far beyond addressable memory, so this is never limiting).
const MAX_AXES: usize = 32;

// ---------------------------------------------------------------------------
// Instruction-set dispatch
// ---------------------------------------------------------------------------

/// Instruction set the subdivision kernels execute with.
///
/// Resolved once per process from CPU detection (and the `EPI_SIMD`
/// environment override) by [`active_isa`]; [`force_isa`] re-pins it for
/// tests and benchmarks. Every ISA produces bit-identical results on
/// finite tensors (see the module docs), so this is a throughput knob,
/// never a semantics knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Isa {
    /// Portable scalar kernels — the oracle, available everywhere.
    Scalar = 1,
    /// 128-bit SSE2 microkernels (x86_64 baseline, `simd` feature).
    Sse2 = 2,
    /// 256-bit AVX2 microkernels (runtime-detected, `simd` feature).
    Avx2 = 3,
}

impl Isa {
    /// Short stable label for logs and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> Option<Isa> {
        match v {
            1 => Some(Isa::Scalar),
            2 => Some(Isa::Sse2),
            3 => Some(Isa::Avx2),
            _ => None,
        }
    }
}

/// 0 = unresolved; otherwise the `Isa` discriminant. Relaxed ordering is
/// enough: resolution is idempotent and any racing resolver stores the
/// same value (modulo a concurrent `force_isa`, which wins either way).
static ISA_STATE: AtomicU8 = AtomicU8::new(0);

/// The widest ISA this build and this CPU can actually run.
fn best_available_isa() -> Isa {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
        // SSE2 is part of the x86_64 baseline.
        Isa::Sse2
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    Isa::Scalar
}

/// Clamp a requested ISA to what this build/CPU supports.
fn clamp_isa(requested: Isa) -> Isa {
    let best = best_available_isa();
    if (requested as u8) <= (best as u8) {
        requested
    } else {
        best
    }
}

fn resolve_isa() -> Isa {
    match std::env::var("EPI_SIMD").ok().as_deref().map(str::trim) {
        Some(v) if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") => Isa::Scalar,
        Some(v) if v.eq_ignore_ascii_case("sse2") => clamp_isa(Isa::Sse2),
        Some(v) if v.eq_ignore_ascii_case("avx2") => clamp_isa(Isa::Avx2),
        // Unset or unrecognized (including "auto"): widest available.
        _ => best_available_isa(),
    }
}

/// The instruction set the kernels currently dispatch to.
///
/// First call resolves it from the `EPI_SIMD` environment variable
/// (`off`/`scalar`, `sse2`, `avx2`, anything else = auto) clamped to
/// runtime CPU detection; without the `simd` feature this is always
/// [`Isa::Scalar`].
pub fn active_isa() -> Isa {
    match Isa::from_u8(ISA_STATE.load(Ordering::Relaxed)) {
        Some(isa) => isa,
        None => {
            let isa = resolve_isa();
            ISA_STATE.store(isa as u8, Ordering::Relaxed);
            isa
        }
    }
}

/// Pin the kernel ISA for this process (tests, benchmarks, A/B sweeps),
/// clamped to what the build and CPU support; `None` re-resolves from
/// the environment. Returns the ISA actually in effect — callers that
/// need a specific ISA must check the return value.
pub fn force_isa(isa: Option<Isa>) -> Isa {
    match isa {
        Some(requested) => {
            let effective = clamp_isa(requested);
            ISA_STATE.store(effective as u8, Ordering::Relaxed);
            effective
        }
        None => {
            ISA_STATE.store(0, Ordering::Relaxed);
            active_isa()
        }
    }
}

// ---------------------------------------------------------------------------
// Tiling
// ---------------------------------------------------------------------------

/// Compile-time tile table: `(tensor length at least, tile length)`,
/// widest first. Entries are powers of 3 so tiles align with contraction
/// stages. A `3¹²` tensor is 4 MiB — past typical L2 — and gets L1-sized
/// `3⁷` tiles (~17 KiB); half-megabyte tensors (`3¹⁰`–`3¹¹`) get `3⁸`
/// tiles (~51 KiB), trading tile-loop overhead for L2 headroom. Anything
/// L2-resident runs untiled.
const TILE_TABLE: &[(usize, usize)] = &[(531_441, 2_187), (59_049, 6_561)];

/// The tile length the compile-time table picks for a tensor of `len`
/// elements; `0` means untiled. Override per call via the `*_tiled`
/// kernel variants (the solver exposes this as
/// `ProductSolverOptions::kernel_block`).
pub fn auto_tile(len: usize) -> usize {
    for &(at_least, tile) in TILE_TABLE {
        if len >= at_least {
            return tile;
        }
    }
    0
}

/// Resolve a caller-requested block size (`0` = auto) to `Some(tile)`
/// with `tile` a power of 3 in `[27, len)`, or `None` for untiled.
fn effective_tile(block: usize, len: usize) -> Option<usize> {
    let requested = if block == 0 { auto_tile(len) } else { block };
    if requested < 27 {
        return None;
    }
    // Round down to a power of 3 so tiles align with whole contraction
    // stages and axis blocks.
    let mut tile = 27usize;
    while tile <= requested / 3 {
        tile *= 3;
    }
    (tile < len).then_some(tile)
}

// ---------------------------------------------------------------------------
// Kernel primitives (per-ISA)
// ---------------------------------------------------------------------------

/// The per-ISA sweep primitives the drivers compose. Each method is one
/// full pass over its operand (never per-element), so the vector
/// implementations amortize the non-inlinable `target_feature` call
/// boundary. Implementations must uphold the bit-identity contract in
/// the module docs.
pub(crate) trait Kern {
    /// Min and max coefficient, `-0.0` canonicalized to `+0.0`.
    fn range(data: &[f64]) -> (f64, f64);
    /// Max `|adjacent difference|` over stride-1 triples (`len % 3 == 0`).
    fn swing3(data: &[f64]) -> f64;
    /// Max `|adjacent slab difference|` along an axis of the given
    /// stride: blocks of `3·stride` split into three `stride`-long slabs
    /// (`len % (3·stride) == 0`).
    fn swing_axis(data: &[f64], stride: usize) -> f64;
    /// Bernstein midpoint contraction with weights `(¼, ½, ¼)`:
    /// `dst[i] = 0.25·src[3i] + 0.5·src[3i+1] + 0.25·src[3i+2]`, with
    /// exactly that association.
    fn contract(src: &[f64], dst: &mut [f64]);
    /// De Casteljau halving along the axis of the given stride into
    /// pre-sized `left`/`right`, returning each child's minimum
    /// coefficient (canonicalized like [`Kern::range`]).
    fn split(parent: &[f64], stride: usize, left: &mut [f64], right: &mut [f64]) -> (f64, f64);
    /// [`Kern::split`] with the parent's buffer *becoming* the left
    /// child: `left` holds the parent tensor on entry and the left
    /// child on exit (the left child's `b₀` slabs are the parent's own
    /// coefficients, so a third of it is already in place). Only
    /// `right` needs a second buffer — on the solver's hot path this
    /// removes one full-tensor buffer acquisition and its cold-memory
    /// write per split. Same values, same canonicalized minima.
    fn split_inplace(left: &mut [f64], stride: usize, right: &mut [f64]) -> (f64, f64);
}

/// `minsd`-semantics minimum: `a` if `a < b`, else `b`. Matches the
/// per-lane behavior of the x86 `minpd` instruction so the scalar
/// kernels and the compiler's autovectorization agree with the explicit
/// vector paths.
#[inline(always)]
pub(crate) fn min_sd(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// `maxsd`-semantics maximum: `a` if `a > b`, else `b`.
#[inline(always)]
pub(crate) fn max_sd(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// Canonicalize the sign of zero (`-0.0 → +0.0`, everything else
/// unchanged) so min/max reductions are fold-order-free. See the module
/// docs.
#[inline(always)]
pub(crate) fn canon(x: f64) -> f64 {
    x + 0.0
}

/// Portable scalar kernels — the oracle every vector path must match
/// bit-for-bit. The loops are written in stride-4 lane form (independent
/// accumulators, branchless `min_sd`/`max_sd`) so scalar builds
/// autovectorize well too.
pub(crate) struct ScalarK;

impl Kern for ScalarK {
    fn range(data: &[f64]) -> (f64, f64) {
        // Four independent accumulator lanes break the loop-carried
        // min/max dependency; this runs per box on the solver hot path.
        let mut mins = [f64::INFINITY; 4];
        let mut maxs = [f64::NEG_INFINITY; 4];
        let mut chunks = data.chunks_exact(4);
        for chunk in &mut chunks {
            for lane in 0..4 {
                mins[lane] = min_sd(mins[lane], chunk[lane]);
                maxs[lane] = max_sd(maxs[lane], chunk[lane]);
            }
        }
        for &c in chunks.remainder() {
            mins[0] = min_sd(mins[0], c);
            maxs[0] = max_sd(maxs[0], c);
        }
        (
            canon(min_sd(min_sd(mins[0], mins[1]), min_sd(mins[2], mins[3]))),
            canon(max_sd(max_sd(maxs[0], maxs[1]), max_sd(maxs[2], maxs[3]))),
        )
    }

    fn swing3(data: &[f64]) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut quads = data.chunks_exact(12);
        for quad in &mut quads {
            for (lane, t) in quad.chunks_exact(3).enumerate() {
                let d1 = (t[1] - t[0]).abs();
                let d2 = (t[2] - t[1]).abs();
                lanes[lane] = max_sd(max_sd(lanes[lane], d1), d2);
            }
        }
        for t in quads.remainder().chunks_exact(3) {
            let d1 = (t[1] - t[0]).abs();
            let d2 = (t[2] - t[1]).abs();
            lanes[0] = max_sd(max_sd(lanes[0], d1), d2);
        }
        max_sd(max_sd(lanes[0], lanes[1]), max_sd(lanes[2], lanes[3]))
    }

    fn swing_axis(data: &[f64], stride: usize) -> f64 {
        let block = stride * 3;
        let mut lanes = [0.0f64; 4];
        for b in data.chunks_exact(block) {
            // The three digit slabs of each block are contiguous runs of
            // `stride` elements; pairwise slice walks keep the loads
            // sequential and the `abs`/`max` chain branchless.
            let (s0, rest) = b.split_at(stride);
            let (s1, s2) = rest.split_at(stride);
            let mut i = 0;
            while i + 4 <= stride {
                for (lane, slot) in lanes.iter_mut().enumerate() {
                    let j = i + lane;
                    let d1 = (s1[j] - s0[j]).abs();
                    let d2 = (s2[j] - s1[j]).abs();
                    *slot = max_sd(max_sd(*slot, d1), d2);
                }
                i += 4;
            }
            while i < stride {
                let d1 = (s1[i] - s0[i]).abs();
                let d2 = (s2[i] - s1[i]).abs();
                lanes[0] = max_sd(max_sd(lanes[0], d1), d2);
                i += 1;
            }
        }
        max_sd(max_sd(lanes[0], lanes[1]), max_sd(lanes[2], lanes[3]))
    }

    fn contract(src: &[f64], dst: &mut [f64]) {
        debug_assert_eq!(src.len(), dst.len() * 3);
        for (d, t) in dst.iter_mut().zip(src.chunks_exact(3)) {
            *d = 0.25 * t[0] + 0.5 * t[1] + 0.25 * t[2];
        }
    }

    fn split(parent: &[f64], stride: usize, left: &mut [f64], right: &mut [f64]) -> (f64, f64) {
        let mut lmin = f64::INFINITY;
        let mut rmin = f64::INFINITY;
        if stride == 1 {
            // Axis 0: triples are interleaved, walk them as such.
            for ((t, l), r) in parent
                .chunks_exact(3)
                .zip(left.chunks_exact_mut(3))
                .zip(right.chunks_exact_mut(3))
            {
                let (b0, b1, b2) = (t[0], t[1], t[2]);
                let m01 = 0.5 * (b0 + b1);
                let m12 = 0.5 * (b1 + b2);
                let c = 0.5 * (m01 + m12);
                l[0] = b0;
                l[1] = m01;
                l[2] = c;
                r[0] = c;
                r[1] = m12;
                r[2] = b2;
                lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
            }
        } else {
            let block = stride * 3;
            let mut base = 0;
            while base < parent.len() {
                let (p0, rest) = parent[base..base + block].split_at(stride);
                let (p1, p2) = rest.split_at(stride);
                let (l0, lrest) = left[base..base + block].split_at_mut(stride);
                let (l1, l2) = lrest.split_at_mut(stride);
                let (r0, rrest) = right[base..base + block].split_at_mut(stride);
                let (r1, r2) = rrest.split_at_mut(stride);
                for j in 0..stride {
                    let (b0, b1, b2) = (p0[j], p1[j], p2[j]);
                    let m01 = 0.5 * (b0 + b1);
                    let m12 = 0.5 * (b1 + b2);
                    let c = 0.5 * (m01 + m12);
                    l0[j] = b0;
                    l1[j] = m01;
                    l2[j] = c;
                    r0[j] = c;
                    r1[j] = m12;
                    r2[j] = b2;
                    lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                    rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
                }
                base += block;
            }
        }
        (canon(lmin), canon(rmin))
    }

    fn split_inplace(left: &mut [f64], stride: usize, right: &mut [f64]) -> (f64, f64) {
        let mut lmin = f64::INFINITY;
        let mut rmin = f64::INFINITY;
        if stride == 1 {
            // Axis 0: triples are interleaved. Each triple is read in
            // full before its `m01`/`c` slots are overwritten; the `b0`
            // slot never needs a store.
            for (t, r) in left.chunks_exact_mut(3).zip(right.chunks_exact_mut(3)) {
                let (b0, b1, b2) = (t[0], t[1], t[2]);
                let m01 = 0.5 * (b0 + b1);
                let m12 = 0.5 * (b1 + b2);
                let c = 0.5 * (m01 + m12);
                t[1] = m01;
                t[2] = c;
                r[0] = c;
                r[1] = m12;
                r[2] = b2;
                lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
            }
        } else {
            let block = stride * 3;
            let mut base = 0;
            while base < left.len() {
                let (l0, lrest) = left[base..base + block].split_at_mut(stride);
                let (l1, l2) = lrest.split_at_mut(stride);
                let (r0, rrest) = right[base..base + block].split_at_mut(stride);
                let (r1, r2) = rrest.split_at_mut(stride);
                for j in 0..stride {
                    let (b0, b1, b2) = (l0[j], l1[j], l2[j]);
                    let m01 = 0.5 * (b0 + b1);
                    let m12 = 0.5 * (b1 + b2);
                    let c = 0.5 * (m01 + m12);
                    l1[j] = m01;
                    l2[j] = c;
                    r0[j] = c;
                    r1[j] = m12;
                    r2[j] = b2;
                    lmin = min_sd(lmin, min_sd(min_sd(b0, m01), c));
                    rmin = min_sd(rmin, min_sd(min_sd(c, m12), b2));
                }
                base += block;
            }
        }
        (canon(lmin), canon(rmin))
    }
}

/// Dispatch a driver body over the active ISA's kernel primitives.
macro_rules! dispatch {
    (|$K:ident| $body:expr) => {{
        match active_isa() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Isa::Sse2 => {
                type $K = crate::simd::Sse2K;
                $body
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Isa::Avx2 => {
                type $K = crate::simd::Avx2K;
                $body
            }
            _ => {
                type $K = ScalarK;
                $body
            }
        }
    }};
}

// ---------------------------------------------------------------------------
// Drivers (ISA-generic)
// ---------------------------------------------------------------------------

fn split_d<K: Kern>(
    parent: &[f64],
    n: usize,
    dim: usize,
    left: &mut Vec<f64>,
    right: &mut Vec<f64>,
) -> (f64, f64) {
    debug_assert_eq!(parent.len(), 3usize.pow(n as u32));
    debug_assert!(dim < n);
    let len = parent.len();
    // No `clear()` first: the kernel overwrites every element, so a
    // recycled buffer that already has the right length skips the
    // zero-fill memset entirely (`resize` to the current length is a
    // no-op) — on big tensors that memset rivals the halving itself.
    left.resize(len, 0.0);
    right.resize(len, 0.0);
    K::split(parent, 3usize.pow(dim as u32), left, right)
}

fn split_d_inplace<K: Kern>(
    left: &mut [f64],
    n: usize,
    dim: usize,
    right: &mut Vec<f64>,
) -> (f64, f64) {
    debug_assert_eq!(left.len(), 3usize.pow(n as u32));
    debug_assert!(dim < n);
    // Same stale-reuse argument as `split_d`: every `right` element is
    // written by the kernel.
    right.resize(left.len(), 0.0);
    K::split_inplace(left, 3usize.pow(dim as u32), right)
}

fn mas_d<K: Kern>(coeffs: &[f64], n: usize, scratch: &mut Vec<f64>, block: usize) -> (f64, usize) {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    assert!(n <= MAX_AXES, "tensor arity {n} exceeds kernel limit");
    if n == 0 {
        return (coeffs[0], 0);
    }
    let len = coeffs.len();
    let mut swings = [0.0f64; MAX_AXES];

    let mid = match effective_tile(block, len) {
        None => {
            // Untiled: one full-width swing + contraction per stage,
            // ping-ponging between two scratch regions (the contraction
            // is not expressible in-place over disjoint slices).
            // Stale contents are fine: every region is written by a
            // contraction before any swing reads it, so a recycled
            // scratch of the right length skips the zero-fill.
            scratch.resize(len / 3 + len / 9, 0.0);
            let (a, b) = scratch.split_at_mut(len / 3);
            swings[0] = K::swing3(coeffs);
            K::contract(coeffs, &mut a[..len / 3]);
            let mut cur_len = len / 3;
            let mut in_a = true;
            for swing in swings.iter_mut().take(n).skip(1) {
                let (cur, other) = if in_a {
                    (&mut *a, &mut *b)
                } else {
                    (&mut *b, &mut *a)
                };
                *swing = K::swing3(&cur[..cur_len]);
                let next_len = cur_len / 3;
                K::contract(&cur[..cur_len], &mut other[..next_len]);
                cur_len = next_len;
                in_a = !in_a;
            }
            debug_assert_eq!(cur_len, 1);
            if in_a {
                a[0]
            } else {
                b[0]
            }
        }
        Some(tile) => {
            // Tiled: contract each tile through all its stages while it
            // is cache-hot, collecting one value per tile; the remaining
            // stages run full-width on that contracted tensor. Tile
            // boundaries only re-order the order-free swing folds, so
            // results match the untiled pass bit-for-bit.
            let mut stages_in_tile = 0usize;
            let mut l = tile;
            while l > 1 {
                l /= 3;
                stages_in_tile += 1;
            }
            let out_len = len / tile;
            // Same stale-reuse argument as the untiled arm above.
            scratch.resize(out_len + out_len / 3 + tile / 3 + tile / 9, 0.0);
            let (out, rest) = scratch.split_at_mut(out_len);
            let (pong, rest) = rest.split_at_mut(out_len / 3);
            let (a, b) = rest.split_at_mut(tile / 3);
            for (c, seg) in coeffs.chunks_exact(tile).enumerate() {
                swings[0] = max_sd(swings[0], K::swing3(seg));
                K::contract(seg, &mut a[..tile / 3]);
                let mut cur_len = tile / 3;
                let mut in_a = true;
                for swing in swings.iter_mut().take(stages_in_tile).skip(1) {
                    let (cur, other) = if in_a {
                        (&mut *a, &mut *b)
                    } else {
                        (&mut *b, &mut *a)
                    };
                    *swing = max_sd(*swing, K::swing3(&cur[..cur_len]));
                    let next_len = cur_len / 3;
                    K::contract(&cur[..cur_len], &mut other[..next_len]);
                    cur_len = next_len;
                    in_a = !in_a;
                }
                debug_assert_eq!(cur_len, 1);
                out[c] = if in_a { a[0] } else { b[0] };
            }
            // Remaining axes on the per-tile contracted tensor.
            let mut cur_len = out_len;
            let mut in_out = true;
            for swing in swings.iter_mut().take(n).skip(stages_in_tile) {
                let (cur, other) = if in_out {
                    (&mut *out, &mut *pong)
                } else {
                    (&mut *pong, &mut *out)
                };
                *swing = K::swing3(&cur[..cur_len]);
                let next_len = cur_len / 3;
                K::contract(&cur[..cur_len], &mut other[..next_len]);
                cur_len = next_len;
                in_out = !in_out;
            }
            debug_assert_eq!(cur_len, 1);
            if in_out {
                out[0]
            } else {
                pong[0]
            }
        }
    };

    let mut best = f64::NEG_INFINITY;
    let mut best_axis = 0usize;
    for (axis, &s) in swings.iter().take(n).enumerate() {
        if s > best {
            best = s;
            best_axis = axis;
        }
    }
    (mid, best_axis)
}

fn widest_d<K: Kern>(coeffs: &[f64], n: usize, block: usize) -> usize {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    assert!(n <= MAX_AXES, "tensor arity {n} exceeds kernel limit");
    if n <= 1 {
        return 0;
    }
    let len = coeffs.len();
    let tile_len = effective_tile(block, len).unwrap_or(len);
    let mut swings = [0.0f64; MAX_AXES];
    // One pass over the tensor computes every axis whose block fits the
    // tile while the tile is cache-hot; axes with wider blocks each get
    // a dedicated streaming pass below. Untiled (`tile_len == len`) this
    // degenerates to the classic per-axis scan.
    let mut in_tile_axes = 1usize; // axis 0 always fits (block 3 ≤ tile)
    {
        let mut stride = 3usize;
        while in_tile_axes < n && stride * 3 <= tile_len {
            in_tile_axes += 1;
            stride *= 3;
        }
    }
    for seg in coeffs.chunks_exact(tile_len) {
        swings[0] = max_sd(swings[0], K::swing3(seg));
        let mut stride = 3usize;
        for swing in swings.iter_mut().take(in_tile_axes).skip(1) {
            *swing = max_sd(*swing, K::swing_axis(seg, stride));
            stride *= 3;
        }
    }
    let mut stride = 3usize.pow(in_tile_axes as u32);
    for swing in swings.iter_mut().take(n).skip(in_tile_axes) {
        *swing = K::swing_axis(coeffs, stride);
        stride *= 3;
    }
    let mut best = f64::NEG_INFINITY;
    let mut best_axis = 0usize;
    for (axis, &s) in swings.iter().take(n).enumerate() {
        if s > best {
            best = s;
            best_axis = axis;
        }
    }
    best_axis
}

// ---------------------------------------------------------------------------
// Public kernels
// ---------------------------------------------------------------------------

/// Converts a degree-≤2 tensor from the power basis to the Bernstein
/// basis over `[0,1]ⁿ`, in place: per axis,
/// `(b₀, b₁, b₂) = (a₀, a₀ + a₁/2, a₀ + a₁ + a₂)`.
pub fn pow3_to_bernstein(coeffs: &mut [f64], n: usize) {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    let mut stride = 1usize;
    for _ in 0..n {
        let block = stride * 3;
        for base in (0..coeffs.len()).step_by(block) {
            for inner in 0..stride {
                let i0 = base + inner;
                let i1 = i0 + stride;
                let i2 = i1 + stride;
                let (a0, a1, a2) = (coeffs[i0], coeffs[i1], coeffs[i2]);
                coeffs[i0] = a0;
                coeffs[i1] = a0 + 0.5 * a1;
                coeffs[i2] = a0 + a1 + a2;
            }
        }
        stride *= 3;
    }
}

/// De Casteljau halving of a degree-≤2 Bernstein tensor along `dim`:
/// writes both children's tensors in one pass over the parent.
///
/// Per axis-`dim` triple `(b₀, b₁, b₂)` the children are
/// `left = (b₀, (b₀+b₁)/2, (b₀+2b₁+b₂)/4)` and
/// `right = ((b₀+2b₁+b₂)/4, (b₁+b₂)/2, b₂)` — all divisions by powers of
/// two, so the halving is *exact* while coefficients stay within f64
/// dyadic range.
///
/// `left`/`right` are cleared and resized; pass recycled buffers to keep
/// the hot path allocation-free.
pub fn split_halves(
    parent: &[f64],
    n: usize,
    dim: usize,
    left: &mut Vec<f64>,
    right: &mut Vec<f64>,
) {
    dispatch!(|K| {
        split_d::<K>(parent, n, dim, left, right);
    })
}

/// [`split_halves`] fused with each child's minimum-coefficient scan:
/// returns `(left_min, right_min)` computed during the halving pass, so
/// the solver's per-child range pass disappears entirely. The minima
/// are numerically identical to `coefficient_range(child).0` (both
/// canonicalize `-0.0 → +0.0`).
pub fn split_halves_min(
    parent: &[f64],
    n: usize,
    dim: usize,
    left: &mut Vec<f64>,
    right: &mut Vec<f64>,
) -> (f64, f64) {
    dispatch!(|K| split_d::<K>(parent, n, dim, left, right))
}

/// [`split_halves_min`] with the parent buffer *becoming* the left
/// child: `left` holds the parent tensor on entry and the left child on
/// exit. The left child's `b₀` slabs are the parent's own coefficients,
/// so they are already in place and never stored; only `right` needs a
/// second buffer. Values and minima are bit-identical to the
/// out-of-place halving on every ISA. This is the solver's hot-path
/// variant: it turns one of the two cold child-buffer writes per split
/// into writes over the cache-hot parent.
pub fn split_halves_min_inplace(
    left: &mut [f64],
    n: usize,
    dim: usize,
    right: &mut Vec<f64>,
) -> (f64, f64) {
    dispatch!(|K| split_d_inplace::<K>(left, n, dim, right))
}

/// De Casteljau halving of a degree-≤1 (multilinear) Bernstein tensor —
/// `2ⁿ` corner values in subset-mask layout — along `dim`.
pub fn split_halves_deg1(
    parent: &[f64],
    n: usize,
    dim: usize,
    left: &mut Vec<f64>,
    right: &mut Vec<f64>,
) {
    debug_assert_eq!(parent.len(), 1usize << n);
    debug_assert!(dim < n);
    let len = parent.len();
    // Every element is written below, so skip the zero-fill when a
    // recycled buffer already has the right length (as in `split_d`).
    left.resize(len, 0.0);
    right.resize(len, 0.0);
    let stride = 1usize << dim;
    let block = stride * 2;
    for base in (0..len).step_by(block) {
        for inner in 0..stride {
            let i0 = base + inner;
            let i1 = i0 + stride;
            let (b0, b1) = (parent[i0], parent[i1]);
            let m = 0.5 * (b0 + b1);
            left[i0] = b0;
            left[i1] = m;
            right[i0] = m;
            right[i1] = b1;
        }
    }
}

/// Minimum and maximum coefficient — a rigorous range enclosure of the
/// polynomial over its box in either Bernstein layout. `-0.0` extrema
/// are canonicalized to `+0.0` so the result is independent of scan
/// order (and therefore of the active ISA).
pub fn coefficient_range(coeffs: &[f64]) -> (f64, f64) {
    dispatch!(|K| K::range(coeffs))
}

/// The tensor index of the vertex coefficient for the corner selected by
/// `mask` (bit `i` set ⟹ the high endpoint of axis `i`): digits are 0 or
/// 2, so `idx = Σ 2·3ⁱ` over set bits. Vertex coefficients equal the
/// polynomial's *exact* value at that corner.
pub fn vertex_index(n: usize, mask: u32) -> usize {
    let mut idx = 0usize;
    let mut stride = 1usize;
    for i in 0..n {
        if mask >> i & 1 == 1 {
            idx += 2 * stride;
        }
        stride *= 3;
    }
    idx
}

/// The split-axis with the widest derivative range: argmax over axes of
/// the largest adjacent Bernstein coefficient difference along that axis
/// (a sup bound on the scaled directional derivative, by the Bernstein
/// derivative formula). Halving the axis the polynomial varies fastest
/// along shrinks the enclosure fastest; ties break to the lowest axis so
/// the search stays deterministic.
///
/// Tensors past the [`auto_tile`] threshold are scanned in cache tiles:
/// every axis whose block fits the tile is computed in one shared pass,
/// `1 + (n − t)` passes total instead of `n`.
pub fn widest_derivative_axis(coeffs: &[f64], n: usize) -> usize {
    dispatch!(|K| widest_d::<K>(coeffs, n, 0))
}

/// [`widest_derivative_axis`] with an explicit tile length (`0` = the
/// [`auto_tile`] table; values round down to a power of 3, anything
/// below 27 or at least the tensor length means untiled).
pub fn widest_derivative_axis_tiled(coeffs: &[f64], n: usize, block: usize) -> usize {
    dispatch!(|K| widest_d::<K>(coeffs, n, block))
}

/// Evaluates a degree-≤2 Bernstein tensor at the box midpoint
/// (`t = ½` on every axis) by per-axis contraction with the Bernstein
/// weights `(¼, ½, ¼)` — `O(3ⁿ)` total, cheaper than a point evaluation
/// of the root polynomial and needing no global coordinates. `scratch`
/// is cleared and reused; pass a recycled buffer for an allocation-free
/// probe.
pub fn midpoint_value(coeffs: &[f64], n: usize, scratch: &mut Vec<f64>) -> f64 {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    if n == 0 {
        return coeffs[0];
    }
    // First contraction reads straight from `coeffs` — no full-tensor
    // copy; the remaining rounds touch ≤ a third of the elements each.
    scratch.clear();
    scratch.extend(
        coeffs
            .chunks_exact(3)
            .map(|t| 0.25 * t[0] + 0.5 * t[1] + 0.25 * t[2]),
    );
    let mut len = scratch.len();
    for _ in 1..n {
        let mut w = 0usize;
        let mut r = 0usize;
        while r < len {
            scratch[w] = 0.25 * scratch[r] + 0.5 * scratch[r + 1] + 0.25 * scratch[r + 2];
            w += 1;
            r += 3;
        }
        len = w;
    }
    scratch[0]
}

/// Fused midpoint probe and split-axis heuristic: one shrinking
/// contraction pass returns both the box-midpoint value and the axis
/// with the widest derivative range, replacing a [`midpoint_value`]
/// call plus the `O(n·3ⁿ)` exact scan of [`widest_derivative_axis`]
/// with `O(3ⁿ)` total work — the difference between the solver's split
/// cost being dominated by the heuristic or getting it nearly free.
///
/// The swing of axis `k` is measured on the tensor already contracted
/// over axes `< k`, i.e. the Bernstein form of the polynomial's
/// restriction to the mid-slice of those axes (axis 0 is measured
/// exactly). That is a genuine derivative-range bound of the
/// restriction — an *averaged* variant of the exact heuristic, biased
/// toward variation near the box center, which is where the next
/// midpoint probes land anyway. Ties break to the lowest axis, so the
/// choice is deterministic.
///
/// Tensors past the [`auto_tile`] threshold are contracted tile by tile
/// while cache-hot (see the module docs); the result is bit-identical
/// either way. `scratch` is cleared and reused; pass a recycled buffer
/// (capacity ≥ `coeffs.len()` is always enough) to keep the probe
/// allocation-free.
pub fn midpoint_and_split_axis(coeffs: &[f64], n: usize, scratch: &mut Vec<f64>) -> (f64, usize) {
    dispatch!(|K| mas_d::<K>(coeffs, n, scratch, 0))
}

/// [`midpoint_and_split_axis`] with an explicit tile length (`0` = the
/// [`auto_tile`] table; values round down to a power of 3, anything
/// below 27 or at least the tensor length means untiled).
pub fn midpoint_and_split_axis_tiled(
    coeffs: &[f64],
    n: usize,
    scratch: &mut Vec<f64>,
    block: usize,
) -> (f64, usize) {
    dispatch!(|K| mas_d::<K>(coeffs, n, scratch, block))
}

/// Evaluates a degree-≤2 **power-basis** tensor (the [`DensePow3`]
/// layout) at `point` by per-axis Horner contraction: each round folds
/// the stride-1 axis as `c₀ + x·(c₁ + x·c₂)`, shrinking the tensor by
/// 3×. `O(3ⁿ)` total versus `O(n·3ⁿ)` per-monomial decoding; `scratch`
/// is cleared and reused, so a recycled buffer makes the evaluation
/// allocation-free.
///
/// [`DensePow3`]: crate::DensePow3
pub fn eval_pow3(coeffs: &[f64], n: usize, point: &[f64], scratch: &mut Vec<f64>) -> f64 {
    debug_assert_eq!(coeffs.len(), 3usize.pow(n as u32));
    debug_assert_eq!(point.len(), n);
    scratch.clear();
    scratch.extend_from_slice(coeffs);
    let mut len = scratch.len();
    for &x in point.iter().take(n) {
        let mut w = 0usize;
        let mut r = 0usize;
        while r < len {
            scratch[w] = scratch[r] + x * (scratch[r + 1] + x * scratch[r + 2]);
            w += 1;
            r += 3;
        }
        len = w;
    }
    scratch[0]
}

/// The `2ⁿ` corner values of a multilinear polynomial — its Bernstein
/// coefficients over `[0,1]ⁿ` — via the subset-sum (zeta) butterfly:
/// `v[mask] = Σ_{S ⊆ mask} coeffs[S]`, `O(n·2ⁿ)`.
pub fn multilinear_corners<C: Coeff>(m: &Multilinear<C>) -> Vec<f64> {
    let n = m.arity();
    let mut v: Vec<f64> = m.coeffs().iter().map(Coeff::to_f64).collect();
    for i in 0..n {
        let bit = 1usize << i;
        for mask in 0..v.len() {
            if mask & bit != 0 {
                v[mask] += v[mask ^ bit];
            }
        }
    }
    v
}

/// The portable scalar kernels, callable directly regardless of the
/// active ISA — the oracle the bit-identity proptests compare every
/// vector and tiled path against.
pub mod reference {
    use super::{mas_d, split_d, split_d_inplace, widest_d, Kern, ScalarK};

    /// Scalar [`coefficient_range`](super::coefficient_range).
    pub fn coefficient_range(coeffs: &[f64]) -> (f64, f64) {
        ScalarK::range(coeffs)
    }

    /// Scalar [`split_halves`](super::split_halves).
    pub fn split_halves(
        parent: &[f64],
        n: usize,
        dim: usize,
        left: &mut Vec<f64>,
        right: &mut Vec<f64>,
    ) {
        split_d::<ScalarK>(parent, n, dim, left, right);
    }

    /// Scalar [`split_halves_min`](super::split_halves_min).
    pub fn split_halves_min(
        parent: &[f64],
        n: usize,
        dim: usize,
        left: &mut Vec<f64>,
        right: &mut Vec<f64>,
    ) -> (f64, f64) {
        split_d::<ScalarK>(parent, n, dim, left, right)
    }

    /// Scalar [`split_halves_min_inplace`](super::split_halves_min_inplace).
    pub fn split_halves_min_inplace(
        left: &mut [f64],
        n: usize,
        dim: usize,
        right: &mut Vec<f64>,
    ) -> (f64, f64) {
        split_d_inplace::<ScalarK>(left, n, dim, right)
    }

    /// Scalar untiled
    /// [`midpoint_and_split_axis`](super::midpoint_and_split_axis).
    pub fn midpoint_and_split_axis(
        coeffs: &[f64],
        n: usize,
        scratch: &mut Vec<f64>,
    ) -> (f64, usize) {
        // `usize::MAX` rounds down to a tile ≥ the tensor ⟹ untiled.
        mas_d::<ScalarK>(coeffs, n, scratch, usize::MAX)
    }

    /// Scalar [`midpoint_and_split_axis_tiled`](super::midpoint_and_split_axis_tiled).
    pub fn midpoint_and_split_axis_tiled(
        coeffs: &[f64],
        n: usize,
        scratch: &mut Vec<f64>,
        block: usize,
    ) -> (f64, usize) {
        mas_d::<ScalarK>(coeffs, n, scratch, block)
    }

    /// Scalar untiled
    /// [`widest_derivative_axis`](super::widest_derivative_axis).
    pub fn widest_derivative_axis(coeffs: &[f64], n: usize) -> usize {
        widest_d::<ScalarK>(coeffs, n, usize::MAX)
    }

    /// Scalar [`widest_derivative_axis_tiled`](super::widest_derivative_axis_tiled).
    pub fn widest_derivative_axis_tiled(coeffs: &[f64], n: usize, block: usize) -> usize {
        widest_d::<ScalarK>(coeffs, n, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polynomial;

    fn quad2() -> Polynomial<f64> {
        // f = 2x² − 3xy + y² + y − 1 over 2 vars: degree 2 per variable.
        let x = Polynomial::<f64>::var(2, 0);
        let y = Polynomial::<f64>::var(2, 1);
        x.pow(2)
            .scale(&2.0)
            .sub(&x.mul(&y).scale(&3.0))
            .add(&y.pow(2))
            .add(&y)
            .sub(&Polynomial::constant(2, 1.0))
    }

    fn pow3_coeffs(p: &Polynomial<f64>, n: usize) -> Vec<f64> {
        let mut coeffs = vec![0.0; 3usize.pow(n as u32)];
        for (m, c) in p.terms() {
            let mut idx = 0usize;
            let mut stride = 1usize;
            for i in 0..n {
                idx += m.exp(i) as usize * stride;
                stride *= 3;
            }
            coeffs[idx] += *c;
        }
        coeffs
    }

    #[test]
    fn bernstein_vertices_equal_corner_values() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        for mask in 0u32..4 {
            let p = [(mask & 1) as f64, (mask >> 1 & 1) as f64];
            let idx = vertex_index(2, mask);
            assert!((b[idx] - f.eval_f64(&p)).abs() < 1e-12, "corner {mask}");
        }
    }

    #[test]
    fn halving_matches_direct_substitution() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        let (mut l, mut r) = (Vec::new(), Vec::new());
        split_halves(&b, 2, 0, &mut l, &mut r);
        // Children's vertex coefficients are values at the halved corners.
        for (child, lo) in [(&l, 0.0), (&r, 0.5)] {
            for mask in 0u32..4 {
                let x = lo + 0.5 * (mask & 1) as f64;
                let y = (mask >> 1 & 1) as f64;
                let idx = vertex_index(2, mask);
                assert!((child[idx] - f.eval_f64(&[x, y])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ranged_halving_matches_child_ranges() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        for dim in 0..2 {
            let (mut l, mut r) = (Vec::new(), Vec::new());
            let (lmin, rmin) = split_halves_min(&b, 2, dim, &mut l, &mut r);
            assert_eq!(lmin.to_bits(), coefficient_range(&l).0.to_bits());
            assert_eq!(rmin.to_bits(), coefficient_range(&r).0.to_bits());
        }
    }

    #[test]
    fn midpoint_contraction_matches_eval() {
        let f = quad2();
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        let mut scratch = Vec::new();
        let got = midpoint_value(&b, 2, &mut scratch);
        assert!((got - f.eval_f64(&[0.5, 0.5])).abs() < 1e-12);
    }

    #[test]
    fn derivative_axis_prefers_fast_variation() {
        // f = 9x² + y: varies much faster along x.
        let x = Polynomial::<f64>::var(2, 0);
        let y = Polynomial::<f64>::var(2, 1);
        let f = x.pow(2).scale(&9.0).add(&y);
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        assert_eq!(widest_derivative_axis(&b, 2), 0);
    }

    #[test]
    fn fused_probe_matches_midpoint_and_prefers_fast_variation() {
        // f = 9x² + y: varies much faster along x (axis 0).
        let x = Polynomial::<f64>::var(2, 0);
        let y = Polynomial::<f64>::var(2, 1);
        let f = x.pow(2).scale(&9.0).add(&y);
        let mut b = pow3_coeffs(&f, 2);
        pow3_to_bernstein(&mut b, 2);
        let mut scratch = Vec::new();
        let (mid, axis) = midpoint_and_split_axis(&b, 2, &mut scratch);
        assert!((mid - midpoint_value(&b, 2, &mut scratch)).abs() < 1e-12);
        assert_eq!(axis, 0);
        // And the mirrored polynomial prefers the other axis.
        let g = y.pow(2).scale(&9.0).add(&x);
        let mut b = pow3_coeffs(&g, 2);
        pow3_to_bernstein(&mut b, 2);
        let (_, axis) = midpoint_and_split_axis(&b, 2, &mut scratch);
        assert_eq!(axis, 1);
    }

    #[test]
    fn tiled_probe_is_bit_identical_to_untiled() {
        // Deterministic pseudo-random tensor, n = 7 (2187 elements) so a
        // forced 27-element tile exercises both phases of the tiled path.
        let n = 7usize;
        let mut state = 0x9e3779b97f4a7c15u64;
        let coeffs: Vec<f64> = (0..3usize.pow(n as u32))
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        let (mid_u, axis_u) = reference::midpoint_and_split_axis(&coeffs, n, &mut s1);
        for block in [27, 81, 243, 729] {
            let (mid_t, axis_t) =
                reference::midpoint_and_split_axis_tiled(&coeffs, n, &mut s2, block);
            assert_eq!(mid_u.to_bits(), mid_t.to_bits(), "tile {block}");
            assert_eq!(axis_u, axis_t, "tile {block}");
            assert_eq!(
                reference::widest_derivative_axis(&coeffs, n),
                reference::widest_derivative_axis_tiled(&coeffs, n, block),
                "tile {block}"
            );
        }
    }

    #[test]
    fn forced_isa_is_clamped_to_availability() {
        let prev = active_isa();
        let got = force_isa(Some(Isa::Scalar));
        assert_eq!(got, Isa::Scalar);
        // Re-resolve; on non-x86 or scalar-only builds this stays Scalar.
        let auto = force_isa(None);
        if cfg!(not(all(feature = "simd", target_arch = "x86_64"))) {
            assert_eq!(auto, Isa::Scalar);
        }
        force_isa(Some(prev));
    }

    #[test]
    fn pow3_contraction_matches_per_monomial_eval() {
        let f = quad2();
        let coeffs = pow3_coeffs(&f, 2);
        let mut scratch = Vec::new();
        for p in [[0.0, 0.0], [1.0, 1.0], [0.3, 0.7], [0.5, 0.125]] {
            let got = eval_pow3(&coeffs, 2, &p, &mut scratch);
            assert!((got - f.eval_f64(&p)).abs() < 1e-12, "at {p:?}");
        }
    }

    #[test]
    fn deg1_halving_and_corners_agree_with_eval() {
        let m = Multilinear::<f64>::var(3, 0)
            .add(&Multilinear::var(3, 1).scale(&-2.0))
            .add(&Multilinear::var(3, 2))
            .add(&Multilinear::constant(3, 0.25));
        let corners = multilinear_corners(&m);
        for (mask, corner) in corners.iter().enumerate() {
            let p: Vec<f64> = (0..3).map(|i| (mask >> i & 1) as f64).collect();
            assert!((corner - m.eval_f64(&p)).abs() < 1e-12);
        }
        let (mut l, mut r) = (Vec::new(), Vec::new());
        split_halves_deg1(&corners, 3, 1, &mut l, &mut r);
        for (child, lo) in [(&l, 0.0), (&r, 0.5)] {
            for (mask, value) in child.iter().enumerate() {
                let p: Vec<f64> = (0..3)
                    .map(|i| {
                        let t = (mask >> i & 1) as f64;
                        if i == 1 {
                            lo + 0.5 * t
                        } else {
                            t
                        }
                    })
                    .collect();
                assert!((value - m.eval_f64(&p)).abs() < 1e-12);
            }
        }
    }
}
