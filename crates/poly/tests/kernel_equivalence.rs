//! Bit-identity of the subdivision kernels across instruction sets and
//! tilings.
//!
//! The solver's deterministic wave mode promises byte-identical verdicts
//! regardless of CPU, lane width, or cache blocking, so the vector and
//! tiled kernel paths must reproduce the portable scalar oracle
//! ([`subdivision::reference`]) **bit-for-bit** — `to_bits()` equality,
//! not a tolerance. Tensors here are adversarial for that claim: mixed
//! magnitudes, exact dyadics, negative zeros and subnormals, and lengths
//! covering every chunk-remainder class of the 2/4/12-wide loops
//! (`3ⁿ mod 4 ∈ {1, 3}`, `mod 12` varies with `n`).
//!
//! Without the `simd` feature this suite still pins the tiled drivers to
//! the untiled ones; with it, every available ISA is forced in turn
//! ([`force_isa`] is process-global, so a mutex serializes the cases).

use epi_poly::subdivision::{self, force_isa, reference, Isa};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, OnceLock};

/// Serializes tests that pin the process-global kernel ISA.
fn isa_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// A coefficient value that stresses bit-identity: mixed magnitudes,
/// exact dyadics, zeros of both signs, and subnormals.
fn adversarial_coeff(rng: &mut rand::rngs::StdRng) -> f64 {
    match rng.gen_range(0u32..10) {
        // Plain values in [-1, 1].
        0..=4 => rng.gen_range(-1.0f64..1.0),
        // Wide dynamic range: ±x · 2^k.
        5 | 6 => {
            let k = rng.gen_range(-60i32..60);
            rng.gen_range(-1.0f64..1.0) * (2.0f64).powi(k)
        }
        // Exact dyadics (the solver's root tensors are integer-valued).
        7 => rng.gen_range(-64i64..=64) as f64 * 0.0625,
        // Signed zeros.
        8 => {
            if rng.gen::<bool>() {
                0.0
            } else {
                -0.0
            }
        }
        // Subnormals (and the smallest normals).
        _ => {
            let bits = rng.gen_range(1u64..(1u64 << 52) + (1 << 51));
            let v = f64::from_bits(bits);
            if rng.gen::<bool>() {
                -v
            } else {
                v
            }
        }
    }
}

fn random_tensor(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..3usize.pow(n as u32))
        .map(|_| adversarial_coeff(&mut rng))
        .collect()
}

/// Every ISA this build and CPU can actually run.
fn available_isas() -> Vec<Isa> {
    let mut isas = vec![Isa::Scalar];
    for isa in [Isa::Sse2, Isa::Avx2] {
        if force_isa(Some(isa)) == isa {
            isas.push(isa);
        }
    }
    force_isa(None);
    isas
}

/// Asserts every dispatched kernel matches the scalar oracle bit-for-bit
/// on `coeffs`, including the tiled variants at `block`.
fn assert_kernels_match_reference(coeffs: &[f64], n: usize, block: usize, ctx: &str) {
    // coefficient_range.
    let (rmin, rmax) = reference::coefficient_range(coeffs);
    let (dmin, dmax) = subdivision::coefficient_range(coeffs);
    assert_eq!(rmin.to_bits(), dmin.to_bits(), "{ctx}: range min");
    assert_eq!(rmax.to_bits(), dmax.to_bits(), "{ctx}: range max");

    // widest_derivative_axis, untiled and tiled.
    assert_eq!(
        reference::widest_derivative_axis(coeffs, n),
        subdivision::widest_derivative_axis(coeffs, n),
        "{ctx}: widest axis"
    );
    assert_eq!(
        reference::widest_derivative_axis(coeffs, n),
        subdivision::widest_derivative_axis_tiled(coeffs, n, block),
        "{ctx}: widest axis tiled({block})"
    );

    // midpoint_and_split_axis, untiled and tiled.
    let mut sr = Vec::new();
    let mut sd = Vec::new();
    let (rmid, raxis) = reference::midpoint_and_split_axis(coeffs, n, &mut sr);
    let (dmid, daxis) = subdivision::midpoint_and_split_axis(coeffs, n, &mut sd);
    assert_eq!(rmid.to_bits(), dmid.to_bits(), "{ctx}: probe mid");
    assert_eq!(raxis, daxis, "{ctx}: probe axis");
    let (tmid, taxis) = subdivision::midpoint_and_split_axis_tiled(coeffs, n, &mut sd, block);
    assert_eq!(
        rmid.to_bits(),
        tmid.to_bits(),
        "{ctx}: probe mid tiled({block})"
    );
    assert_eq!(raxis, taxis, "{ctx}: probe axis tiled({block})");

    // split_halves_min along every axis: child tensors and child minima.
    let (mut rl, mut rr) = (Vec::new(), Vec::new());
    let (mut dl, mut dr) = (Vec::new(), Vec::new());
    for dim in 0..n {
        let (rlm, rrm) = reference::split_halves_min(coeffs, n, dim, &mut rl, &mut rr);
        let (dlm, drm) = subdivision::split_halves_min(coeffs, n, dim, &mut dl, &mut dr);
        assert_eq!(rlm.to_bits(), dlm.to_bits(), "{ctx}: dim {dim} left min");
        assert_eq!(rrm.to_bits(), drm.to_bits(), "{ctx}: dim {dim} right min");
        for i in 0..rl.len() {
            assert_eq!(
                rl[i].to_bits(),
                dl[i].to_bits(),
                "{ctx}: dim {dim} left[{i}]"
            );
            assert_eq!(
                rr[i].to_bits(),
                dr[i].to_bits(),
                "{ctx}: dim {dim} right[{i}]"
            );
        }
        // The fused minima are exactly the children's range minima.
        assert_eq!(
            rlm.to_bits(),
            reference::coefficient_range(&rl).0.to_bits(),
            "{ctx}: dim {dim} fused left min vs range"
        );
        assert_eq!(
            rrm.to_bits(),
            reference::coefficient_range(&rr).0.to_bits(),
            "{ctx}: dim {dim} fused right min vs range"
        );

        // The in-place halving (parent buffer becomes the left child)
        // reproduces the out-of-place children bit-for-bit, on the
        // dispatched ISA and on the scalar oracle.
        let mut il = coeffs.to_vec();
        let mut ir = Vec::new();
        let (ilm, irm) = subdivision::split_halves_min_inplace(&mut il, n, dim, &mut ir);
        assert_eq!(
            rlm.to_bits(),
            ilm.to_bits(),
            "{ctx}: dim {dim} inplace left min"
        );
        assert_eq!(
            rrm.to_bits(),
            irm.to_bits(),
            "{ctx}: dim {dim} inplace right min"
        );
        for i in 0..rl.len() {
            assert_eq!(
                rl[i].to_bits(),
                il[i].to_bits(),
                "{ctx}: dim {dim} inplace left[{i}]"
            );
            assert_eq!(
                rr[i].to_bits(),
                ir[i].to_bits(),
                "{ctx}: dim {dim} inplace right[{i}]"
            );
        }
        let mut sl = coeffs.to_vec();
        let mut sr2 = Vec::new();
        let (slm, srm) = reference::split_halves_min_inplace(&mut sl, n, dim, &mut sr2);
        assert_eq!(
            rlm.to_bits(),
            slm.to_bits(),
            "{ctx}: dim {dim} scalar inplace left min"
        );
        assert_eq!(
            rrm.to_bits(),
            srm.to_bits(),
            "{ctx}: dim {dim} scalar inplace right min"
        );
        for i in 0..rl.len() {
            assert_eq!(
                rl[i].to_bits(),
                sl[i].to_bits(),
                "{ctx}: dim {dim} scalar inplace left[{i}]"
            );
            assert_eq!(
                rr[i].to_bits(),
                sr2[i].to_bits(),
                "{ctx}: dim {dim} scalar inplace right[{i}]"
            );
        }
    }
}

proptest! {
    /// Tentpole property: for every available ISA, every kernel — plus
    /// the tiled variants at a random block size — reproduces the scalar
    /// oracle bit-for-bit on adversarial tensors of every arity 1..=10.
    #[test]
    fn all_isas_match_scalar_oracle(seed in any::<u64>(), n in 1usize..=10) {
        let coeffs = random_tensor(n, seed);
        let blocks = [0usize, 27, 81, 243, 729, 6561];
        let block = blocks[(seed % blocks.len() as u64) as usize];
        let _guard = isa_lock().lock().unwrap();
        for isa in available_isas() {
            let eff = force_isa(Some(isa));
            assert_eq!(eff, isa);
            assert_kernels_match_reference(&coeffs, n, block, &format!("isa {:?} n {n}", isa));
        }
        force_isa(None);
    }

    /// The tiled scalar drivers are bit-identical to the untiled scalar
    /// drivers at every tile size (pure re-association of order-free
    /// reductions) — independent of dispatch, so no ISA pinning needed.
    #[test]
    fn tiling_never_changes_results(seed in any::<u64>(), n in 1usize..=9) {
        let coeffs = random_tensor(n, seed);
        let mut su = Vec::new();
        let mut st = Vec::new();
        let (umid, uaxis) = reference::midpoint_and_split_axis(&coeffs, n, &mut su);
        let uwidest = reference::widest_derivative_axis(&coeffs, n);
        for block in [27usize, 81, 243, 729, 2187] {
            let (tmid, taxis) =
                reference::midpoint_and_split_axis_tiled(&coeffs, n, &mut st, block);
            prop_assert_eq!(umid.to_bits(), tmid.to_bits());
            prop_assert_eq!(uaxis, taxis);
            prop_assert_eq!(
                uwidest,
                reference::widest_derivative_axis_tiled(&coeffs, n, block)
            );
        }
    }

    /// Exact-vertex property under whatever ISA is active: after a chain
    /// of random halvings, vertex coefficients still equal the original
    /// tensor's corner values halved into the sub-box — de Casteljau at
    /// t = ½ is exact dyadic arithmetic, so this is `==` on dyadic
    /// inputs, not a tolerance.
    #[test]
    fn split_keeps_dyadic_vertices_exact(seed in any::<u64>(), n in 1usize..=6, depth in 1usize..=5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Integer tensors (like the solver's root gap tensors).
        let mut bern: Vec<f64> = (0..3usize.pow(n as u32))
            .map(|_| rng.gen_range(-8i64..=8) as f64)
            .collect();
        // Track one corner's exact value through the halvings via
        // midpoint refinement on the Bernstein triple of a single axis.
        let (mut l, mut r) = (Vec::new(), Vec::new());
        for _ in 0..depth {
            let dim = rng.gen_range(0..n);
            let (lmin, rmin) = subdivision::split_halves_min(&bern, n, dim, &mut l, &mut r);
            // Fused minima agree with a fresh range scan of each child.
            prop_assert_eq!(lmin.to_bits(), subdivision::coefficient_range(&l).0.to_bits());
            prop_assert_eq!(rmin.to_bits(), subdivision::coefficient_range(&r).0.to_bits());
            // The shared face is exact: left's high face equals right's
            // low face bit-for-bit.
            for (i, rv) in r.iter().enumerate() {
                let digit = i / 3usize.pow(dim as u32) % 3;
                if digit == 0 {
                    let li = i + 2 * 3usize.pow(dim as u32);
                    prop_assert_eq!(l[li].to_bits(), rv.to_bits());
                }
            }
            bern = if rng.gen::<bool>() { l.clone() } else { r.clone() };
        }
        // Bernstein range still encloses the vertex values (min ≤ vertex
        // ≤ max for every corner mask).
        let (mn, mx) = subdivision::coefficient_range(&bern);
        for mask in 0u32..1 << n {
            let v = bern[subdivision::vertex_index(n, mask)];
            prop_assert!(mn <= v && v <= mx);
        }
    }
}
