//! # epi-sdp
//!
//! A projection-based semidefinite feasibility solver — the numerical
//! engine behind the sum-of-squares heuristic of Section 6.2 of the
//! *Epistemic Privacy* paper (Proposition 6.4: testing `f ∈ Σ²` is a
//! semidefinite program).
//!
//! The problem solved is semidefinite *feasibility* in standard form:
//!
//! ```text
//! find  X ⪰ 0   with   ⟨A_k, X⟩ = b_k   (k = 1 … m)
//! ```
//!
//! via alternating projections between the affine subspace
//! `L = {X : ⟨A_k, X⟩ = b_k}` (a linear least-squares step) and the PSD
//! cone (an eigendecomposition clamp), optionally with Dykstra's
//! correction, which converges to a point of the intersection whenever one
//! exists. For the Gram-matrix SDPs produced by `epi-sos` (dozens of rows,
//! highly structured constraints) this simple method is robust and fast,
//! and — unlike an interior-point code — trivially auditable.
//!
//! A returned [`SdpStatus::Feasible`] witness is *post-verified*: the
//! residuals reported alongside it are recomputed from scratch, so callers
//! can apply their own acceptance thresholds (the SOS layer additionally
//! re-verifies by Cholesky with a ridge before trusting a certificate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use epi_linalg::{is_psd, project_psd, solve, LinalgError, Matrix};

/// A semidefinite feasibility problem over symmetric `dim × dim` matrices.
#[derive(Clone, Debug)]
pub struct SdpProblem {
    dim: usize,
    constraints: Vec<(Matrix, f64)>,
}

impl SdpProblem {
    /// Creates an unconstrained problem over `dim × dim` matrices.
    pub fn new(dim: usize) -> SdpProblem {
        SdpProblem {
            dim,
            constraints: Vec::new(),
        }
    }

    /// Adds the constraint `⟨a, X⟩ = b`. `a` is symmetrized (only its
    /// symmetric part acts on symmetric `X`).
    ///
    /// # Panics
    ///
    /// Panics when `a` is not `dim × dim`.
    pub fn add_constraint(&mut self, mut a: Matrix, b: f64) {
        assert_eq!(
            (a.rows(), a.cols()),
            (self.dim, self.dim),
            "constraint matrix has wrong shape"
        );
        a.symmetrize();
        self.constraints.push((a, b));
    }

    /// Matrix side length.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Largest constraint violation `max |⟨A_k, X⟩ − b_k|` at `x`.
    pub fn residual(&self, x: &Matrix) -> f64 {
        self.constraints
            .iter()
            .map(|(a, b)| (a.frobenius_dot(x) - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Outcome of a feasibility solve.
#[derive(Clone, Debug)]
pub enum SdpStatus {
    /// A PSD matrix satisfying the constraints within the tolerances; the
    /// reported `constraint_residual` is recomputed from the witness.
    Feasible {
        /// The feasible point.
        x: Matrix,
        /// `max_k |⟨A_k, X⟩ − b_k|`.
        constraint_residual: f64,
    },
    /// The projections stalled at a positive gap; strong evidence (not a
    /// certificate) that the intersection is empty.
    Stalled {
        /// Best constraint residual among PSD iterates.
        best_residual: f64,
        /// Iterations consumed.
        iterations: usize,
    },
    /// A numerical kernel failed (ill-conditioned constraint Gram matrix or
    /// non-convergent eigensolve).
    NumericalFailure(LinalgError),
}

/// The projection scheme used by [`solve_feasibility`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectionMethod {
    /// Douglas–Rachford splitting (default): reflect–reflect–average.
    /// Converges linearly on most instances, including the degenerate
    /// low-dimensional-face solutions produced by SOS programs, where plain
    /// alternating projections crawl sublinearly.
    DouglasRachford,
    /// Plain alternating projections (POCS) — ablation baseline.
    Alternating,
    /// Alternating projections with Dykstra's correction — ablation
    /// baseline (converges to the *projection* of the start, at POCS-like
    /// rates).
    Dykstra,
}

/// Options for [`solve_feasibility`].
#[derive(Clone, Copy, Debug)]
pub struct SdpOptions {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Acceptance threshold on the constraint residual of a PSD iterate.
    pub tolerance: f64,
    /// The projection scheme.
    pub method: ProjectionMethod,
    /// Give up early when the residual plateaus (cheap infeasibility
    /// detection). Disable to spend the whole iteration budget on
    /// slowly-converging degenerate instances.
    pub stall_detection: bool,
}

impl Default for SdpOptions {
    fn default() -> Self {
        SdpOptions {
            max_iterations: 6000,
            tolerance: 1e-7,
            method: ProjectionMethod::DouglasRachford,
            stall_detection: true,
        }
    }
}

/// Projects onto the affine subspace `{X : ⟨A_k, X⟩ = b_k}` by solving the
/// normal equations of the constraint Gram matrix (ridged for redundancy).
struct AffineProjector<'a> {
    problem: &'a SdpProblem,
    gram: Matrix,
}

impl<'a> AffineProjector<'a> {
    fn new(problem: &'a SdpProblem) -> AffineProjector<'a> {
        let m = problem.constraints.len();
        let mut gram = Matrix::zeros(m, m);
        for i in 0..m {
            for j in i..m {
                let g = problem.constraints[i]
                    .0
                    .frobenius_dot(&problem.constraints[j].0);
                gram[(i, j)] = g;
                gram[(j, i)] = g;
            }
        }
        // Tiny ridge tolerates linearly dependent constraints.
        for i in 0..m {
            gram[(i, i)] += 1e-12;
        }
        AffineProjector { problem, gram }
    }

    fn project(&self, x: &Matrix) -> Result<Matrix, LinalgError> {
        let m = self.problem.constraints.len();
        if m == 0 {
            return Ok(x.clone());
        }
        let r: Vec<f64> = self
            .problem
            .constraints
            .iter()
            .map(|(a, b)| b - a.frobenius_dot(x))
            .collect();
        let lambda = solve(&self.gram, &r)?;
        let mut out = x.clone();
        for (l, (a, _)) in lambda.iter().zip(&self.problem.constraints) {
            if *l == 0.0 {
                continue;
            }
            for (o, v) in out.data_mut().iter_mut().zip(a.data()) {
                *o += l * v;
            }
        }
        Ok(out)
    }
}

/// Solves the feasibility problem by the configured projection scheme,
/// starting from the identity.
pub fn solve_feasibility(problem: &SdpProblem, options: SdpOptions) -> SdpStatus {
    let projector = AffineProjector::new(problem);
    let n = problem.dim();
    let mut x = Matrix::identity(n);
    // Dykstra correction memory for the PSD projection.
    let mut correction = Matrix::zeros(n, n);
    let mut best_residual = f64::INFINITY;
    for iter in 0..options.max_iterations {
        // One step of the chosen scheme produces a PSD candidate `z`.
        let z = match options.method {
            ProjectionMethod::DouglasRachford => {
                // y ← y + P_psd(2·P_aff(y) − y) − P_aff(y); candidate is
                // the PSD projection of the affine point.
                let pa = match projector.project(&x) {
                    Ok(y) => y,
                    Err(e) => return SdpStatus::NumericalFailure(e),
                };
                let reflected = &pa.scale(2.0) - &x;
                let pb = match project_psd(&reflected) {
                    Ok(z) => z,
                    Err(e) => return SdpStatus::NumericalFailure(e),
                };
                x = &(&x + &pb) - &pa;
                match project_psd(&pa) {
                    Ok(z) => z,
                    Err(e) => return SdpStatus::NumericalFailure(e),
                }
            }
            ProjectionMethod::Alternating | ProjectionMethod::Dykstra => {
                let dykstra = options.method == ProjectionMethod::Dykstra;
                let y = match projector.project(&x) {
                    Ok(y) => y,
                    Err(e) => return SdpStatus::NumericalFailure(e),
                };
                let pre = if dykstra { &y + &correction } else { y.clone() };
                let z = match project_psd(&pre) {
                    Ok(z) => z,
                    Err(e) => return SdpStatus::NumericalFailure(e),
                };
                if dykstra {
                    correction = &pre - &z;
                }
                x = z.clone();
                z
            }
        };
        let residual = problem.residual(&z);
        best_residual = best_residual.min(residual);
        if residual < options.tolerance {
            return SdpStatus::Feasible {
                constraint_residual: residual,
                x: z,
            };
        }
        // Cheap stall detection: if the residual is not improving late in
        // the run, stop early.
        if options.stall_detection
            && iter > 500
            && iter % 250 == 0
            && residual > 0.999 * best_residual
            && residual > 1e4 * options.tolerance
        {
            return SdpStatus::Stalled {
                best_residual,
                iterations: iter + 1,
            };
        }
    }
    SdpStatus::Stalled {
        best_residual,
        iterations: options.max_iterations,
    }
}

/// Convenience: `true` iff the solve produced a feasible witness that is
/// PSD within `psd_tol` (re-verified independently of the solver).
pub fn is_feasible(problem: &SdpProblem, options: SdpOptions, psd_tol: f64) -> bool {
    match solve_feasibility(problem, options) {
        SdpStatus::Feasible { x, .. } => is_psd(&x, psd_tol),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_psd(n: usize, rng: &mut impl Rng) -> Matrix {
        let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        &b * &b.transpose()
    }

    fn basis_matrix(n: usize, i: usize, j: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        if i == j {
            m[(i, i)] = 1.0;
        } else {
            m[(i, j)] = 0.5;
            m[(j, i)] = 0.5;
        }
        m
    }

    #[test]
    fn feasible_random_instances() {
        // Constraints generated from a known PSD X₀ are feasible by
        // construction; the solver must find some feasible point.
        let mut rng = rand::rngs::StdRng::seed_from_u64(163);
        for trial in 0..10 {
            let n = 5;
            let x0 = random_psd(n, &mut rng);
            let mut problem = SdpProblem::new(n);
            for _ in 0..6 {
                let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
                a.symmetrize();
                let b = a.frobenius_dot(&x0);
                problem.add_constraint(a, b);
            }
            match solve_feasibility(&problem, SdpOptions::default()) {
                SdpStatus::Feasible {
                    x,
                    constraint_residual,
                } => {
                    assert!(constraint_residual < 1e-7);
                    assert!(is_psd(&x, 1e-7), "witness must be PSD");
                    assert!(problem.residual(&x) < 1e-7);
                }
                other => panic!("trial {trial}: expected feasible, got {other:?}"),
            }
        }
    }

    #[test]
    fn infeasible_by_negative_trace() {
        // trace(X) = −1 is impossible for X ⪰ 0.
        let n = 4;
        let mut problem = SdpProblem::new(n);
        problem.add_constraint(Matrix::identity(n), -1.0);
        match solve_feasibility(
            &problem,
            SdpOptions {
                max_iterations: 600,
                ..Default::default()
            },
        ) {
            SdpStatus::Stalled { best_residual, .. } => {
                assert!(best_residual > 0.1, "gap should stay large");
            }
            SdpStatus::Feasible { .. } => panic!("cannot be feasible"),
            SdpStatus::NumericalFailure(e) => panic!("unexpected failure: {e}"),
        }
        assert!(!is_feasible(&problem, SdpOptions::default(), 1e-9));
    }

    #[test]
    fn infeasible_by_conflicting_entries() {
        // X₁₁ = −2 conflicts with PSD (diagonal of a PSD matrix is ≥ 0).
        let n = 3;
        let mut problem = SdpProblem::new(n);
        problem.add_constraint(basis_matrix(n, 0, 0), -2.0);
        assert!(!is_feasible(&problem, SdpOptions::default(), 1e-9));
    }

    #[test]
    fn diagonal_prescription_feasible() {
        // Prescribing a PSD-compatible diagonal and an off-diagonal entry.
        let n = 3;
        let mut problem = SdpProblem::new(n);
        problem.add_constraint(basis_matrix(n, 0, 0), 2.0);
        problem.add_constraint(basis_matrix(n, 1, 1), 2.0);
        problem.add_constraint(basis_matrix(n, 0, 1), 1.0);
        match solve_feasibility(&problem, SdpOptions::default()) {
            SdpStatus::Feasible { x, .. } => {
                assert!((x[(0, 0)] - 2.0).abs() < 1e-6);
                assert!((x[(0, 1)] - 1.0).abs() < 1e-6);
                assert!(is_psd(&x, 1e-8));
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn all_methods_agree_on_feasibility() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(167);
        for _ in 0..5 {
            let n = 4;
            let x0 = random_psd(n, &mut rng);
            let mut problem = SdpProblem::new(n);
            for _ in 0..4 {
                let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
                a.symmetrize();
                let b = a.frobenius_dot(&x0);
                problem.add_constraint(a, b);
            }
            for method in [
                ProjectionMethod::DouglasRachford,
                ProjectionMethod::Alternating,
                ProjectionMethod::Dykstra,
            ] {
                let opts = SdpOptions {
                    method,
                    ..Default::default()
                };
                assert!(is_feasible(&problem, opts, 1e-7), "method {method:?}");
            }
        }
    }

    #[test]
    fn redundant_constraints_tolerated() {
        let n = 3;
        let mut problem = SdpProblem::new(n);
        let a = basis_matrix(n, 0, 0);
        problem.add_constraint(a.clone(), 1.0);
        problem.add_constraint(a.clone(), 1.0); // duplicate
        problem.add_constraint(a.scale(2.0), 2.0); // dependent
        assert!(is_feasible(&problem, SdpOptions::default(), 1e-8));
    }

    #[test]
    fn unconstrained_problem_immediately_feasible() {
        let problem = SdpProblem::new(4);
        match solve_feasibility(&problem, SdpOptions::default()) {
            SdpStatus::Feasible { x, .. } => assert!(is_psd(&x, 1e-10)),
            other => panic!("expected feasible, got {other:?}"),
        }
    }
}
