//! Adaptive overload control: AIMD admission limiting, the degradation
//! ladder, and per-user fairness token buckets.
//!
//! The daemon's original overload story was one static knob — the
//! bounded decision queue with [`crate::QueuePolicy::Shed`]. This module
//! replaces that cliff with a closed loop: an [`AdmissionController`]
//! tracks the observed queue wait as an EWMA and adjusts a concurrency
//! limit AIMD-style (additive increase while waits stay under the
//! target, multiplicative decrease when they overshoot), a
//! [`DegradationLadder`] maps sustained pressure and storage trouble to
//! an explicit serving mode, and [`TokenBuckets`] keeps one user's storm
//! from starving a shard's other users.
//!
//! Everything here **fails closed**: a degraded daemon may refuse to
//! answer, but it never answers `safe` because it was too busy to check
//! (the conservative stance the paper's §3.3 semantics demand of a
//! confidentiality gate).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for the [`AdmissionController`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionOptions {
    /// Master switch. Disabled, the controller admits everything and the
    /// limit gauge stays at `max_limit`.
    pub enabled: bool,
    /// Queue-wait target in microseconds: the latency the AIMD loop
    /// steers toward. Waits above it shrink the limit, waits below it
    /// grow it back.
    pub target_wait_micros: u64,
    /// Floor for the adaptive limit (never shed below this concurrency).
    pub min_limit: usize,
    /// Ceiling for the adaptive limit; also the initial limit, so an
    /// unloaded daemon behaves exactly like the pre-adaptive one.
    pub max_limit: usize,
}

impl Default for AdmissionOptions {
    fn default() -> AdmissionOptions {
        AdmissionOptions {
            enabled: true,
            target_wait_micros: 5_000,
            min_limit: 1,
            max_limit: 1024,
        }
    }
}

/// Adaptive concurrency limiter for the decision pool.
///
/// `inflight` counts admitted decisions (queued or computing). The limit
/// moves AIMD-style on every completed queue wait the pool reports via
/// [`AdmissionController::observe_wait`]: a wait over twice the target
/// halves the limit (at most once per in-flight generation, so one burst
/// doesn't collapse it to the floor), and a full limit's worth of
/// on-target waits grows it by one. The EWMA (α = 1/8) doubles as the
/// deadline-aware admission estimate: a request whose remaining budget
/// is below the estimated queue wait is rejected *before* it occupies a
/// queue slot, because it would time out anyway and steal a worker from
/// a request that could still succeed.
#[derive(Debug)]
pub struct AdmissionController {
    opts: AdmissionOptions,
    limit: AtomicUsize,
    inflight: AtomicUsize,
    /// EWMA of observed queue wait, microseconds (fixed-point ×16).
    wait_ewma_x16: AtomicU64,
    /// Observations since the last additive increase.
    below_target: AtomicU64,
    /// Observations since the last multiplicative decrease (cooldown).
    since_decrease: AtomicU64,
}

impl AdmissionController {
    /// Creates a controller starting wide open at `max_limit`.
    pub fn new(opts: AdmissionOptions) -> AdmissionController {
        AdmissionController {
            opts,
            limit: AtomicUsize::new(opts.max_limit.max(1)),
            inflight: AtomicUsize::new(0),
            wait_ewma_x16: AtomicU64::new(0),
            below_target: AtomicU64::new(0),
            since_decrease: AtomicU64::new(0),
        }
    }

    /// The options this controller runs with.
    pub fn options(&self) -> &AdmissionOptions {
        &self.opts
    }

    /// Current adaptive limit.
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Decisions currently admitted (queued or computing).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Estimated queue wait for a newly admitted request, microseconds.
    pub fn estimated_wait_micros(&self) -> u64 {
        self.wait_ewma_x16.load(Ordering::Relaxed) / 16
    }

    /// Whether the observed queue wait exceeds the AIMD target — the
    /// ladder's pressure signal.
    pub fn over_target(&self) -> bool {
        self.opts.enabled && self.estimated_wait_micros() > self.opts.target_wait_micros
    }

    /// Admits one decision, or reports the concurrency limit is reached.
    /// Callers must pair a `true` return with exactly one
    /// [`AdmissionController::release`].
    pub fn try_admit(&self) -> bool {
        if !self.opts.enabled {
            self.inflight.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let limit = self.limit();
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Admits one decision without consulting the limit — used by
    /// blocking (backpressure) submitters, which are only *counted* so
    /// the in-flight gauge stays truthful. Pair with
    /// [`AdmissionController::release`] like a successful
    /// [`AdmissionController::try_admit`].
    pub fn admit_unchecked(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Releases one admitted decision.
    pub fn release(&self) {
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Feeds one observed queue wait into the EWMA and the AIMD loop.
    /// Returns the updated limit so the pool can export it as a gauge.
    pub fn observe_wait(&self, wait_micros: u64) -> usize {
        // EWMA with α = 1/8 in ×16 fixed point: new = old + (x - old)/8.
        let _ = self
            .wait_ewma_x16
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                let sample = wait_micros.saturating_mul(16);
                Some(old - old / 8 + sample / 8)
            });
        if !self.opts.enabled {
            return self.limit();
        }
        let limit = self.limit();
        if wait_micros > self.opts.target_wait_micros.saturating_mul(2) {
            // Multiplicative decrease, with a one-generation cooldown:
            // every wait observed while the queue drains one overloaded
            // burst reflects the *same* congestion event, and halving on
            // each would collapse the limit to the floor on one spike.
            let since = self.since_decrease.fetch_add(1, Ordering::Relaxed);
            if since >= limit as u64 {
                self.since_decrease.store(0, Ordering::Relaxed);
                self.below_target.store(0, Ordering::Relaxed);
                let next = (limit / 2).max(self.opts.min_limit);
                self.limit.store(next, Ordering::Relaxed);
                return next;
            }
        } else if wait_micros <= self.opts.target_wait_micros {
            // Additive increase once a full limit's worth of decisions
            // has cleared the queue on target.
            let below = self.below_target.fetch_add(1, Ordering::Relaxed) + 1;
            if below >= limit as u64 {
                self.below_target.store(0, Ordering::Relaxed);
                let next = (limit + 1).min(self.opts.max_limit);
                self.limit.store(next, Ordering::Relaxed);
                return next;
            }
        }
        limit
    }

    /// Decays the wait EWMA one step toward zero when no decision is in
    /// flight. The EWMA normally moves only when the pool dequeues
    /// work; once the ladder degrades to `CacheOnly`, nothing enqueues
    /// anymore, and without this decay the pressure reading would
    /// freeze above the de-escalation threshold and latch the
    /// degradation forever. The service invokes this on every ladder
    /// evaluation, so a degraded-but-idle daemon recovers at the pace
    /// requests keep probing it.
    pub fn decay_wait_when_idle(&self) {
        if self.inflight.load(Ordering::Relaxed) > 0 {
            return;
        }
        let _ = self
            .wait_ewma_x16
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
                Some(old - old / 8)
            });
    }
}

/// The degradation ladder's serving modes, in order of severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationMode {
    /// Full service.
    Normal = 0,
    /// Queue waits are over target: requests beyond the admission limit
    /// are shed immediately with a retry hint instead of blocking.
    Shedding = 1,
    /// Sustained heavy pressure: decisions are answered from the verdict
    /// cache only; uncached decisions fail closed with a retry hint.
    CacheOnly = 2,
    /// The disclosure log is quarantined or its fsyncs have stalled:
    /// disclosures are refused outright (they could not be made durable);
    /// `session`, `stats`, `metrics`, `trace` and `health` still serve.
    Frozen = 3,
}

impl DegradationMode {
    /// Stable wire spelling, as the `health` op reports it.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationMode::Normal => "normal",
            DegradationMode::Shedding => "shedding",
            DegradationMode::CacheOnly => "cache_only",
            DegradationMode::Frozen => "frozen",
        }
    }

    /// Gauge encoding for the metrics registry.
    pub fn as_gauge(self) -> u64 {
        self as u64
    }

    fn from_gauge(v: u64) -> DegradationMode {
        match v {
            1 => DegradationMode::Shedding,
            2 => DegradationMode::CacheOnly,
            3 => DegradationMode::Frozen,
            _ => DegradationMode::Normal,
        }
    }
}

/// Pressure signals the ladder folds into a mode, sampled by the service
/// on each evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LadderSignals {
    /// EWMA of decision-queue wait, microseconds.
    pub queue_wait_micros: u64,
    /// The AIMD target those waits are steered toward.
    pub target_wait_micros: u64,
    /// The admission limit has been driven to its floor (the controller
    /// halved as far as it can — reactor/backpressure-grade overload).
    pub limit_at_floor: bool,
    /// One or more WAL shards are quarantined after an I/O failure.
    pub wal_quarantined: bool,
    /// The WAL's fsyncs have stalled past the freeze threshold.
    pub wal_stalled: bool,
}

/// Hysteretic state machine over [`DegradationMode`].
///
/// Escalation is immediate (overload must be answered now); de-escalation
/// requires the signal to fall to *half* the escalation threshold, so the
/// ladder doesn't flap around a boundary. `Frozen` is level-triggered by
/// the storage signals: it clears the moment the log is healthy again
/// (which, for a quarantine, means after a restart).
#[derive(Debug, Default)]
pub struct DegradationLadder {
    mode: AtomicU64,
}

impl DegradationLadder {
    /// Creates a ladder in [`DegradationMode::Normal`].
    pub fn new() -> DegradationLadder {
        DegradationLadder::default()
    }

    /// The mode of the last evaluation.
    pub fn current(&self) -> DegradationMode {
        DegradationMode::from_gauge(self.mode.load(Ordering::Relaxed))
    }

    /// Folds fresh signals into a mode and stores it.
    pub fn evaluate(&self, s: LadderSignals) -> DegradationMode {
        let prev = self.current();
        let target = s.target_wait_micros.max(1);
        let next = if s.wal_quarantined || s.wal_stalled {
            DegradationMode::Frozen
        } else {
            // CacheOnly: waits at 4x target, or the limit pinned to its
            // floor while still over target (shrinking further is
            // impossible, so shedding alone has failed).
            let cache_only_up = s.queue_wait_micros > target.saturating_mul(4)
                || (s.limit_at_floor && s.queue_wait_micros > target);
            let shedding_up = s.queue_wait_micros > target;
            let cache_only_down = s.queue_wait_micros > target.saturating_mul(2);
            let shedding_down = s.queue_wait_micros > target / 2;
            match prev {
                // De-escalate one rung at a time, and only once the
                // pressure has genuinely receded (hysteresis).
                DegradationMode::Frozen | DegradationMode::CacheOnly => {
                    if cache_only_up {
                        DegradationMode::CacheOnly
                    } else if cache_only_down || shedding_down {
                        DegradationMode::Shedding
                    } else {
                        DegradationMode::Normal
                    }
                }
                DegradationMode::Shedding => {
                    if cache_only_up {
                        DegradationMode::CacheOnly
                    } else if shedding_down {
                        DegradationMode::Shedding
                    } else {
                        DegradationMode::Normal
                    }
                }
                DegradationMode::Normal => {
                    if cache_only_up {
                        DegradationMode::CacheOnly
                    } else if shedding_up {
                        DegradationMode::Shedding
                    } else {
                        DegradationMode::Normal
                    }
                }
            }
        };
        self.mode.store(next.as_gauge(), Ordering::Relaxed);
        next
    }
}

/// Per-user token buckets: one user's request storm drains only their
/// own bucket, so a shard's other users keep being served.
///
/// Buckets refill at `rate_per_sec` up to `burst`; a user with no bucket
/// yet starts full. The map is bounded: when it reaches `capacity`, the
/// stalest bucket that is already full (i.e. carries no throttling
/// state) is evicted first, and if every bucket is mid-refill the oldest
/// is evicted anyway — an attacker cannot grow the map without bound by
/// minting user names.
#[derive(Debug)]
pub struct TokenBuckets {
    rate_per_sec: u32,
    burst: u32,
    capacity: usize,
    buckets: Mutex<HashMap<String, Bucket>>,
}

#[derive(Clone, Copy, Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

impl TokenBuckets {
    /// Creates the fairness gate. `rate_per_sec == 0` disables it (every
    /// [`TokenBuckets::try_take`] succeeds).
    pub fn new(rate_per_sec: u32, burst: u32, capacity: usize) -> TokenBuckets {
        TokenBuckets {
            rate_per_sec,
            burst: burst.max(1),
            capacity: capacity.max(1),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the gate is active.
    pub fn enabled(&self) -> bool {
        self.rate_per_sec > 0
    }

    /// Takes one token from `user`'s bucket. `false` means the user is
    /// over their rate and the request should be rejected with a retry
    /// hint.
    pub fn try_take(&self, user: &str) -> bool {
        if !self.enabled() {
            return true;
        }
        let now = Instant::now();
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !buckets.contains_key(user) && buckets.len() >= self.capacity {
            let full = self.burst as f64;
            let victim = buckets
                .iter()
                .min_by(|(_, a), (_, b)| {
                    // Prefer evicting full (stateless) buckets; among
                    // those, the stalest.
                    let a_key = (a.tokens < full, a.refilled);
                    let b_key = (b.tokens < full, b.refilled);
                    a_key
                        .partial_cmp(&b_key)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(user, _)| user.clone());
            if let Some(victim) = victim {
                buckets.remove(&victim);
            }
        }
        let bucket = buckets.entry(user.to_owned()).or_insert(Bucket {
            tokens: self.burst as f64,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_sec as f64).min(self.burst as f64);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(target: u64, min: usize, max: usize) -> AdmissionOptions {
        AdmissionOptions {
            enabled: true,
            target_wait_micros: target,
            min_limit: min,
            max_limit: max,
        }
    }

    #[test]
    fn limit_halves_under_sustained_overshoot_and_recovers_on_target() {
        let c = AdmissionController::new(opts(1_000, 2, 16));
        assert_eq!(c.limit(), 16);
        // One generation of waits at 4x target: a single halving.
        for _ in 0..=16 {
            c.observe_wait(4_000);
        }
        assert_eq!(c.limit(), 8, "one congestion generation, one halving");
        // Sustained overshoot keeps halving down to the floor…
        for _ in 0..100 {
            c.observe_wait(10_000);
        }
        assert_eq!(c.limit(), 2, "floor holds");
        // …and on-target waits grow it back additively, one per limit's
        // worth of observations.
        for _ in 0..2 {
            c.observe_wait(500);
        }
        assert_eq!(c.limit(), 3);
        for _ in 0..200 {
            c.observe_wait(500);
        }
        assert_eq!(c.limit(), 16, "ceiling holds");
    }

    #[test]
    fn admission_respects_the_limit_and_releases() {
        let c = AdmissionController::new(opts(1_000, 1, 2));
        assert!(c.try_admit());
        assert!(c.try_admit());
        assert!(!c.try_admit(), "limit 2 admits exactly 2");
        c.release();
        assert!(c.try_admit());
        assert_eq!(c.inflight(), 2);
        // Disabled controller admits regardless.
        let off = AdmissionController::new(AdmissionOptions {
            enabled: false,
            ..opts(1_000, 1, 1)
        });
        for _ in 0..10 {
            assert!(off.try_admit());
        }
    }

    #[test]
    fn ewma_tracks_waits_and_estimates_admission_wait() {
        let c = AdmissionController::new(opts(1_000, 1, 64));
        assert_eq!(c.estimated_wait_micros(), 0);
        for _ in 0..64 {
            c.observe_wait(8_000);
        }
        let est = c.estimated_wait_micros();
        assert!(
            (7_000..=8_000).contains(&est),
            "EWMA converges toward the sample: {est}"
        );
        assert!(c.over_target());
    }

    #[test]
    fn idle_decay_unlatches_a_degraded_controller() {
        let c = AdmissionController::new(opts(1_000, 1, 16));
        for _ in 0..32 {
            c.observe_wait(10_000);
        }
        assert!(c.estimated_wait_micros() > 4_000, "pressure is latched");
        // In flight: the reading must hold — work is still queued, so
        // the pressure is real and decaying it would lie to the ladder.
        assert!(c.try_admit());
        let held = c.estimated_wait_micros();
        c.decay_wait_when_idle();
        assert_eq!(c.estimated_wait_micros(), held);
        c.release();
        // Idle: repeated probes (one ladder evaluation per incoming
        // request) walk the EWMA back below every ladder threshold.
        for _ in 0..64 {
            c.decay_wait_when_idle();
        }
        assert!(
            c.estimated_wait_micros() < 500,
            "idle decay must release the latch: {}",
            c.estimated_wait_micros()
        );
    }

    #[test]
    fn ladder_escalates_immediately_and_de_escalates_with_hysteresis() {
        let ladder = DegradationLadder::new();
        let sig = |wait: u64| LadderSignals {
            queue_wait_micros: wait,
            target_wait_micros: 1_000,
            ..LadderSignals::default()
        };
        assert_eq!(ladder.evaluate(sig(100)), DegradationMode::Normal);
        assert_eq!(ladder.evaluate(sig(1_500)), DegradationMode::Shedding);
        assert_eq!(ladder.evaluate(sig(5_000)), DegradationMode::CacheOnly);
        // Pressure drops below 4x but stays above 2x: hold at a rung
        // below, not straight to Normal.
        assert_eq!(ladder.evaluate(sig(3_000)), DegradationMode::Shedding);
        // And Shedding clears only below target/2.
        assert_eq!(ladder.evaluate(sig(700)), DegradationMode::Shedding);
        assert_eq!(ladder.evaluate(sig(400)), DegradationMode::Normal);
    }

    #[test]
    fn storage_trouble_freezes_and_clears_level_triggered() {
        let ladder = DegradationLadder::new();
        let quarantined = LadderSignals {
            target_wait_micros: 1_000,
            wal_quarantined: true,
            ..LadderSignals::default()
        };
        assert_eq!(ladder.evaluate(quarantined), DegradationMode::Frozen);
        let stalled = LadderSignals {
            target_wait_micros: 1_000,
            wal_stalled: true,
            ..LadderSignals::default()
        };
        assert_eq!(ladder.evaluate(stalled), DegradationMode::Frozen);
        // Healthy log, no queue pressure: steps down through the ladder.
        let healthy = LadderSignals {
            target_wait_micros: 1_000,
            ..LadderSignals::default()
        };
        assert_eq!(ladder.evaluate(healthy), DegradationMode::Normal);
    }

    #[test]
    fn limit_at_floor_escalates_to_cache_only() {
        let ladder = DegradationLadder::new();
        let s = LadderSignals {
            queue_wait_micros: 1_500, // over target but under 4x
            target_wait_micros: 1_000,
            limit_at_floor: true,
            ..LadderSignals::default()
        };
        assert_eq!(ladder.evaluate(s), DegradationMode::CacheOnly);
    }

    #[test]
    fn token_buckets_throttle_one_user_not_the_other() {
        let buckets = TokenBuckets::new(1, 3, 64);
        for _ in 0..3 {
            assert!(buckets.try_take("storm"));
        }
        assert!(!buckets.try_take("storm"), "burst exhausted");
        assert!(
            buckets.try_take("bystander"),
            "another user's bucket is untouched"
        );
        // rate 0 disables the gate entirely.
        let off = TokenBuckets::new(0, 1, 1);
        for _ in 0..100 {
            assert!(off.try_take("anyone"));
        }
    }

    #[test]
    fn bucket_map_stays_bounded_under_user_minting() {
        let buckets = TokenBuckets::new(1, 2, 8);
        for i in 0..1_000 {
            let _ = buckets.try_take(&format!("user{i}"));
        }
        let held = buckets
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert!(held <= 8, "map grew to {held} despite capacity 8");
    }

    #[test]
    fn mode_strings_and_gauges_are_stable() {
        for (mode, s, g) in [
            (DegradationMode::Normal, "normal", 0),
            (DegradationMode::Shedding, "shedding", 1),
            (DegradationMode::CacheOnly, "cache_only", 2),
            (DegradationMode::Frozen, "frozen", 3),
        ] {
            assert_eq!(mode.as_str(), s);
            assert_eq!(mode.as_gauge(), g);
            assert_eq!(DegradationMode::from_gauge(g), mode);
        }
    }
}
