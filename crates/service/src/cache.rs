//! LRU cache of completed safety decisions.
//!
//! Keyed by the *canonical* form of a decision: the audit set `A` and the
//! disclosed set `B` as compiled [`WorldSet`]s (dense bitsets, so two
//! syntactically different queries that denote the same property share a
//! key) together with the prior assumption. Recency is a `BTreeMap` from
//! a monotone tick to the key — `O(log n)` touch and eviction without an
//! intrusive list.

use epi_audit::{Decision, PriorAssumption};
use epi_core::WorldSet;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The canonical identity of one safety decision.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    /// The audited property `A`, compiled.
    pub audit: WorldSet,
    /// The disclosed property `B` (a single disclosure or a cumulative
    /// intersection), compiled.
    pub disclosed: WorldSet,
    /// The prior assumption the decision was made under.
    pub assumption: PriorAssumption,
}

struct Slot {
    decision: Decision,
    stamp: u64,
}

struct LruInner {
    map: HashMap<DecisionKey, Slot>,
    recency: BTreeMap<u64, DecisionKey>,
    tick: u64,
}

/// A thread-safe LRU map from [`DecisionKey`] to [`Decision`].
pub struct VerdictCache {
    inner: Mutex<LruInner>,
    capacity: usize,
}

impl VerdictCache {
    /// Creates a cache that holds at most `capacity` decisions
    /// (`capacity == 0` disables caching entirely).
    pub fn new(capacity: usize) -> VerdictCache {
        VerdictCache {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    /// Lock the cache, recovering from poisoning: map/recency/tick are
    /// kept mutually consistent within each critical section, so a
    /// panicking holder cannot leave them torn.
    fn lock(&self) -> MutexGuard<'_, LruInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a decision, marking it most-recently-used on a hit.
    ///
    /// Only a hit consumes a recency tick: a miss leaves the LRU order
    /// untouched, so scanning for absent keys cannot skew which resident
    /// entry gets evicted next.
    pub fn get(&self, key: &DecisionKey) -> Option<Decision> {
        let mut inner = self.lock();
        if !inner.map.contains_key(key) {
            return None;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.map.get_mut(key).expect("checked above");
        let old = std::mem::replace(&mut slot.stamp, tick);
        let decision = slot.decision.clone();
        inner.recency.remove(&old);
        inner.recency.insert(tick, key.clone());
        Some(decision)
    }

    /// The current LRU tick — advanced only by hits and inserts.
    #[cfg(test)]
    fn tick(&self) -> u64 {
        self.lock().tick
    }

    /// Inserts (or refreshes) a decision; returns how many entries were
    /// evicted to stay within capacity.
    pub fn insert(&self, key: DecisionKey, decision: Decision) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key) {
            let old = std::mem::replace(&mut slot.stamp, tick);
            slot.decision = decision;
            inner.recency.remove(&old);
            inner.recency.insert(tick, key);
            return 0;
        }
        inner.recency.insert(tick, key.clone());
        inner.map.insert(
            key,
            Slot {
                decision,
                stamp: tick,
            },
        );
        let mut evicted = 0;
        while inner.map.len() > self.capacity {
            let (&oldest, _) = inner.recency.iter().next().expect("recency tracks map");
            let victim = inner.recency.remove(&oldest).expect("just read");
            inner.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epi_audit::Finding;

    fn key(universe: usize, bits: &[u32]) -> DecisionKey {
        DecisionKey {
            audit: WorldSet::from_indices(universe, bits.iter().copied()),
            disclosed: WorldSet::full(universe),
            assumption: PriorAssumption::Product,
        }
    }

    fn decision(tag: &str) -> Decision {
        Decision {
            finding: Finding::Safe,
            explanation: tag.to_owned(),
            stage: None,
            boxes_processed: 0,
            undecided: None,
            risk_micros: 0,
        }
    }

    #[test]
    fn hits_refresh_recency() {
        let cache = VerdictCache::new(2);
        cache.insert(key(4, &[0]), decision("a"));
        cache.insert(key(4, &[1]), decision("b"));
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(cache.get(&key(4, &[0])).unwrap().explanation, "a");
        let evicted = cache.insert(key(4, &[2]), decision("c"));
        assert_eq!(evicted, 1);
        assert!(cache.get(&key(4, &[1])).is_none(), "b was evicted");
        assert!(cache.get(&key(4, &[0])).is_some());
        assert!(cache.get(&key(4, &[2])).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let cache = VerdictCache::new(2);
        cache.insert(key(4, &[0]), decision("old"));
        assert_eq!(cache.insert(key(4, &[0]), decision("new")), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(4, &[0])).unwrap().explanation, "new");
    }

    #[test]
    fn assumption_is_part_of_the_key() {
        let cache = VerdictCache::new(8);
        let mut k2 = key(4, &[0]);
        k2.assumption = PriorAssumption::Unrestricted;
        cache.insert(key(4, &[0]), decision("product"));
        assert!(cache.get(&k2).is_none());
    }

    #[test]
    fn misses_leave_recency_untouched() {
        let cache = VerdictCache::new(2);
        cache.insert(key(4, &[0]), decision("a"));
        cache.insert(key(4, &[1]), decision("b"));
        let before = cache.tick();
        // A storm of misses must not advance the clock...
        for _ in 0..100 {
            assert!(cache.get(&key(4, &[3])).is_none());
        }
        assert_eq!(cache.tick(), before, "misses consumed LRU ticks");
        // ...or disturb the eviction order: "a" is still the LRU victim.
        let evicted = cache.insert(key(4, &[2]), decision("c"));
        assert_eq!(evicted, 1);
        assert!(cache.get(&key(4, &[0])).is_none(), "a was evicted");
        assert!(cache.get(&key(4, &[1])).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = VerdictCache::new(0);
        cache.insert(key(4, &[0]), decision("a"));
        assert!(cache.is_empty());
        assert!(cache.get(&key(4, &[0])).is_none());
    }
}
