//! Clients for the auditing daemon: a TCP client speaking the NDJSON
//! protocol, and an in-process client that skips the socket entirely.
//!
//! Both expose the same convenience calls, so tests and benchmarks can
//! swap transports without touching call sites.

use crate::metrics::Snapshot;
use crate::proto::{Request, Response};
use crate::service::AuditService;
use epi_audit::auditor::ReportEntry;
use epi_json::{Deserialize, Json, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent something that is not a valid response, or an
    /// unexpected response kind.
    Protocol(String),
    /// The service answered with an `error` response.
    Remote(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "service error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Typed outcome of a disclose/cumulative call.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditOutcome {
    /// A report entry, identical in shape to the offline auditor's.
    Entry(ReportEntry),
    /// No cumulative entry exists (fewer than two disclosures).
    NoCumulative {
        /// Disclosures the user has so far.
        disclosures: u64,
    },
}

fn expect_outcome(response: Response) -> Result<AuditOutcome, ClientError> {
    match response {
        Response::Entry(entry) => Ok(AuditOutcome::Entry(entry)),
        Response::NoCumulative { disclosures, .. } => {
            Ok(AuditOutcome::NoCumulative { disclosures })
        }
        Response::Error { message } => Err(ClientError::Remote(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_stats(response: Response) -> Result<Snapshot, ClientError> {
    match response {
        Response::Stats(snapshot) => Ok(*snapshot),
        Response::Error { message } => Err(ClientError::Remote(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

macro_rules! convenience_calls {
    () => {
        /// Records a disclosure and returns its safety finding.
        pub fn disclose(
            &mut self,
            user: &str,
            time: u64,
            query: &str,
            state_mask: u32,
            audit_query: &str,
        ) -> Result<AuditOutcome, ClientError> {
            let response = self.call(&Request::Disclose {
                user: user.to_owned(),
                time,
                query: query.to_owned(),
                state_mask,
                audit_query: audit_query.to_owned(),
            })?;
            expect_outcome(response)
        }

        /// Audits a user's cumulative knowledge.
        pub fn cumulative(
            &mut self,
            user: &str,
            audit_query: &str,
        ) -> Result<AuditOutcome, ClientError> {
            let response = self.call(&Request::Cumulative {
                user: user.to_owned(),
                audit_query: audit_query.to_owned(),
            })?;
            expect_outcome(response)
        }

        /// Fetches a metrics snapshot.
        pub fn stats(&mut self) -> Result<Snapshot, ClientError> {
            let response = self.call(&Request::Stats)?;
            expect_stats(response)
        }
    };
}

/// A blocking TCP client: one request line out, one response line in.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running [`crate::server::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads one response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = request.to_json().render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut answer = String::new();
        let n = self.reader.read_line(&mut answer)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed".to_owned()));
        }
        let value = Json::parse(answer.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response JSON: {}", e.message)))?;
        Response::from_json(&value)
            .map_err(|e| ClientError::Protocol(format!("bad response: {}", e.message)))
    }

    convenience_calls!();
}

/// An in-process client over a shared [`AuditService`] — same API as
/// [`Client`], no socket.
#[derive(Clone)]
pub struct LocalClient {
    service: Arc<AuditService>,
}

impl LocalClient {
    /// Wraps a shared service.
    pub fn new(service: Arc<AuditService>) -> LocalClient {
        LocalClient { service }
    }

    /// Dispatches one request directly.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        Ok(self.service.handle(request))
    }

    convenience_calls!();
}
