//! Clients for the auditing daemon: a TCP client speaking the NDJSON
//! protocol, and an in-process client that skips the socket entirely.
//!
//! Both expose the same convenience calls, so tests and benchmarks can
//! swap transports without touching call sites.
//!
//! # Retries
//!
//! Both clients accept a [`RetryPolicy`]: capped exponential backoff with
//! *deterministic* jitter (a seeded xorshift stream, so a replayed
//! workload backs off identically run to run). Retries re-send the same
//! request under the same generated request id — the server's dedupe
//! window turns a retry of an already-settled request into a replay of
//! the stored response, making retries idempotent even for disclosures.
//!
//! What retries: transport failures (the TCP client reconnects first)
//! and errors the server marks retryable ([`ErrorCode::Overloaded`],
//! [`ErrorCode::WorkerFailed`]). An overloaded server's
//! `retry_after_ms` hint is honored: the next backoff is never shorter
//! than the hint. What does not retry: bad requests (they can never
//! succeed), [`ErrorCode::DeadlineExceeded`] (the budget was the
//! caller's), [`ErrorCode::Shutdown`] (this instance is going away),
//! and [`ErrorCode::Draining`] — a draining instance refuses new audit
//! work *by policy*, so hammering it with retries only delays the
//! caller; re-resolve and go to another instance instead.

use crate::metrics::Snapshot;
use crate::proto::{
    BudgetInfo, ErrorCode, HealthInfo, Request, RequestMeta, Response, SessionInfo, WireSpan,
};
use crate::service::AuditService;
use epi_audit::auditor::ReportEntry;
use epi_json::{opt_field, Deserialize, Json, Serialize};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Distinguishes the ids of pipelining clients that have no seeded
/// [`RetryPolicy`] id stream, so two such clients in one process never
/// collide in the server's dedupe window.
static PIPELINE_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent something that is not a valid response, or an
    /// unexpected response kind.
    Protocol(String),
    /// The service answered with an `error` response.
    Remote {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable reason.
        message: String,
        /// Server backoff hint, when given.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { code, message, .. } => {
                write!(f, "service error ({}): {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds; doubles per
    /// retry.
    pub base_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream *and* the request-id prefix. Two
    /// clients with the same seed issue the same ids and the same
    /// backoff schedule — by design, for reproducible harness runs.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 10,
            cap_ms: 500,
            seed: 0x5EED,
        }
    }
}

/// Retry state carried by a client: the jitter RNG and the id counter.
#[derive(Clone, Debug)]
struct RetryState {
    policy: RetryPolicy,
    rng: u64,
    next_id: u64,
}

impl RetryState {
    fn new(policy: RetryPolicy) -> RetryState {
        RetryState {
            policy,
            // xorshift needs a nonzero state.
            rng: policy.seed | 1,
            next_id: 0,
        }
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("{:x}-{}", self.policy.seed, self.next_id)
    }

    /// Deterministic jitter factor in `[0.5, 1.0)` (xorshift64*).
    fn jitter(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let sample = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        0.5 + sample / 2.0
    }

    /// The delay before retry number `retry` (0-based), honoring the
    /// server's hint when it is larger than the local schedule.
    fn backoff(&mut self, retry: u32, server_hint_ms: Option<u64>) -> Duration {
        let exp = self
            .policy
            .base_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(self.policy.cap_ms);
        let jittered = (exp as f64 * self.jitter()) as u64;
        Duration::from_millis(jittered.max(server_hint_ms.unwrap_or(0)))
    }
}

/// Whether this failure is worth another attempt.
fn retryable(error: &ClientError) -> bool {
    match error {
        ClientError::Io(_) => true,
        ClientError::Protocol(_) => false,
        ClientError::Remote { code, .. } => code.is_retryable(),
    }
}

fn server_hint(error: &ClientError) -> Option<u64> {
    match error {
        ClientError::Remote { retry_after_ms, .. } => *retry_after_ms,
        _ => None,
    }
}

/// Typed outcome of a disclose/cumulative call.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditOutcome {
    /// A report entry, identical in shape to the offline auditor's.
    Entry(ReportEntry),
    /// No cumulative entry exists (fewer than two disclosures).
    NoCumulative {
        /// Disclosures the user has so far.
        disclosures: u64,
    },
}

fn remote_error(code: ErrorCode, message: String, retry_after_ms: Option<u64>) -> ClientError {
    ClientError::Remote {
        code,
        message,
        retry_after_ms,
    }
}

fn expect_outcome(response: Response) -> Result<AuditOutcome, ClientError> {
    match response {
        Response::Entry(entry) => Ok(AuditOutcome::Entry(entry)),
        Response::NoCumulative { disclosures, .. } => {
            Ok(AuditOutcome::NoCumulative { disclosures })
        }
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_stats(response: Response) -> Result<Snapshot, ClientError> {
    match response {
        Response::Stats(snapshot) => Ok(*snapshot),
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_session(response: Response) -> Result<SessionInfo, ClientError> {
    match response {
        Response::SessionInfo(info) => Ok(info),
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_budget(response: Response) -> Result<BudgetInfo, ClientError> {
    match response {
        Response::Budget(info) => Ok(*info),
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_trace(response: Response) -> Result<Vec<WireSpan>, ClientError> {
    match response {
        Response::Trace(spans) => Ok(spans),
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_health(response: Response) -> Result<HealthInfo, ClientError> {
    match response {
        Response::Health(info) => Ok(info),
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

fn expect_metrics_text(response: Response) -> Result<String, ClientError> {
    match response {
        Response::MetricsText(text) => Ok(text),
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response {other:?}"
        ))),
    }
}

macro_rules! convenience_calls {
    () => {
        /// Records a disclosure and returns its safety finding.
        pub fn disclose(
            &mut self,
            user: &str,
            time: u64,
            query: &str,
            state_mask: u32,
            audit_query: &str,
        ) -> Result<AuditOutcome, ClientError> {
            let response = self.call(&Request::Disclose {
                user: user.to_owned(),
                time,
                query: query.to_owned(),
                state_mask,
                audit_query: audit_query.to_owned(),
            })?;
            expect_outcome(response)
        }

        /// Audits a user's cumulative knowledge.
        pub fn cumulative(
            &mut self,
            user: &str,
            audit_query: &str,
        ) -> Result<AuditOutcome, ClientError> {
            let response = self.call(&Request::Cumulative {
                user: user.to_owned(),
                audit_query: audit_query.to_owned(),
            })?;
            expect_outcome(response)
        }

        /// Fetches a metrics snapshot.
        pub fn stats(&mut self) -> Result<Snapshot, ClientError> {
            let response = self.call(&Request::Stats)?;
            expect_stats(response)
        }

        /// Fetches a user's session sequence number and knowledge digest.
        pub fn session(&mut self, user: &str) -> Result<SessionInfo, ClientError> {
            let response = self.call(&Request::SessionInfo {
                user: user.to_owned(),
            })?;
            expect_session(response)
        }

        /// Fetches a user's exposure ledger and remaining budget.
        pub fn budget(&mut self, user: &str) -> Result<BudgetInfo, ClientError> {
            let response = self.call(&Request::Budget {
                user: user.to_owned(),
            })?;
            expect_budget(response)
        }

        /// Records a disclosure under a client-minted trace id, so the
        /// server's per-request spans can be fetched later with
        /// [`Self::trace`].
        pub fn disclose_traced(
            &mut self,
            user: &str,
            time: u64,
            query: &str,
            state_mask: u32,
            audit_query: &str,
            trace: &str,
        ) -> Result<AuditOutcome, ClientError> {
            let response = self.call_traced(
                &Request::Disclose {
                    user: user.to_owned(),
                    time,
                    query: query.to_owned(),
                    state_mask,
                    audit_query: audit_query.to_owned(),
                },
                Some(trace),
            )?;
            expect_outcome(response)
        }

        /// Fetches recent spans, optionally filtered to one trace id.
        pub fn trace(
            &mut self,
            trace: Option<&str>,
            limit: Option<u64>,
        ) -> Result<Vec<WireSpan>, ClientError> {
            let response = self.call(&Request::Trace {
                trace: trace.map(str::to_owned),
                limit,
                slow: false,
            })?;
            expect_trace(response)
        }

        /// Fetches the slow-decision log (spans over the server's
        /// configured threshold).
        pub fn slow_log(&mut self, limit: Option<u64>) -> Result<Vec<WireSpan>, ClientError> {
            let response = self.call(&Request::Trace {
                trace: None,
                limit,
                slow: true,
            })?;
            expect_trace(response)
        }

        /// Fetches the metrics registry in Prometheus text exposition
        /// format.
        pub fn metrics_text(&mut self) -> Result<String, ClientError> {
            let response = self.call(&Request::MetricsText)?;
            expect_metrics_text(response)
        }

        /// Fetches the daemon's health summary (liveness, readiness,
        /// degradation mode, admission state).
        pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
            let response = self.call(&Request::Health)?;
            expect_health(response)
        }
    };
}

/// Converts an error-kind response into `Err` so the retry loop can
/// classify it; all other kinds pass through.
fn reject_errors(response: Response) -> Result<Response, ClientError> {
    match response {
        Response::Error {
            code,
            message,
            retry_after_ms,
        } => Err(remote_error(code, message, retry_after_ms)),
        other => Ok(other),
    }
}

/// Shared retry loop: `attempt(id)` performs one exchange.
fn call_with_retries(
    state: &mut Option<RetryState>,
    mut attempt: impl FnMut(Option<&str>) -> Result<Response, ClientError>,
) -> Result<Response, ClientError> {
    let Some(state) = state.as_mut() else {
        // No policy: single attempt, no envelope (legacy behaviour).
        return attempt(None);
    };
    let id = state.fresh_id();
    let max = state.policy.max_attempts.max(1);
    let mut last = None;
    for retry in 0..max {
        if retry > 0 {
            let hint = last.as_ref().and_then(server_hint);
            std::thread::sleep(state.backoff(retry - 1, hint));
        }
        match attempt(Some(&id)).and_then(reject_errors) {
            Ok(response) => return Ok(response),
            Err(e) if retryable(&e) && retry + 1 < max => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop stores the error before every retry"))
}

/// A blocking TCP client: one request line out, one response line in —
/// or, with [`Client::pipeline`], many lines out before any line in.
pub struct Client {
    addr: SocketAddr,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
    retry: Option<RetryState>,
    pipeline_instance: u64,
    pipeline_seq: u64,
}

impl Client {
    /// Connects to a running [`crate::server::Server`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("address resolved to nothing".to_owned()))?;
        let mut client = Client {
            addr,
            conn: None,
            retry: None,
            pipeline_instance: PIPELINE_INSTANCE.fetch_add(1, Ordering::Relaxed),
            pipeline_seq: 0,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Enables retries under `policy`. Requests then carry generated ids
    /// (`"{seed:x}-{n}"`), and transport failures trigger a reconnect
    /// before the next attempt.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(RetryState::new(policy));
        self
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some((reader, stream));
        Ok(())
    }

    fn exchange(
        &mut self,
        request: &Request,
        id: Option<&str>,
        trace: Option<&str>,
    ) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let meta = RequestMeta {
            id: id.map(str::to_owned),
            deadline_ms: None,
            trace: trace.map(str::to_owned),
        };
        let mut line = meta.decorate(request.to_json()).render();
        line.push('\n');
        let result = (|| {
            let (reader, writer) = self.conn.as_mut().expect("connected above");
            writer.write_all(line.as_bytes())?;
            writer.flush()?;
            let mut answer = String::new();
            let n = reader.read_line(&mut answer)?;
            if n == 0 {
                return Err(ClientError::Protocol("connection closed".to_owned()));
            }
            let value = Json::parse(answer.trim_end())
                .map_err(|e| ClientError::Protocol(format!("bad response JSON: {}", e.message)))?;
            Response::from_json(&value)
                .map_err(|e| ClientError::Protocol(format!("bad response: {}", e.message)))
        })();
        if matches!(
            &result,
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_))
        ) {
            // The stream can be mid-frame; next attempt starts clean.
            self.conn = None;
        }
        result
    }

    fn next_pipeline_id(&mut self) -> String {
        match &mut self.retry {
            // A seeded policy makes pipelined ids deterministic (and
            // dedupe-safe across reconnects), exactly like `call` ids.
            Some(state) => state.fresh_id(),
            None => {
                self.pipeline_seq += 1;
                format!("p{}-{}", self.pipeline_instance, self.pipeline_seq)
            }
        }
    }

    /// Sends every request back-to-back on the one connection before
    /// reading anything, then collects the replies, matching each to
    /// its request by the envelope `id` the client minted — the server
    /// answers pipelined requests in *completion* order, not
    /// submission order. Responses are returned in request order.
    ///
    /// Unlike [`Client::call`] this never retries: a transport failure
    /// mid-batch leaves it ambiguous which requests settled, so the
    /// error surfaces (and the connection resets) for the caller to
    /// decide. Error-kind responses are returned in their slot rather
    /// than converted to `Err`, so one bad request cannot mask the
    /// others' outcomes.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let ids: Vec<String> = requests.iter().map(|_| self.next_pipeline_id()).collect();
        let result = (|| {
            let (reader, writer) = self.conn.as_mut().expect("connected above");
            let mut batch = String::new();
            for (request, id) in requests.iter().zip(&ids) {
                let meta = RequestMeta {
                    id: Some(id.clone()),
                    deadline_ms: None,
                    trace: None,
                };
                batch.push_str(&meta.decorate(request.to_json()).render());
                batch.push('\n');
            }
            writer.write_all(batch.as_bytes())?;
            writer.flush()?;
            let index: HashMap<&str, usize> = ids
                .iter()
                .enumerate()
                .map(|(i, id)| (id.as_str(), i))
                .collect();
            let mut slots: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
            let mut filled = 0usize;
            while filled < requests.len() {
                let mut answer = String::new();
                let n = reader.read_line(&mut answer)?;
                if n == 0 {
                    return Err(ClientError::Protocol(
                        "connection closed mid-pipeline".to_owned(),
                    ));
                }
                let value = Json::parse(answer.trim_end()).map_err(|e| {
                    ClientError::Protocol(format!("bad response JSON: {}", e.message))
                })?;
                let id = match opt_field::<String>(&value, "id") {
                    Ok(Some(id)) => id,
                    _ => {
                        return Err(ClientError::Protocol(
                            "pipelined response without an id".to_owned(),
                        ))
                    }
                };
                let slot = *index.get(id.as_str()).ok_or_else(|| {
                    ClientError::Protocol(format!("unknown pipelined response id {id:?}"))
                })?;
                if slots[slot].is_some() {
                    return Err(ClientError::Protocol(format!(
                        "duplicate pipelined response id {id:?}"
                    )));
                }
                let response = Response::from_json(&value)
                    .map_err(|e| ClientError::Protocol(format!("bad response: {}", e.message)))?;
                slots[slot] = Some(response);
                filled += 1;
            }
            Ok(slots
                .into_iter()
                .map(|slot| slot.expect("all slots filled above"))
                .collect())
        })();
        if result.is_err() {
            // The stream can be mid-frame; next use starts clean.
            self.conn = None;
        }
        result
    }

    /// Sends one request and reads one response, applying the retry
    /// policy when one was configured ([`Client::with_retry`]).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.call_traced(request, None)
    }

    /// Like [`Client::call`], tagging the request with a trace id the
    /// server threads through every span it records for it.
    pub fn call_traced(
        &mut self,
        request: &Request,
        trace: Option<&str>,
    ) -> Result<Response, ClientError> {
        let mut retry = self.retry.take();
        let result = call_with_retries(&mut retry, |id| self.exchange(request, id, trace));
        self.retry = retry;
        result
    }

    convenience_calls!();
}

/// An in-process client over a shared [`AuditService`] — same API as
/// [`Client`], no socket.
#[derive(Clone)]
pub struct LocalClient {
    service: Arc<AuditService>,
    retry: Option<RetryState>,
}

impl LocalClient {
    /// Wraps a shared service.
    pub fn new(service: Arc<AuditService>) -> LocalClient {
        LocalClient {
            service,
            retry: None,
        }
    }

    /// Enables retries under `policy` (see [`Client::with_retry`]).
    pub fn with_retry(mut self, policy: RetryPolicy) -> LocalClient {
        self.retry = Some(RetryState::new(policy));
        self
    }

    /// Dispatches one request directly, applying the retry policy when
    /// one was configured.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.call_traced(request, None)
    }

    /// Like [`LocalClient::call`], tagging the request with a trace id
    /// the service threads through every span it records for it.
    pub fn call_traced(
        &mut self,
        request: &Request,
        trace: Option<&str>,
    ) -> Result<Response, ClientError> {
        let service = Arc::clone(&self.service);
        let mut retry = self.retry.take();
        let result = call_with_retries(&mut retry, |id| {
            let meta = RequestMeta {
                id: id.map(str::to_owned),
                deadline_ms: None,
                trace: trace.map(str::to_owned),
            };
            Ok(service.handle_with_meta(request, &meta))
        });
        self.retry = retry;
        result
    }

    convenience_calls!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = RetryState::new(RetryPolicy::default());
        let mut b = RetryState::new(RetryPolicy::default());
        for _ in 0..100 {
            let (x, y) = (a.jitter(), b.jitter());
            assert_eq!(x, y, "same seed, same stream");
            assert!((0.5..1.0).contains(&x), "jitter {x} out of range");
        }
        let mut c = RetryState::new(RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        });
        assert_ne!(a.jitter(), c.jitter(), "different seeds diverge");
    }

    #[test]
    fn backoff_grows_honors_cap_and_server_hint() {
        let mut s = RetryState::new(RetryPolicy {
            max_attempts: 5,
            base_ms: 100,
            cap_ms: 300,
            seed: 3,
        });
        let d0 = s.backoff(0, None);
        assert!(d0 >= Duration::from_millis(50) && d0 < Duration::from_millis(100));
        let d3 = s.backoff(3, None);
        assert!(
            d3 <= Duration::from_millis(300),
            "cap respected, got {d3:?}"
        );
        let hinted = s.backoff(0, Some(450));
        assert!(hinted >= Duration::from_millis(450), "server hint wins");
    }

    #[test]
    fn ids_are_unique_per_client_and_stable_per_seed() {
        let mut s = RetryState::new(RetryPolicy {
            seed: 0xAB,
            ..RetryPolicy::default()
        });
        assert_eq!(s.fresh_id(), "ab-1");
        assert_eq!(s.fresh_id(), "ab-2");
        let mut t = RetryState::new(RetryPolicy {
            seed: 0xAB,
            ..RetryPolicy::default()
        });
        assert_eq!(t.fresh_id(), "ab-1", "same seed, same id sequence");
    }

    #[test]
    fn non_retryable_remote_errors_surface_immediately() {
        use epi_audit::{PriorAssumption, Schema};
        let schema = Schema::from_names(&["hiv_pos", "transfusions"]).unwrap();
        let service = Arc::new(AuditService::new(
            schema,
            crate::service::ServiceConfig {
                assumption: PriorAssumption::Product,
                workers: 1,
                ..Default::default()
            },
        ));
        let mut client = LocalClient::new(service).with_retry(RetryPolicy::default());
        let err = client
            .disclose("alice", 1, "no_such_record", 0, "hiv_pos")
            .unwrap_err();
        let ClientError::Remote { code, .. } = err else {
            panic!("expected remote error, got {err:?}");
        };
        assert_eq!(code, ErrorCode::BadRequest);
        // Exactly one request hit the service: bad requests never retry.
        assert_eq!(client.service.metrics().requests, 1);
    }

    #[test]
    fn draining_errors_are_never_retried() {
        use epi_audit::{PriorAssumption, Schema};
        let schema = Schema::from_names(&["hiv_pos", "transfusions"]).unwrap();
        let service = Arc::new(AuditService::new(
            schema,
            crate::service::ServiceConfig {
                assumption: PriorAssumption::Product,
                workers: 1,
                ..Default::default()
            },
        ));
        service.set_draining(true);
        let mut client = LocalClient::new(Arc::clone(&service)).with_retry(RetryPolicy {
            max_attempts: 5,
            base_ms: 1,
            cap_ms: 2,
            seed: 21,
        });
        let err = client
            .disclose("alice", 1, "hiv_pos", 0b11, "hiv_pos")
            .unwrap_err();
        let ClientError::Remote { code, .. } = err else {
            panic!("expected remote error, got {err:?}");
        };
        assert_eq!(code, ErrorCode::Draining);
        assert_eq!(
            service.metrics().requests,
            1,
            "a draining instance must not be hammered with retries"
        );
        // Reads still work against the draining instance.
        client.stats().unwrap();
        let health = client.health().unwrap();
        assert!(health.live && health.draining && !health.ready);
    }

    #[test]
    fn overloaded_retries_honor_the_server_backoff_hint() {
        use epi_audit::{PriorAssumption, Schema};
        use std::time::Instant;
        let schema = Schema::from_names(&["hiv_pos", "transfusions"]).unwrap();
        let service = Arc::new(AuditService::new(
            schema,
            crate::service::ServiceConfig {
                assumption: PriorAssumption::Product,
                workers: 1,
                retry_after_ms: 40,
                ..Default::default()
            },
        ));
        // Push the degradation ladder to cache-only: the admission limit
        // at its floor with the queue-wait EWMA far over target. An
        // uncached disclosure then answers `overloaded` with the
        // configured backoff hint on every attempt.
        let target = service.admission().options().target_wait_micros;
        for _ in 0..64 {
            service.admission().observe_wait(target * 16);
        }
        let mut client = LocalClient::new(Arc::clone(&service)).with_retry(RetryPolicy {
            max_attempts: 3,
            base_ms: 1,
            cap_ms: 2,
            seed: 9,
        });
        let started = Instant::now();
        let err = client
            .disclose("mallory", 1, "hiv_pos", 0b11, "hiv_pos")
            .unwrap_err();
        let elapsed = started.elapsed();
        let ClientError::Remote {
            code,
            retry_after_ms,
            ..
        } = err
        else {
            panic!("expected remote error, got {err:?}");
        };
        assert_eq!(code, ErrorCode::Overloaded);
        assert_eq!(retry_after_ms, Some(40), "hint surfaces to the caller");
        assert_eq!(
            service.metrics().requests,
            3,
            "overloaded is retryable: all attempts spent"
        );
        // Two retries, each backed off by at least the 40ms server hint
        // (the local schedule caps at 2ms, so the hint dominates).
        assert!(
            elapsed >= Duration::from_millis(80),
            "backoff ignored the server hint: {elapsed:?}"
        );
    }

    #[test]
    fn retryable_failures_are_retried_to_success() {
        use crate::worker::FaultHook;
        use epi_audit::{PriorAssumption, Schema};
        use std::sync::atomic::{AtomicUsize, Ordering};
        // First two computations panic; the third succeeds.
        let hits = Arc::new(AtomicUsize::new(0));
        let hook_hits = Arc::clone(&hits);
        let hook: FaultHook = Arc::new(move |_k| {
            if hook_hits.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("injected panic");
            }
        });
        let schema = Schema::from_names(&["hiv_pos", "transfusions"]).unwrap();
        let service = Arc::new(AuditService::with_fault_hook(
            schema,
            crate::service::ServiceConfig {
                assumption: PriorAssumption::Product,
                workers: 1,
                ..Default::default()
            },
            Some(hook),
        ));
        let mut client = LocalClient::new(service).with_retry(RetryPolicy {
            max_attempts: 3,
            base_ms: 1,
            cap_ms: 5,
            seed: 11,
        });
        let outcome = client
            .disclose("mallory", 1, "hiv_pos", 0b11, "hiv_pos")
            .unwrap();
        let AuditOutcome::Entry(entry) = outcome else {
            panic!("expected entry");
        };
        assert_eq!(entry.finding, epi_audit::Finding::Flagged);
        assert_eq!(hits.load(Ordering::SeqCst), 3, "two failures, one success");
        assert_eq!(client.service.metrics().worker_respawns, 2);
    }
}
