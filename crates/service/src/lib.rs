//! # epi-service
//!
//! A long-running, multi-threaded auditing daemon over the `epi-audit`
//! decision machinery — the "auditing as infrastructure" deployment the
//! paper's introduction sketches: disclosures arrive continuously, each
//! must be judged against an audited property *before* more knowledge
//! accumulates, and the same expensive `(A, B)` decision recurs across
//! users and connections.
//!
//! The crate is std-only (threads, mutexes, condvars, TCP — no async
//! runtime) and layers as:
//!
//! * [`session`] — sharded concurrent per-user sessions holding
//!   cumulative knowledge as a world-set intersection (Section 3.3);
//! * [`cache`] — an LRU verdict cache keyed by the canonical
//!   `(A, B, prior)` triple;
//! * [`admission`] — adaptive AIMD admission control, the
//!   `Normal → Shedding → CacheOnly → Frozen` degradation ladder, and
//!   per-user fairness token buckets;
//! * [`worker`] — a worker pool with a bounded queue that coalesces
//!   identical in-flight decisions, so the solver pipeline runs once per
//!   distinct key;
//! * [`metrics`] — atomic counters plus per-stage latency histograms,
//!   exported as a [`metrics::Snapshot`];
//! * [`proto`] — newline-delimited JSON requests/responses;
//! * [`service`] — the in-process engine tying the above together;
//! * [`server`] / [`client`] — a TCP front-end and both TCP and
//!   in-process clients.
//!
//! # Persistence
//!
//! With a data directory configured ([`ServiceConfig::data_dir`] or
//! `EPI_WAL_DIR`), every session mutation is appended to a per-shard
//! write-ahead disclosure log (`epi-wal`) *before* it reaches memory or
//! a response line. Startup loads the latest compacted snapshot, replays
//! the log tail (truncating at most one torn final record per shard),
//! and refuses to serve on any deeper corruption — a recovered daemon
//! either reconstructs exactly the acknowledged knowledge state or does
//! not start. The `session` protocol op exposes each user's disclosure
//! sequence number and a CRC-32 knowledge digest so recovery fidelity
//! can be checked from outside. See `docs/PERSISTENCE.md`.
//!
//! # Fault tolerance
//!
//! The daemon is built to degrade, not hang: requests carry deadlines
//! and time out *fail-closed* (an undecided safety question is never
//! reported safe); worker panics are isolated per request
//! ([`worker::DecideError::WorkerFailed`]) and counted as respawns; a
//! full decision queue can shed load with a retryable `overloaded`
//! error; clients retry with seeded, deterministic backoff under
//! idempotent request ids ([`client::RetryPolicy`]); and every internal
//! lock recovers from poisoning so one crash cannot wedge the service.
//!
//! # Observability
//!
//! Requests may carry a client-minted `trace` id in the envelope; the
//! service threads it through every span it records for that request —
//! connection handling, cache lookup, queue wait, worker compute, and
//! individual solver stages — into a bounded in-memory ring
//! (`epi-trace`). The `trace` protocol op reads spans back (optionally
//! filtered by id, or the slow-decision log), and the `metrics` op
//! renders every counter and per-stage latency histogram in Prometheus
//! text exposition format ([`metrics::Snapshot::render_prometheus`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
#[cfg(unix)]
mod reactor;
pub mod server;
pub mod service;
pub mod session;
pub mod worker;

pub use admission::{
    AdmissionController, AdmissionOptions, DegradationLadder, DegradationMode, LadderSignals,
    TokenBuckets,
};
pub use cache::{DecisionKey, VerdictCache};
pub use client::{AuditOutcome, Client, ClientError, LocalClient, RetryPolicy};
pub use epi_wal::{FsyncPolicy, RecoveryReport, WalError};
pub use metrics::{Metrics, Snapshot};
pub use proto::{
    BudgetInfo, ErrorCode, HealthInfo, Request, RequestMeta, Response, SessionInfo, WireSpan,
};
pub use server::{Server, ServerMode, ServerOptions};
pub use service::{AuditService, BudgetCompose, BudgetOptions, ServiceConfig};
pub use session::{knowledge_digest, ledger_digest, Session, SessionError, SessionStore};
pub use worker::{DecideError, DecisionPool, FaultHook, QueuePolicy};
