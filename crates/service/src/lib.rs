//! # epi-service
//!
//! A long-running, multi-threaded auditing daemon over the `epi-audit`
//! decision machinery — the "auditing as infrastructure" deployment the
//! paper's introduction sketches: disclosures arrive continuously, each
//! must be judged against an audited property *before* more knowledge
//! accumulates, and the same expensive `(A, B)` decision recurs across
//! users and connections.
//!
//! The crate is std-only (threads, mutexes, condvars, TCP — no async
//! runtime) and layers as:
//!
//! * [`session`] — sharded concurrent per-user sessions holding
//!   cumulative knowledge as a world-set intersection (Section 3.3);
//! * [`cache`] — an LRU verdict cache keyed by the canonical
//!   `(A, B, prior)` triple;
//! * [`worker`] — a worker pool with a bounded queue that coalesces
//!   identical in-flight decisions, so the solver pipeline runs once per
//!   distinct key;
//! * [`metrics`] — atomic counters plus per-stage latency histograms,
//!   exported as a [`metrics::Snapshot`];
//! * [`proto`] — newline-delimited JSON requests/responses;
//! * [`service`] — the in-process engine tying the above together;
//! * [`server`] / [`client`] — a TCP front-end and both TCP and
//!   in-process clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod service;
pub mod session;
pub mod worker;

pub use cache::{DecisionKey, VerdictCache};
pub use client::{AuditOutcome, Client, ClientError, LocalClient};
pub use metrics::{Metrics, Snapshot};
pub use proto::{Request, Response};
pub use server::Server;
pub use service::{AuditService, ServiceConfig};
pub use session::{Session, SessionStore};
pub use worker::DecisionPool;
