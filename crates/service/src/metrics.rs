//! Lock-free metrics registry for the auditing daemon.
//!
//! Counters are plain relaxed atomics: the daemon's hot path (cache
//! lookups, queue operations) only ever does `fetch_add`, and a
//! [`Snapshot`] is an unsynchronised read of all of them — fine for
//! monitoring, where a counter being one tick stale is irrelevant.
//! Per-stage latency is a power-of-two histogram in microseconds, one
//! histogram per pipeline [`Stage`] plus one slot for decisions made
//! outside the pipeline (the log-supermodular refutation search).

use epi_json::{field, opt_field, Deserialize, Json, JsonError, Serialize};
use epi_solver::Stage;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of latency-histogram buckets. Bucket `k` counts decisions whose
/// latency fell in `[2^k, 2^(k+1))` microseconds; the last bucket is a
/// catch-all, so the histogram spans ~1 µs to ~0.5 s before saturating.
pub const LATENCY_BUCKETS: usize = 20;

/// One latency slot per pipeline stage, plus one (the last) for
/// decisions reached outside the pipeline.
pub const STAGE_SLOTS: usize = 7;

const STAGE_LABELS: [&str; STAGE_SLOTS] = [
    "unconditional",
    "miklau_suciu",
    "monotonicity",
    "cancellation",
    "box_necessary",
    "branch_and_bound",
    "refutation_search",
];

fn stage_slot(stage: Option<Stage>) -> usize {
    match stage {
        Some(Stage::Unconditional) => 0,
        Some(Stage::MiklauSuciu) => 1,
        Some(Stage::Monotonicity) => 2,
        Some(Stage::Cancellation) => 3,
        Some(Stage::BoxNecessary) => 4,
        Some(Stage::BranchAndBound) => 5,
        None => 6,
    }
}

#[derive(Default)]
struct StageStats {
    count: AtomicU64,
    total_micros: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

/// The daemon's counters. One instance is shared (behind an `Arc`) by the
/// session store, cache, worker pool and server.
#[derive(Default)]
pub struct Metrics {
    /// Protocol requests handled (all operations).
    pub requests: AtomicU64,
    /// Requests that needed a safety decision (disclose/cumulative past
    /// the negative-result gate).
    pub decide_requests: AtomicU64,
    /// Disclosures answered `Safe` because the audited property was false
    /// at disclosure time — no solver work at all.
    pub negative_gated: AtomicU64,
    /// Verdict-cache hits.
    pub cache_hits: AtomicU64,
    /// Verdict-cache misses.
    pub cache_misses: AtomicU64,
    /// Verdict-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Decisions that piggybacked on an identical in-flight decision
    /// instead of enqueueing their own.
    pub coalesced: AtomicU64,
    /// Decisions actually computed by a worker.
    pub computed: AtomicU64,
    /// High-water mark of the worker queue depth.
    pub queue_high_water: AtomicU64,
    /// Branch-and-bound boxes committed by computed decisions.
    pub solver_boxes: AtomicU64,
    /// Microseconds spent in decisions that ran the branch-and-bound
    /// (criterion-only decisions are excluded so boxes/sec stays honest).
    pub solver_micros: AtomicU64,
    /// Worker iterations that caught a solver panic and kept serving —
    /// each one is a logical worker respawn.
    pub worker_respawns: AtomicU64,
    /// Requests rejected with `overloaded` because the decision queue was
    /// full in shed mode.
    pub shed_requests: AtomicU64,
    /// Decisions that came back undecided because their deadline expired
    /// or the daemon was draining (always reported as *not* safe).
    pub deadline_exceeded: AtomicU64,
    stages: [StageStats; STAGE_SLOTS],
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bumps a counter by one (relaxed).
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records branch-and-bound work done by one decision (boxes the
    /// search committed and the wall time of the decision). Call only for
    /// decisions that actually entered the box search.
    pub fn record_solver_work(&self, boxes: u64, micros: u64) {
        self.solver_boxes.fetch_add(boxes, Ordering::Relaxed);
        self.solver_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one computed decision: which stage settled it and how long
    /// the solver took.
    pub fn record_decision(&self, stage: Option<Stage>, micros: u64) {
        let s = &self.stages[stage_slot(stage)];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.total_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        s.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every counter into a plain-data snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Snapshot {
            requests: read(&self.requests),
            decide_requests: read(&self.decide_requests),
            negative_gated: read(&self.negative_gated),
            cache_hits: read(&self.cache_hits),
            cache_misses: read(&self.cache_misses),
            cache_evictions: read(&self.cache_evictions),
            coalesced: read(&self.coalesced),
            computed: read(&self.computed),
            queue_high_water: read(&self.queue_high_water),
            solver_boxes: read(&self.solver_boxes),
            solver_micros: read(&self.solver_micros),
            worker_respawns: read(&self.worker_respawns),
            shed_requests: read(&self.shed_requests),
            deadline_exceeded: read(&self.deadline_exceeded),
            pool_workers: epi_par::Pool::global().threads() as u64,
            pool_tasks: epi_par::stats().tasks_executed,
            pool_steals: epi_par::stats().steals,
            stages: self
                .stages
                .iter()
                .zip(STAGE_LABELS)
                .map(|(s, label)| StageSnapshot {
                    stage: label.to_owned(),
                    count: read(&s.count),
                    total_micros: read(&s.total_micros),
                    buckets: s.buckets.iter().map(read).collect(),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of [`Metrics`] — what the `stats` protocol
/// operation returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Protocol requests handled.
    pub requests: u64,
    /// Requests that needed a safety decision.
    pub decide_requests: u64,
    /// Disclosures short-circuited by the negative-result rule.
    pub negative_gated: u64,
    /// Verdict-cache hits.
    pub cache_hits: u64,
    /// Verdict-cache misses.
    pub cache_misses: u64,
    /// Verdict-cache evictions.
    pub cache_evictions: u64,
    /// Decisions coalesced onto an in-flight computation.
    pub coalesced: u64,
    /// Decisions computed by workers.
    pub computed: u64,
    /// Worker-queue depth high-water mark.
    pub queue_high_water: u64,
    /// Branch-and-bound boxes committed across computed decisions.
    pub solver_boxes: u64,
    /// Wall micros of the decisions that ran the branch-and-bound.
    pub solver_micros: u64,
    /// Worker iterations that recovered from a solver panic.
    pub worker_respawns: u64,
    /// Requests shed with `overloaded` under queue pressure.
    pub shed_requests: u64,
    /// Decisions undecided because of deadline expiry or shutdown.
    pub deadline_exceeded: u64,
    /// Worker threads in the process-wide [`epi_par`] solver pool.
    pub pool_workers: u64,
    /// Tasks the solver pool has executed (process lifetime).
    pub pool_tasks: u64,
    /// Work-stealing events in the solver pool (process lifetime).
    pub pool_steals: u64,
    /// Per-stage decision counts and latency histograms.
    pub stages: Vec<StageSnapshot>,
}

impl Snapshot {
    /// Cache hit rate in `[0, 1]`; `0` before any lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Branch-and-bound throughput in boxes per second over the decisions
    /// that ran the box search; `0` before any solver work.
    pub fn boxes_per_sec(&self) -> f64 {
        if self.solver_micros == 0 {
            0.0
        } else {
            self.solver_boxes as f64 / (self.solver_micros as f64 / 1e6)
        }
    }
}

/// Per-stage slice of a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage label (`branch_and_bound`, …, or `refutation_search`).
    pub stage: String,
    /// Decisions settled at this stage.
    pub count: u64,
    /// Total solver time spent in those decisions, microseconds.
    pub total_micros: u64,
    /// Power-of-two latency histogram (bucket `k` = `[2^k, 2^(k+1))` µs).
    pub buckets: Vec<u64>,
}

impl Serialize for StageSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("stage", Json::from(self.stage.as_str())),
            ("count", Json::from(self.count)),
            ("total_micros", Json::from(self.total_micros)),
            ("buckets", self.buckets.to_json()),
        ])
    }
}

impl Deserialize for StageSnapshot {
    fn from_json(v: &Json) -> Result<StageSnapshot, JsonError> {
        Ok(StageSnapshot {
            stage: field(v, "stage")?,
            count: field(v, "count")?,
            total_micros: field(v, "total_micros")?,
            buckets: field(v, "buckets")?,
        })
    }
}

impl Serialize for Snapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests)),
            ("decide_requests", Json::from(self.decide_requests)),
            ("negative_gated", Json::from(self.negative_gated)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("cache_evictions", Json::from(self.cache_evictions)),
            ("coalesced", Json::from(self.coalesced)),
            ("computed", Json::from(self.computed)),
            ("queue_high_water", Json::from(self.queue_high_water)),
            ("solver_boxes", Json::from(self.solver_boxes)),
            ("solver_micros", Json::from(self.solver_micros)),
            ("worker_respawns", Json::from(self.worker_respawns)),
            ("shed_requests", Json::from(self.shed_requests)),
            ("deadline_exceeded", Json::from(self.deadline_exceeded)),
            ("pool_workers", Json::from(self.pool_workers)),
            ("pool_tasks", Json::from(self.pool_tasks)),
            ("pool_steals", Json::from(self.pool_steals)),
            // Derived, for dashboards that read the JSON directly; the
            // deserializer recomputes them from the counters.
            ("cache_hit_rate", Json::from(self.cache_hit_rate())),
            ("boxes_per_sec", Json::from(self.boxes_per_sec())),
            ("stages", self.stages.to_json()),
        ])
    }
}

impl Deserialize for Snapshot {
    fn from_json(v: &Json) -> Result<Snapshot, JsonError> {
        Ok(Snapshot {
            requests: field(v, "requests")?,
            decide_requests: field(v, "decide_requests")?,
            negative_gated: field(v, "negative_gated")?,
            cache_hits: field(v, "cache_hits")?,
            cache_misses: field(v, "cache_misses")?,
            cache_evictions: field(v, "cache_evictions")?,
            coalesced: field(v, "coalesced")?,
            computed: field(v, "computed")?,
            queue_high_water: field(v, "queue_high_water")?,
            // Absent in snapshots from pre-parallel-engine daemons.
            solver_boxes: opt_field(v, "solver_boxes")?.unwrap_or(0),
            solver_micros: opt_field(v, "solver_micros")?.unwrap_or(0),
            // Absent in snapshots from pre-fault-tolerance daemons.
            worker_respawns: opt_field(v, "worker_respawns")?.unwrap_or(0),
            shed_requests: opt_field(v, "shed_requests")?.unwrap_or(0),
            deadline_exceeded: opt_field(v, "deadline_exceeded")?.unwrap_or(0),
            pool_workers: opt_field(v, "pool_workers")?.unwrap_or(0),
            pool_tasks: opt_field(v, "pool_tasks")?.unwrap_or(0),
            pool_steals: opt_field(v, "pool_steals")?.unwrap_or(0),
            stages: field(v, "stages")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.record_decision(Some(Stage::Cancellation), 1); // bucket 0
        m.record_decision(Some(Stage::Cancellation), 5); // bucket 2: [4,8)
        m.record_decision(None, u64::MAX); // catch-all
        let snap = m.snapshot();
        let cancel = &snap.stages[3];
        assert_eq!(cancel.count, 2);
        assert_eq!(cancel.buckets[0], 1);
        assert_eq!(cancel.buckets[2], 1);
        let refute = &snap.stages[6];
        assert_eq!(refute.stage, "refutation_search");
        assert_eq!(refute.buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn zero_micros_counts_as_fastest_bucket() {
        let m = Metrics::new();
        m.record_decision(Some(Stage::Unconditional), 0);
        assert_eq!(m.snapshot().stages[0].buckets[0], 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        Metrics::incr(&m.requests);
        Metrics::incr(&m.cache_hits);
        m.observe_queue_depth(17);
        m.record_decision(Some(Stage::BranchAndBound), 900);
        m.record_solver_work(4096, 2_000_000);
        let snap = m.snapshot();
        let back = Snapshot::from_json(&Json::parse(&snap.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.queue_high_water, 17);
        assert!((back.cache_hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(back.solver_boxes, 4096);
        assert!((back.boxes_per_sec() - 2048.0).abs() < 1e-9);
    }

    #[test]
    fn pre_parallel_snapshots_default_solver_fields_to_zero() {
        // A snapshot serialized by a daemon that predates the parallel
        // engine has no solver/pool fields.
        let snap = Metrics::new().snapshot();
        let mut v = Json::parse(&snap.to_json().render()).unwrap();
        if let Json::Obj(fields) = &mut v {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "solver_boxes"
                        | "solver_micros"
                        | "worker_respawns"
                        | "shed_requests"
                        | "deadline_exceeded"
                        | "pool_workers"
                        | "pool_tasks"
                        | "pool_steals"
                        | "cache_hit_rate"
                        | "boxes_per_sec"
                )
            });
        }
        let back = Snapshot::from_json(&v).unwrap();
        assert_eq!(back.solver_boxes, 0);
        assert_eq!(back.pool_workers, 0);
        assert_eq!(back.boxes_per_sec(), 0.0);
    }
}
