//! Lock-free metrics registry for the auditing daemon.
//!
//! Counters are plain relaxed atomics: the daemon's hot path (cache
//! lookups, queue operations) only ever does `fetch_add`, and a
//! [`Snapshot`] is an unsynchronised read of all of them — fine for
//! monitoring, where a counter being one tick stale is irrelevant.
//! Per-stage latency is a power-of-two histogram in microseconds, one
//! histogram per pipeline [`Stage`] plus one slot for decisions made
//! outside the pipeline (the log-supermodular refutation search).

use epi_json::{field, opt_field, Deserialize, Json, JsonError, Serialize};
use epi_solver::Stage;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of latency-histogram buckets. Bucket `k` counts decisions whose
/// latency fell in `[2^k, 2^(k+1))` microseconds; the last bucket is a
/// catch-all, so the histogram spans ~1 µs to ~0.5 s before saturating.
pub const LATENCY_BUCKETS: usize = 20;

/// One latency slot per pipeline stage, plus one (the last) for
/// decisions reached outside the pipeline.
pub const STAGE_SLOTS: usize = 7;

/// Number of per-decision risk-histogram buckets: bucket `k` counts
/// decisions whose normalized risk score fell in `[k/10, (k+1)/10)`;
/// the last bucket also owns a risk of exactly 1.0.
pub const RISK_BUCKETS: usize = 10;

const STAGE_LABELS: [&str; STAGE_SLOTS] = [
    "unconditional",
    "miklau_suciu",
    "monotonicity",
    "cancellation",
    "box_necessary",
    "branch_and_bound",
    "refutation_search",
];

fn stage_slot(stage: Option<Stage>) -> usize {
    match stage {
        Some(Stage::Unconditional) => 0,
        Some(Stage::MiklauSuciu) => 1,
        Some(Stage::Monotonicity) => 2,
        Some(Stage::Cancellation) => 3,
        Some(Stage::BoxNecessary) => 4,
        Some(Stage::BranchAndBound) => 5,
        None => 6,
    }
}

#[derive(Default)]
struct StageStats {
    count: AtomicU64,
    total_micros: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

/// The daemon's counters. One instance is shared (behind an `Arc`) by the
/// session store, cache, worker pool and server.
#[derive(Default)]
pub struct Metrics {
    /// Protocol requests handled (all operations).
    pub requests: AtomicU64,
    /// Requests that needed a safety decision (disclose/cumulative past
    /// the negative-result gate).
    pub decide_requests: AtomicU64,
    /// Disclosures answered `Safe` because the audited property was false
    /// at disclosure time — no solver work at all.
    pub negative_gated: AtomicU64,
    /// Verdict-cache hits.
    pub cache_hits: AtomicU64,
    /// Verdict-cache misses.
    pub cache_misses: AtomicU64,
    /// Verdict-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Decisions that piggybacked on an identical in-flight decision
    /// instead of enqueueing their own.
    pub coalesced: AtomicU64,
    /// Decisions actually computed by a worker.
    pub computed: AtomicU64,
    /// High-water mark of the worker queue depth.
    pub queue_high_water: AtomicU64,
    /// Branch-and-bound boxes committed by computed decisions.
    pub solver_boxes: AtomicU64,
    /// Microseconds spent in decisions that ran the branch-and-bound
    /// (criterion-only decisions are excluded so boxes/sec stays honest).
    pub solver_micros: AtomicU64,
    /// Worker iterations that caught a solver panic and kept serving —
    /// each one is a logical worker respawn.
    pub worker_respawns: AtomicU64,
    /// Requests rejected with `overloaded` because the decision queue was
    /// full in shed mode.
    pub shed_requests: AtomicU64,
    /// Decisions that came back undecided because their deadline expired
    /// or the daemon was draining (always reported as *not* safe).
    pub deadline_exceeded: AtomicU64,
    /// Currently open TCP connections (gauge: incremented on accept,
    /// decremented on close).
    pub connections_open: AtomicU64,
    /// TCP connections accepted since startup.
    pub connections_accepted: AtomicU64,
    /// Connections evicted for inactivity — either fully idle past the
    /// idle timeout or dribbling a started frame past the frame deadline.
    pub connections_evicted_idle: AtomicU64,
    /// Connections evicted for overflow: accepted past the connection
    /// cap, or a write queue past its hard overflow limit.
    pub connections_evicted_overflow: AtomicU64,
    /// Times a connection's reads were paused for backpressure (full
    /// write queue, full dispatch queue, or the in-flight cap).
    pub backpressure_stalls: AtomicU64,
    /// High-water mark of any single connection's read buffer, bytes.
    pub read_buffer_high_water: AtomicU64,
    /// High-water mark of any single connection's write queue, bytes.
    pub write_buffer_high_water: AtomicU64,
    /// Requests rejected at admission because the estimated queue wait
    /// already exceeded their deadline (doomed work never enqueued).
    pub admission_rejects_deadline: AtomicU64,
    /// Requests rejected at admission by the adaptive concurrency limit.
    pub admission_rejects_limit: AtomicU64,
    /// Requests rejected by the per-user token-bucket fairness gate.
    pub admission_rejects_fairness: AtomicU64,
    /// Requests refused because the degradation ladder was in
    /// `cache_only` (uncached decision) or `frozen` (disclosure while
    /// the log is quarantined/stalled) mode.
    pub admission_rejects_degraded: AtomicU64,
    /// Current adaptive admission limit (gauge, written by the
    /// controller on every adjustment).
    pub admission_limit: AtomicU64,
    /// EWMA of decision-queue wait in microseconds (gauge).
    pub admission_wait_ewma_micros: AtomicU64,
    /// Degradation-ladder mode (gauge: 0 normal, 1 shedding,
    /// 2 cache_only, 3 frozen).
    pub degradation_mode: AtomicU64,
    /// Wall microseconds the last graceful drain took (gauge, zero until
    /// a drain runs).
    pub drain_micros: AtomicU64,
    /// Disclosures refused up front because the user's exposure budget
    /// crossed the deny threshold (O(1) fast path; never enqueued).
    pub budget_exhausted_denials: AtomicU64,
    /// Disclosures that crossed the budget warn threshold (still
    /// served).
    pub budget_warnings: AtomicU64,
    /// Largest per-user budget spend seen, in micro-units (gauge).
    pub budget_spent_high_water_micros: AtomicU64,
    /// Per-decision risk histogram: decisions scored, total risk in
    /// micro-units, and tenth-of-risk buckets.
    risk_count: AtomicU64,
    risk_sum_micros: AtomicU64,
    risk_buckets: [AtomicU64; RISK_BUCKETS],
    stages: [StageStats; STAGE_SLOTS],
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bumps a counter by one (relaxed).
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (relaxed, saturating at zero).
    pub fn decr(counter: &AtomicU64) {
        // fetch_update never fails with Relaxed/Relaxed + Some(..).
        let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Raises a high-water gauge to at least `value` (relaxed).
    pub fn observe_high_water(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    /// Overwrites a gauge with `value` (relaxed).
    pub fn set_gauge(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }

    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records branch-and-bound work done by one decision (boxes the
    /// search committed and the wall time of the decision). Call only for
    /// decisions that actually entered the box search.
    pub fn record_solver_work(&self, boxes: u64, micros: u64) {
        self.solver_boxes.fetch_add(boxes, Ordering::Relaxed);
        self.solver_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one decided disclosure's normalized risk score
    /// (micro-units, clamped to `[0, 1_000_000]`) into the risk
    /// histogram.
    pub fn record_risk(&self, micros: u64) {
        let micros = micros.min(1_000_000);
        self.risk_count.fetch_add(1, Ordering::Relaxed);
        self.risk_sum_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = ((micros / 100_000) as usize).min(RISK_BUCKETS - 1);
        self.risk_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one computed decision: which stage settled it and how long
    /// the solver took.
    pub fn record_decision(&self, stage: Option<Stage>, micros: u64) {
        let s = &self.stages[stage_slot(stage)];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.total_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        s.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every counter into a plain-data snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let read = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Snapshot {
            requests: read(&self.requests),
            decide_requests: read(&self.decide_requests),
            negative_gated: read(&self.negative_gated),
            cache_hits: read(&self.cache_hits),
            cache_misses: read(&self.cache_misses),
            cache_evictions: read(&self.cache_evictions),
            coalesced: read(&self.coalesced),
            computed: read(&self.computed),
            queue_high_water: read(&self.queue_high_water),
            solver_boxes: read(&self.solver_boxes),
            solver_micros: read(&self.solver_micros),
            worker_respawns: read(&self.worker_respawns),
            shed_requests: read(&self.shed_requests),
            deadline_exceeded: read(&self.deadline_exceeded),
            connections_open: read(&self.connections_open),
            connections_accepted: read(&self.connections_accepted),
            connections_evicted_idle: read(&self.connections_evicted_idle),
            connections_evicted_overflow: read(&self.connections_evicted_overflow),
            backpressure_stalls: read(&self.backpressure_stalls),
            read_buffer_high_water: read(&self.read_buffer_high_water),
            write_buffer_high_water: read(&self.write_buffer_high_water),
            admission_rejects_deadline: read(&self.admission_rejects_deadline),
            admission_rejects_limit: read(&self.admission_rejects_limit),
            admission_rejects_fairness: read(&self.admission_rejects_fairness),
            admission_rejects_degraded: read(&self.admission_rejects_degraded),
            admission_limit: read(&self.admission_limit),
            admission_wait_ewma_micros: read(&self.admission_wait_ewma_micros),
            degradation_mode: read(&self.degradation_mode),
            drain_micros: read(&self.drain_micros),
            budget_exhausted_denials: read(&self.budget_exhausted_denials),
            budget_warnings: read(&self.budget_warnings),
            budget_spent_high_water_micros: read(&self.budget_spent_high_water_micros),
            risk_count: read(&self.risk_count),
            risk_sum_micros: read(&self.risk_sum_micros),
            risk_buckets: self.risk_buckets.iter().map(read).collect(),
            pool_workers: epi_par::Pool::global().threads() as u64,
            pool_tasks: epi_par::stats().tasks_executed,
            pool_steals: epi_par::stats().steals,
            pool_queue_waits: epi_par::stats().queue_waits,
            pool_queue_wait_micros: epi_par::stats().queue_wait_micros,
            pool_arena_checkouts: epi_par::stats().arena_checkouts,
            pool_arena_misses: epi_par::stats().arena_misses,
            pool_arena_high_water_bytes: epi_par::stats().arena_high_water_bytes,
            pool_waves_sequential: epi_par::stats().waves_sequential,
            pool_waves_parallel: epi_par::stats().waves_parallel,
            pool_batch_sweeps: epi_par::stats().batch_sweeps,
            pool_soa_high_water_bytes: epi_par::stats().soa_staged_high_water_bytes,
            // The trace ring lives beside the registry (in the service),
            // which overwrites these after snapshotting; a bare registry
            // reports zeros.
            trace_spans: 0,
            trace_dropped: 0,
            slow_decisions: 0,
            // Likewise for the disclosure log: the WAL keeps its own
            // atomics and the service folds them in after snapshotting.
            wal_appends: 0,
            wal_bytes: 0,
            wal_fsyncs: 0,
            snapshot_count: 0,
            recovery_replayed_records: 0,
            recovery_millis: 0,
            stages: self
                .stages
                .iter()
                .zip(STAGE_LABELS)
                .map(|(s, label)| StageSnapshot {
                    stage: label.to_owned(),
                    count: read(&s.count),
                    total_micros: read(&s.total_micros),
                    buckets: s.buckets.iter().map(read).collect(),
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of [`Metrics`] — what the `stats` protocol
/// operation returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Protocol requests handled.
    pub requests: u64,
    /// Requests that needed a safety decision.
    pub decide_requests: u64,
    /// Disclosures short-circuited by the negative-result rule.
    pub negative_gated: u64,
    /// Verdict-cache hits.
    pub cache_hits: u64,
    /// Verdict-cache misses.
    pub cache_misses: u64,
    /// Verdict-cache evictions.
    pub cache_evictions: u64,
    /// Decisions coalesced onto an in-flight computation.
    pub coalesced: u64,
    /// Decisions computed by workers.
    pub computed: u64,
    /// Worker-queue depth high-water mark.
    pub queue_high_water: u64,
    /// Branch-and-bound boxes committed across computed decisions.
    pub solver_boxes: u64,
    /// Wall micros of the decisions that ran the branch-and-bound.
    pub solver_micros: u64,
    /// Worker iterations that recovered from a solver panic.
    pub worker_respawns: u64,
    /// Requests shed with `overloaded` under queue pressure.
    pub shed_requests: u64,
    /// Decisions undecided because of deadline expiry or shutdown.
    pub deadline_exceeded: u64,
    /// Currently open TCP connections.
    pub connections_open: u64,
    /// TCP connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections evicted for idle/frame-deadline inactivity.
    pub connections_evicted_idle: u64,
    /// Connections evicted for overflow (connection cap or write-queue
    /// hard limit).
    pub connections_evicted_overflow: u64,
    /// Read pauses triggered by per-connection backpressure.
    pub backpressure_stalls: u64,
    /// High-water mark of any single connection's read buffer, bytes.
    pub read_buffer_high_water: u64,
    /// High-water mark of any single connection's write queue, bytes.
    pub write_buffer_high_water: u64,
    /// Requests rejected at admission: estimated queue wait exceeded the
    /// request's deadline.
    pub admission_rejects_deadline: u64,
    /// Requests rejected at admission by the adaptive concurrency limit.
    pub admission_rejects_limit: u64,
    /// Requests rejected by the per-user fairness token bucket.
    pub admission_rejects_fairness: u64,
    /// Requests refused in `cache_only`/`frozen` degradation modes.
    pub admission_rejects_degraded: u64,
    /// Current adaptive admission limit (gauge).
    pub admission_limit: u64,
    /// EWMA of decision-queue wait, microseconds (gauge).
    pub admission_wait_ewma_micros: u64,
    /// Degradation-ladder mode (gauge: 0 normal, 1 shedding,
    /// 2 cache_only, 3 frozen).
    pub degradation_mode: u64,
    /// Wall microseconds the last graceful drain took (gauge).
    pub drain_micros: u64,
    /// Disclosures refused up front by the exposure-budget deny
    /// threshold (never enqueued to the solver).
    pub budget_exhausted_denials: u64,
    /// Disclosures that crossed the budget warn threshold.
    pub budget_warnings: u64,
    /// Largest per-user budget spend seen, micro-units (gauge).
    pub budget_spent_high_water_micros: u64,
    /// Decisions scored into the risk histogram.
    pub risk_count: u64,
    /// Total risk across scored decisions, micro-units.
    pub risk_sum_micros: u64,
    /// Tenth-of-risk histogram buckets (`[k/10, (k+1)/10)`, last bucket
    /// owns 1.0).
    pub risk_buckets: Vec<u64>,
    /// Worker threads in the process-wide [`epi_par`] solver pool.
    pub pool_workers: u64,
    /// Tasks the solver pool has executed (process lifetime).
    pub pool_tasks: u64,
    /// Work-stealing events in the solver pool (process lifetime).
    pub pool_steals: u64,
    /// Best-first queue pops that had to block for work (process
    /// lifetime) — the solver-pool starvation signal.
    pub pool_queue_waits: u64,
    /// Total microseconds those pops spent blocked (process lifetime).
    pub pool_queue_wait_micros: u64,
    /// Solver arena buffer checkouts (process lifetime).
    pub pool_arena_checkouts: u64,
    /// Arena checkouts that had to allocate — flat while `checkouts`
    /// climbs means the zero-allocation hot path is holding.
    pub pool_arena_misses: u64,
    /// High-water mark of bytes parked across the solver buffer pools.
    pub pool_arena_high_water_bytes: u64,
    /// Frontier waves the chunk policy kept sequential (process lifetime).
    pub pool_waves_sequential: u64,
    /// Frontier waves the chunk policy fanned out (process lifetime).
    pub pool_waves_parallel: u64,
    /// Batched structure-of-arrays kernel sweeps run by the wave engine.
    pub pool_batch_sweeps: u64,
    /// High-water mark of bytes staged at once in the wave engine's
    /// structure-of-arrays buffers (midpoints + split axes + survivor
    /// indices).
    pub pool_soa_high_water_bytes: u64,
    /// Spans recorded into the daemon's trace ring since startup.
    pub trace_spans: u64,
    /// Spans whose ring slot has since been overwritten (ring laps).
    pub trace_dropped: u64,
    /// Spans that crossed the slow-decision threshold since startup.
    pub slow_decisions: u64,
    /// Records appended to the durable disclosure log since startup
    /// (zero when the daemon runs without a data directory).
    pub wal_appends: u64,
    /// Bytes written to the disclosure log since startup (framing
    /// included).
    pub wal_bytes: u64,
    /// `fdatasync` calls issued by the disclosure log since startup.
    /// Under group commit this is typically far below `wal_appends`.
    pub wal_fsyncs: u64,
    /// Compacted snapshots written since startup.
    pub snapshot_count: u64,
    /// Log records replayed during the last startup recovery.
    pub recovery_replayed_records: u64,
    /// Wall milliseconds the last startup recovery took.
    pub recovery_millis: u64,
    /// Per-stage decision counts and latency histograms.
    pub stages: Vec<StageSnapshot>,
}

impl Snapshot {
    /// Cache hit rate in `[0, 1]`; `0` before any lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Branch-and-bound throughput in boxes per second over the decisions
    /// that ran the box search; `0` before any solver work.
    pub fn boxes_per_sec(&self) -> f64 {
        if self.solver_micros == 0 {
            0.0
        } else {
            self.solver_boxes as f64 / (self.solver_micros as f64 / 1e6)
        }
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): every counter, the gauges, and one
    /// `epi_stage_latency_micros` histogram series per pipeline stage
    /// with cumulative `le` buckets, `_sum` and `_count`.
    ///
    /// Bucket `k` of the internal power-of-two histogram counts
    /// latencies in `[2^k, 2^(k+1))` µs, so its exposition upper bound
    /// is `le="2^(k+1)"`; the saturating last bucket maps to `le="+Inf"`
    /// (which, being cumulative, always equals `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "epi_requests_total",
            "Protocol requests handled.",
            self.requests,
        );
        counter(
            "epi_decide_requests_total",
            "Requests that needed a safety decision.",
            self.decide_requests,
        );
        counter(
            "epi_negative_gated_total",
            "Disclosures short-circuited by the negative-result rule.",
            self.negative_gated,
        );
        counter(
            "epi_cache_hits_total",
            "Verdict-cache hits.",
            self.cache_hits,
        );
        counter(
            "epi_cache_misses_total",
            "Verdict-cache misses.",
            self.cache_misses,
        );
        counter(
            "epi_cache_evictions_total",
            "Verdict-cache evictions.",
            self.cache_evictions,
        );
        counter(
            "epi_coalesced_total",
            "Decisions coalesced onto an in-flight computation.",
            self.coalesced,
        );
        counter(
            "epi_computed_total",
            "Decisions computed by workers.",
            self.computed,
        );
        counter(
            "epi_solver_boxes_total",
            "Branch-and-bound boxes committed across computed decisions.",
            self.solver_boxes,
        );
        counter(
            "epi_solver_micros_total",
            "Wall micros of decisions that ran the branch-and-bound.",
            self.solver_micros,
        );
        counter(
            "epi_worker_respawns_total",
            "Worker iterations that recovered from a solver panic.",
            self.worker_respawns,
        );
        counter(
            "epi_shed_requests_total",
            "Requests shed with `overloaded` under queue pressure.",
            self.shed_requests,
        );
        counter(
            "epi_deadline_exceeded_total",
            "Decisions undecided because of deadline expiry or shutdown.",
            self.deadline_exceeded,
        );
        counter(
            "epi_connections_accepted_total",
            "TCP connections accepted since startup.",
            self.connections_accepted,
        );
        counter(
            "epi_connections_evicted_idle_total",
            "Connections evicted for idle/frame-deadline inactivity.",
            self.connections_evicted_idle,
        );
        counter(
            "epi_connections_evicted_overflow_total",
            "Connections evicted for overflow (connection cap or write-queue hard limit).",
            self.connections_evicted_overflow,
        );
        counter(
            "epi_backpressure_stalls_total",
            "Read pauses triggered by per-connection backpressure.",
            self.backpressure_stalls,
        );
        counter(
            "epi_pool_tasks_total",
            "Tasks executed by the process-wide solver pool.",
            self.pool_tasks,
        );
        counter(
            "epi_pool_steals_total",
            "Work-stealing events in the solver pool.",
            self.pool_steals,
        );
        counter(
            "epi_pool_queue_waits_total",
            "Best-first queue pops that blocked for work.",
            self.pool_queue_waits,
        );
        counter(
            "epi_pool_queue_wait_micros_total",
            "Microseconds best-first queue pops spent blocked.",
            self.pool_queue_wait_micros,
        );
        counter(
            "epi_pool_arena_checkouts_total",
            "Solver arena buffer checkouts.",
            self.pool_arena_checkouts,
        );
        counter(
            "epi_pool_arena_misses_total",
            "Arena checkouts that had to allocate.",
            self.pool_arena_misses,
        );
        counter(
            "epi_pool_waves_sequential_total",
            "Frontier waves kept sequential by the chunk policy.",
            self.pool_waves_sequential,
        );
        counter(
            "epi_pool_waves_parallel_total",
            "Frontier waves fanned out by the chunk policy.",
            self.pool_waves_parallel,
        );
        counter(
            "epi_pool_batch_sweeps_total",
            "Batched structure-of-arrays kernel sweeps run by the wave engine.",
            self.pool_batch_sweeps,
        );
        counter(
            "epi_trace_spans_total",
            "Spans recorded into the trace ring.",
            self.trace_spans,
        );
        counter(
            "epi_trace_dropped_total",
            "Trace-ring spans overwritten by newer ones.",
            self.trace_dropped,
        );
        counter(
            "epi_slow_decisions_total",
            "Spans that crossed the slow-decision threshold.",
            self.slow_decisions,
        );
        counter(
            "epi_wal_appends_total",
            "Records appended to the durable disclosure log.",
            self.wal_appends,
        );
        counter(
            "epi_wal_bytes_total",
            "Bytes written to the disclosure log, framing included.",
            self.wal_bytes,
        );
        counter(
            "epi_wal_fsyncs_total",
            "fdatasync calls issued by the disclosure log.",
            self.wal_fsyncs,
        );
        counter(
            "epi_snapshots_total",
            "Compacted session snapshots written.",
            self.snapshot_count,
        );
        counter(
            "epi_admission_rejects_deadline_total",
            "Requests rejected at admission: queue wait exceeded deadline.",
            self.admission_rejects_deadline,
        );
        counter(
            "epi_admission_rejects_limit_total",
            "Requests rejected at admission by the adaptive concurrency limit.",
            self.admission_rejects_limit,
        );
        counter(
            "epi_admission_rejects_fairness_total",
            "Requests rejected by the per-user fairness token bucket.",
            self.admission_rejects_fairness,
        );
        counter(
            "epi_admission_rejects_degraded_total",
            "Requests refused in cache_only/frozen degradation modes.",
            self.admission_rejects_degraded,
        );
        counter(
            "epi_budget_exhausted_denials_total",
            "Disclosures refused by the exposure-budget deny threshold.",
            self.budget_exhausted_denials,
        );
        counter(
            "epi_budget_warnings_total",
            "Disclosures that crossed the exposure-budget warn threshold.",
            self.budget_warnings,
        );
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(
            "epi_queue_high_water",
            "Worker-queue depth high-water mark.",
            self.queue_high_water,
        );
        gauge(
            "epi_connections_open",
            "Currently open TCP connections.",
            self.connections_open,
        );
        gauge(
            "epi_read_buffer_high_water",
            "High-water mark of any single connection's read buffer, bytes.",
            self.read_buffer_high_water,
        );
        gauge(
            "epi_write_buffer_high_water",
            "High-water mark of any single connection's write queue, bytes.",
            self.write_buffer_high_water,
        );
        gauge(
            "epi_pool_workers",
            "Worker threads in the process-wide solver pool.",
            self.pool_workers,
        );
        gauge(
            "epi_pool_arena_high_water_bytes",
            "High-water mark of bytes parked in the solver buffer pools.",
            self.pool_arena_high_water_bytes,
        );
        gauge(
            "epi_pool_soa_high_water_bytes",
            "High-water mark of bytes staged in the wave engine's SoA buffers.",
            self.pool_soa_high_water_bytes,
        );
        gauge(
            "epi_recovery_replayed_records",
            "Log records replayed during the last startup recovery.",
            self.recovery_replayed_records,
        );
        gauge(
            "epi_recovery_millis",
            "Wall milliseconds the last startup recovery took.",
            self.recovery_millis,
        );
        gauge(
            "epi_admission_limit",
            "Current adaptive admission limit (concurrently admitted decisions).",
            self.admission_limit,
        );
        gauge(
            "epi_admission_wait_ewma_micros",
            "EWMA of decision-queue wait, microseconds.",
            self.admission_wait_ewma_micros,
        );
        gauge(
            "epi_degradation_mode",
            "Degradation-ladder mode (0 normal, 1 shedding, 2 cache_only, 3 frozen).",
            self.degradation_mode,
        );
        gauge(
            "epi_drain_micros",
            "Wall microseconds the last graceful drain took.",
            self.drain_micros,
        );
        gauge(
            "epi_budget_spent_high_water_micros",
            "Largest per-user exposure-budget spend seen, micro-units.",
            self.budget_spent_high_water_micros,
        );
        out.push_str(concat!(
            "# HELP epi_decision_risk Normalized per-decision risk score.\n",
            "# TYPE epi_decision_risk histogram\n",
        ));
        let mut cumulative = 0u64;
        for (k, &n) in self.risk_buckets.iter().enumerate() {
            cumulative += n;
            if k + 1 == self.risk_buckets.len() {
                out.push_str(&format!(
                    "epi_decision_risk_bucket{{le=\"+Inf\"}} {cumulative}\n"
                ));
            } else {
                out.push_str(&format!(
                    "epi_decision_risk_bucket{{le=\"0.{}\"}} {}\n",
                    k + 1,
                    cumulative
                ));
            }
        }
        out.push_str(&format!(
            "epi_decision_risk_sum {}\n",
            self.risk_sum_micros as f64 / 1e6
        ));
        out.push_str(&format!("epi_decision_risk_count {}\n", self.risk_count));
        out.push_str(concat!(
            "# HELP epi_stage_latency_micros Decision latency by deciding pipeline stage.\n",
            "# TYPE epi_stage_latency_micros histogram\n",
        ));
        for stage in &self.stages {
            let mut cumulative = 0u64;
            for (k, &n) in stage.buckets.iter().enumerate() {
                cumulative += n;
                if k + 1 == stage.buckets.len() {
                    out.push_str(&format!(
                        "epi_stage_latency_micros_bucket{{stage=\"{}\",le=\"+Inf\"}} {}\n",
                        stage.stage, cumulative
                    ));
                } else {
                    out.push_str(&format!(
                        "epi_stage_latency_micros_bucket{{stage=\"{}\",le=\"{}\"}} {}\n",
                        stage.stage,
                        1u64 << (k + 1),
                        cumulative
                    ));
                }
            }
            out.push_str(&format!(
                "epi_stage_latency_micros_sum{{stage=\"{}\"}} {}\n",
                stage.stage, stage.total_micros
            ));
            out.push_str(&format!(
                "epi_stage_latency_micros_count{{stage=\"{}\"}} {}\n",
                stage.stage, stage.count
            ));
        }
        out
    }
}

/// Per-stage slice of a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Stage label (`branch_and_bound`, …, or `refutation_search`).
    pub stage: String,
    /// Decisions settled at this stage.
    pub count: u64,
    /// Total solver time spent in those decisions, microseconds.
    pub total_micros: u64,
    /// Power-of-two latency histogram (bucket `k` = `[2^k, 2^(k+1))` µs).
    pub buckets: Vec<u64>,
}

impl Serialize for StageSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("stage", Json::from(self.stage.as_str())),
            ("count", Json::from(self.count)),
            ("total_micros", Json::from(self.total_micros)),
            ("buckets", self.buckets.to_json()),
        ])
    }
}

impl Deserialize for StageSnapshot {
    fn from_json(v: &Json) -> Result<StageSnapshot, JsonError> {
        Ok(StageSnapshot {
            stage: field(v, "stage")?,
            count: field(v, "count")?,
            total_micros: field(v, "total_micros")?,
            buckets: field(v, "buckets")?,
        })
    }
}

impl Serialize for Snapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::from(self.requests)),
            ("decide_requests", Json::from(self.decide_requests)),
            ("negative_gated", Json::from(self.negative_gated)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("cache_evictions", Json::from(self.cache_evictions)),
            ("coalesced", Json::from(self.coalesced)),
            ("computed", Json::from(self.computed)),
            ("queue_high_water", Json::from(self.queue_high_water)),
            ("solver_boxes", Json::from(self.solver_boxes)),
            ("solver_micros", Json::from(self.solver_micros)),
            ("worker_respawns", Json::from(self.worker_respawns)),
            ("shed_requests", Json::from(self.shed_requests)),
            ("deadline_exceeded", Json::from(self.deadline_exceeded)),
            ("connections_open", Json::from(self.connections_open)),
            (
                "connections_accepted",
                Json::from(self.connections_accepted),
            ),
            (
                "connections_evicted_idle",
                Json::from(self.connections_evicted_idle),
            ),
            (
                "connections_evicted_overflow",
                Json::from(self.connections_evicted_overflow),
            ),
            ("backpressure_stalls", Json::from(self.backpressure_stalls)),
            (
                "read_buffer_high_water",
                Json::from(self.read_buffer_high_water),
            ),
            (
                "write_buffer_high_water",
                Json::from(self.write_buffer_high_water),
            ),
            (
                "admission_rejects_deadline",
                Json::from(self.admission_rejects_deadline),
            ),
            (
                "admission_rejects_limit",
                Json::from(self.admission_rejects_limit),
            ),
            (
                "admission_rejects_fairness",
                Json::from(self.admission_rejects_fairness),
            ),
            (
                "admission_rejects_degraded",
                Json::from(self.admission_rejects_degraded),
            ),
            ("admission_limit", Json::from(self.admission_limit)),
            (
                "admission_wait_ewma_micros",
                Json::from(self.admission_wait_ewma_micros),
            ),
            ("degradation_mode", Json::from(self.degradation_mode)),
            ("drain_micros", Json::from(self.drain_micros)),
            (
                "budget_exhausted_denials",
                Json::from(self.budget_exhausted_denials),
            ),
            ("budget_warnings", Json::from(self.budget_warnings)),
            (
                "budget_spent_high_water_micros",
                Json::from(self.budget_spent_high_water_micros),
            ),
            ("risk_count", Json::from(self.risk_count)),
            ("risk_sum_micros", Json::from(self.risk_sum_micros)),
            ("risk_buckets", self.risk_buckets.to_json()),
            ("pool_workers", Json::from(self.pool_workers)),
            ("pool_tasks", Json::from(self.pool_tasks)),
            ("pool_steals", Json::from(self.pool_steals)),
            ("pool_queue_waits", Json::from(self.pool_queue_waits)),
            (
                "pool_queue_wait_micros",
                Json::from(self.pool_queue_wait_micros),
            ),
            (
                "pool_arena_checkouts",
                Json::from(self.pool_arena_checkouts),
            ),
            ("pool_arena_misses", Json::from(self.pool_arena_misses)),
            (
                "pool_arena_high_water_bytes",
                Json::from(self.pool_arena_high_water_bytes),
            ),
            (
                "pool_waves_sequential",
                Json::from(self.pool_waves_sequential),
            ),
            ("pool_waves_parallel", Json::from(self.pool_waves_parallel)),
            ("pool_batch_sweeps", Json::from(self.pool_batch_sweeps)),
            (
                "pool_soa_high_water_bytes",
                Json::from(self.pool_soa_high_water_bytes),
            ),
            ("trace_spans", Json::from(self.trace_spans)),
            ("trace_dropped", Json::from(self.trace_dropped)),
            ("slow_decisions", Json::from(self.slow_decisions)),
            ("wal_appends", Json::from(self.wal_appends)),
            ("wal_bytes", Json::from(self.wal_bytes)),
            ("wal_fsyncs", Json::from(self.wal_fsyncs)),
            ("snapshot_count", Json::from(self.snapshot_count)),
            (
                "recovery_replayed_records",
                Json::from(self.recovery_replayed_records),
            ),
            ("recovery_millis", Json::from(self.recovery_millis)),
            // Derived, for dashboards that read the JSON directly; the
            // deserializer recomputes them from the counters.
            ("cache_hit_rate", Json::from(self.cache_hit_rate())),
            ("boxes_per_sec", Json::from(self.boxes_per_sec())),
            ("stages", self.stages.to_json()),
        ])
    }
}

impl Deserialize for Snapshot {
    fn from_json(v: &Json) -> Result<Snapshot, JsonError> {
        Ok(Snapshot {
            requests: field(v, "requests")?,
            decide_requests: field(v, "decide_requests")?,
            // Tolerant decode for counters that some daemon generations
            // omit: a snapshot from an older (or minimally-configured)
            // daemon must parse, with absent counters reading as zero.
            // Requiring these used to reject otherwise-valid snapshots.
            negative_gated: opt_field(v, "negative_gated")?.unwrap_or(0),
            cache_hits: field(v, "cache_hits")?,
            cache_misses: field(v, "cache_misses")?,
            cache_evictions: field(v, "cache_evictions")?,
            coalesced: opt_field(v, "coalesced")?.unwrap_or(0),
            computed: field(v, "computed")?,
            queue_high_water: opt_field(v, "queue_high_water")?.unwrap_or(0),
            // Absent in snapshots from pre-parallel-engine daemons.
            solver_boxes: opt_field(v, "solver_boxes")?.unwrap_or(0),
            solver_micros: opt_field(v, "solver_micros")?.unwrap_or(0),
            // Absent in snapshots from pre-fault-tolerance daemons.
            worker_respawns: opt_field(v, "worker_respawns")?.unwrap_or(0),
            shed_requests: opt_field(v, "shed_requests")?.unwrap_or(0),
            deadline_exceeded: opt_field(v, "deadline_exceeded")?.unwrap_or(0),
            // Absent in snapshots from pre-reactor daemons.
            connections_open: opt_field(v, "connections_open")?.unwrap_or(0),
            connections_accepted: opt_field(v, "connections_accepted")?.unwrap_or(0),
            connections_evicted_idle: opt_field(v, "connections_evicted_idle")?.unwrap_or(0),
            connections_evicted_overflow: opt_field(v, "connections_evicted_overflow")?
                .unwrap_or(0),
            backpressure_stalls: opt_field(v, "backpressure_stalls")?.unwrap_or(0),
            read_buffer_high_water: opt_field(v, "read_buffer_high_water")?.unwrap_or(0),
            write_buffer_high_water: opt_field(v, "write_buffer_high_water")?.unwrap_or(0),
            // Absent in snapshots from pre-overload-control daemons.
            admission_rejects_deadline: opt_field(v, "admission_rejects_deadline")?.unwrap_or(0),
            admission_rejects_limit: opt_field(v, "admission_rejects_limit")?.unwrap_or(0),
            admission_rejects_fairness: opt_field(v, "admission_rejects_fairness")?.unwrap_or(0),
            admission_rejects_degraded: opt_field(v, "admission_rejects_degraded")?.unwrap_or(0),
            admission_limit: opt_field(v, "admission_limit")?.unwrap_or(0),
            admission_wait_ewma_micros: opt_field(v, "admission_wait_ewma_micros")?.unwrap_or(0),
            degradation_mode: opt_field(v, "degradation_mode")?.unwrap_or(0),
            drain_micros: opt_field(v, "drain_micros")?.unwrap_or(0),
            // Absent in snapshots from pre-budget daemons: every budget
            // and risk member decodes to its zero state, and the absent
            // histogram reads as all-empty buckets so a decoded legacy
            // snapshot compares equal to a fresh registry's.
            budget_exhausted_denials: opt_field(v, "budget_exhausted_denials")?.unwrap_or(0),
            budget_warnings: opt_field(v, "budget_warnings")?.unwrap_or(0),
            budget_spent_high_water_micros: opt_field(v, "budget_spent_high_water_micros")?
                .unwrap_or(0),
            risk_count: opt_field(v, "risk_count")?.unwrap_or(0),
            risk_sum_micros: opt_field(v, "risk_sum_micros")?.unwrap_or(0),
            risk_buckets: opt_field(v, "risk_buckets")?.unwrap_or_else(|| vec![0; RISK_BUCKETS]),
            pool_workers: opt_field(v, "pool_workers")?.unwrap_or(0),
            pool_tasks: opt_field(v, "pool_tasks")?.unwrap_or(0),
            pool_steals: opt_field(v, "pool_steals")?.unwrap_or(0),
            // Absent in snapshots from pre-tracing daemons.
            pool_queue_waits: opt_field(v, "pool_queue_waits")?.unwrap_or(0),
            pool_queue_wait_micros: opt_field(v, "pool_queue_wait_micros")?.unwrap_or(0),
            // Absent in snapshots from pre-arena daemons.
            pool_arena_checkouts: opt_field(v, "pool_arena_checkouts")?.unwrap_or(0),
            pool_arena_misses: opt_field(v, "pool_arena_misses")?.unwrap_or(0),
            pool_arena_high_water_bytes: opt_field(v, "pool_arena_high_water_bytes")?.unwrap_or(0),
            pool_waves_sequential: opt_field(v, "pool_waves_sequential")?.unwrap_or(0),
            pool_waves_parallel: opt_field(v, "pool_waves_parallel")?.unwrap_or(0),
            // Absent in snapshots from pre-batching daemons.
            pool_batch_sweeps: opt_field(v, "pool_batch_sweeps")?.unwrap_or(0),
            pool_soa_high_water_bytes: opt_field(v, "pool_soa_high_water_bytes")?.unwrap_or(0),
            trace_spans: opt_field(v, "trace_spans")?.unwrap_or(0),
            trace_dropped: opt_field(v, "trace_dropped")?.unwrap_or(0),
            slow_decisions: opt_field(v, "slow_decisions")?.unwrap_or(0),
            // Absent in snapshots from pre-persistence daemons.
            wal_appends: opt_field(v, "wal_appends")?.unwrap_or(0),
            wal_bytes: opt_field(v, "wal_bytes")?.unwrap_or(0),
            wal_fsyncs: opt_field(v, "wal_fsyncs")?.unwrap_or(0),
            snapshot_count: opt_field(v, "snapshot_count")?.unwrap_or(0),
            recovery_replayed_records: opt_field(v, "recovery_replayed_records")?.unwrap_or(0),
            recovery_millis: opt_field(v, "recovery_millis")?.unwrap_or(0),
            stages: field(v, "stages")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_lands_in_the_right_bucket() {
        let m = Metrics::new();
        m.record_decision(Some(Stage::Cancellation), 1); // bucket 0
        m.record_decision(Some(Stage::Cancellation), 5); // bucket 2: [4,8)
        m.record_decision(None, u64::MAX); // catch-all
        let snap = m.snapshot();
        let cancel = &snap.stages[3];
        assert_eq!(cancel.count, 2);
        assert_eq!(cancel.buckets[0], 1);
        assert_eq!(cancel.buckets[2], 1);
        let refute = &snap.stages[6];
        assert_eq!(refute.stage, "refutation_search");
        assert_eq!(refute.buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn zero_micros_counts_as_fastest_bucket() {
        let m = Metrics::new();
        m.record_decision(Some(Stage::Unconditional), 0);
        assert_eq!(m.snapshot().stages[0].buckets[0], 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        Metrics::incr(&m.requests);
        Metrics::incr(&m.cache_hits);
        m.observe_queue_depth(17);
        m.record_decision(Some(Stage::BranchAndBound), 900);
        m.record_solver_work(4096, 2_000_000);
        let snap = m.snapshot();
        let back = Snapshot::from_json(&Json::parse(&snap.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.queue_high_water, 17);
        assert!((back.cache_hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(back.solver_boxes, 4096);
        assert!((back.boxes_per_sec() - 2048.0).abs() < 1e-9);
    }

    #[test]
    fn pre_parallel_snapshots_default_solver_fields_to_zero() {
        // A snapshot serialized by a daemon that predates the parallel
        // engine has no solver/pool fields — and one from a minimal
        // daemon generation may also omit `negative_gated`, `coalesced`
        // and `queue_high_water`. All must decode to zero, not reject.
        let snap = Metrics::new().snapshot();
        let mut v = Json::parse(&snap.to_json().render()).unwrap();
        if let Json::Obj(fields) = &mut v {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "negative_gated"
                        | "coalesced"
                        | "queue_high_water"
                        | "solver_boxes"
                        | "solver_micros"
                        | "worker_respawns"
                        | "shed_requests"
                        | "deadline_exceeded"
                        | "connections_open"
                        | "connections_accepted"
                        | "connections_evicted_idle"
                        | "connections_evicted_overflow"
                        | "backpressure_stalls"
                        | "read_buffer_high_water"
                        | "write_buffer_high_water"
                        | "admission_rejects_deadline"
                        | "admission_rejects_limit"
                        | "admission_rejects_fairness"
                        | "admission_rejects_degraded"
                        | "admission_limit"
                        | "admission_wait_ewma_micros"
                        | "degradation_mode"
                        | "drain_micros"
                        | "budget_exhausted_denials"
                        | "budget_warnings"
                        | "budget_spent_high_water_micros"
                        | "risk_count"
                        | "risk_sum_micros"
                        | "risk_buckets"
                        | "pool_workers"
                        | "pool_tasks"
                        | "pool_steals"
                        | "pool_queue_waits"
                        | "pool_queue_wait_micros"
                        | "pool_arena_checkouts"
                        | "pool_arena_misses"
                        | "pool_arena_high_water_bytes"
                        | "pool_waves_sequential"
                        | "pool_waves_parallel"
                        | "pool_batch_sweeps"
                        | "pool_soa_high_water_bytes"
                        | "trace_spans"
                        | "trace_dropped"
                        | "slow_decisions"
                        | "wal_appends"
                        | "wal_bytes"
                        | "wal_fsyncs"
                        | "snapshot_count"
                        | "recovery_replayed_records"
                        | "recovery_millis"
                        | "cache_hit_rate"
                        | "boxes_per_sec"
                )
            });
        }
        let back = Snapshot::from_json(&v).unwrap();
        assert_eq!(back.negative_gated, 0);
        assert_eq!(back.connections_open, 0);
        assert_eq!(back.admission_rejects_deadline, 0);
        assert_eq!(back.admission_rejects_limit, 0);
        assert_eq!(back.admission_rejects_fairness, 0);
        assert_eq!(back.admission_rejects_degraded, 0);
        assert_eq!(back.admission_limit, 0);
        assert_eq!(back.admission_wait_ewma_micros, 0);
        assert_eq!(back.degradation_mode, 0);
        assert_eq!(back.drain_micros, 0);
        assert_eq!(back.connections_accepted, 0);
        assert_eq!(back.backpressure_stalls, 0);
        assert_eq!(back.read_buffer_high_water, 0);
        assert_eq!(back.coalesced, 0);
        assert_eq!(back.queue_high_water, 0);
        assert_eq!(back.solver_boxes, 0);
        assert_eq!(back.pool_workers, 0);
        assert_eq!(back.trace_spans, 0);
        assert_eq!(back.slow_decisions, 0);
        assert_eq!(back.pool_arena_checkouts, 0);
        assert_eq!(back.pool_waves_sequential, 0);
        assert_eq!(back.wal_appends, 0);
        assert_eq!(back.wal_fsyncs, 0);
        assert_eq!(back.snapshot_count, 0);
        assert_eq!(back.recovery_replayed_records, 0);
        assert_eq!(back.recovery_millis, 0);
        assert_eq!(back.boxes_per_sec(), 0.0);
        assert_eq!(back.budget_exhausted_denials, 0);
        assert_eq!(back.budget_warnings, 0);
        assert_eq!(back.budget_spent_high_water_micros, 0);
        assert_eq!(back.risk_count, 0);
        assert_eq!(back.risk_buckets, vec![0; RISK_BUCKETS]);
    }

    #[test]
    fn pre_budget_snapshots_default_budget_and_risk_fields_to_zero() {
        // Regression (PR 9): a snapshot line from a pre-budget daemon
        // carries none of the budget/risk members; it must parse with
        // every one of them zero-defaulted, exactly like the
        // negative_gated/coalesced defaults above.
        let snap = Metrics::new().snapshot();
        let mut v = Json::parse(&snap.to_json().render()).unwrap();
        if let Json::Obj(fields) = &mut v {
            fields.retain(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "budget_exhausted_denials"
                        | "budget_warnings"
                        | "budget_spent_high_water_micros"
                        | "risk_count"
                        | "risk_sum_micros"
                        | "risk_buckets"
                )
            });
        }
        let back = Snapshot::from_json(&v).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn risk_scores_land_in_tenth_buckets() {
        let m = Metrics::new();
        m.record_risk(0); // bucket 0
        m.record_risk(99_999); // bucket 0
        m.record_risk(100_000); // bucket 1
        m.record_risk(950_000); // bucket 9
        m.record_risk(1_000_000); // bucket 9 (owns 1.0)
        m.record_risk(u64::MAX); // clamped, bucket 9
        let snap = m.snapshot();
        assert_eq!(snap.risk_count, 6);
        assert_eq!(snap.risk_buckets[0], 2);
        assert_eq!(snap.risk_buckets[1], 1);
        assert_eq!(snap.risk_buckets[9], 3);
        assert_eq!(snap.risk_sum_micros, 99_999 + 100_000 + 950_000 + 2_000_000);
        let text = snap.render_prometheus();
        assert!(text.contains("epi_decision_risk_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("epi_decision_risk_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("epi_decision_risk_count 6"));
    }

    #[test]
    fn exact_powers_of_two_land_in_their_own_bucket() {
        // Bucket `k` covers [2^k, 2^(k+1)): the lower boundary 2^k must
        // land in bucket k, and 2^k - 1 in bucket k-1.
        for k in 1..LATENCY_BUCKETS - 1 {
            let m = Metrics::new();
            m.record_decision(Some(Stage::BranchAndBound), 1u64 << k);
            m.record_decision(Some(Stage::BranchAndBound), (1u64 << k) - 1);
            let buckets = &m.snapshot().stages[5].buckets;
            assert_eq!(buckets[k], 1, "2^{k} must land in bucket {k}");
            assert_eq!(buckets[k - 1], 1, "2^{k}-1 must land in bucket {}", k - 1);
        }
    }

    #[test]
    fn last_bucket_saturates() {
        // 2^(LATENCY_BUCKETS-1) is the first latency the catch-all
        // bucket owns; everything above stays there instead of indexing
        // out of bounds.
        let m = Metrics::new();
        let edge = 1u64 << (LATENCY_BUCKETS - 1);
        m.record_decision(Some(Stage::Monotonicity), edge - 1);
        m.record_decision(Some(Stage::Monotonicity), edge);
        m.record_decision(Some(Stage::Monotonicity), edge * 2);
        m.record_decision(Some(Stage::Monotonicity), u64::MAX);
        let buckets = &m.snapshot().stages[2].buckets;
        assert_eq!(buckets[LATENCY_BUCKETS - 2], 1);
        assert_eq!(buckets[LATENCY_BUCKETS - 1], 3);
    }

    #[test]
    fn connection_gauges_track_accepts_and_closes() {
        let m = Metrics::new();
        for _ in 0..3 {
            Metrics::incr(&m.connections_accepted);
            Metrics::incr(&m.connections_open);
        }
        Metrics::decr(&m.connections_open);
        Metrics::observe_high_water(&m.read_buffer_high_water, 512);
        Metrics::observe_high_water(&m.read_buffer_high_water, 128); // no regression
        let snap = m.snapshot();
        assert_eq!(snap.connections_accepted, 3);
        assert_eq!(snap.connections_open, 2);
        assert_eq!(snap.read_buffer_high_water, 512);
        // The gauge saturates rather than wrapping if decrements race a
        // fresh registry.
        let m2 = Metrics::new();
        Metrics::decr(&m2.connections_open);
        assert_eq!(m2.snapshot().connections_open, 0);
        let back = Snapshot::from_json(&Json::parse(&snap.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_with_trace_fields_roundtrips() {
        let m = Metrics::new();
        Metrics::incr(&m.requests);
        m.record_decision(Some(Stage::Unconditional), 3);
        let mut snap = m.snapshot();
        // The service layer fills these from the trace recorder.
        snap.trace_spans = 12;
        snap.trace_dropped = 4;
        snap.slow_decisions = 2;
        snap.pool_queue_waits = 7;
        snap.pool_queue_wait_micros = 31_000;
        // …and these from the disclosure log.
        snap.wal_appends = 40;
        snap.wal_bytes = 4_096;
        snap.wal_fsyncs = 9;
        snap.snapshot_count = 1;
        snap.recovery_replayed_records = 25;
        snap.recovery_millis = 3;
        // …and these from the admission controller and drain path.
        snap.admission_rejects_deadline = 6;
        snap.admission_rejects_limit = 11;
        snap.admission_rejects_fairness = 2;
        snap.admission_rejects_degraded = 1;
        snap.admission_limit = 48;
        snap.admission_wait_ewma_micros = 1_750;
        snap.degradation_mode = 2;
        snap.drain_micros = 81_000;
        // …and these from the budget ledger path.
        snap.budget_exhausted_denials = 3;
        snap.budget_warnings = 5;
        snap.budget_spent_high_water_micros = 1_900_000;
        let back = Snapshot::from_json(&Json::parse(&snap.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.admission_rejects_limit, 11);
        assert_eq!(back.degradation_mode, 2);
        assert_eq!(back.drain_micros, 81_000);
        assert_eq!(back.trace_spans, 12);
        assert_eq!(back.slow_decisions, 2);
        assert_eq!(back.pool_queue_wait_micros, 31_000);
        assert_eq!(back.wal_appends, 40);
        assert_eq!(back.recovery_replayed_records, 25);
        assert_eq!(back.budget_exhausted_denials, 3);
        assert_eq!(back.budget_warnings, 5);
        assert_eq!(back.budget_spent_high_water_micros, 1_900_000);
    }

    #[test]
    fn prometheus_exposition_covers_all_counters_and_stages() {
        let m = Metrics::new();
        Metrics::incr(&m.requests);
        Metrics::incr(&m.cache_hits);
        m.observe_queue_depth(5);
        m.record_decision(Some(Stage::BranchAndBound), 900); // bucket 9: [512, 1024)
        m.record_decision(None, 10);
        let mut snap = m.snapshot();
        snap.trace_spans = 3;
        let text = snap.render_prometheus();
        for name in [
            "epi_requests_total",
            "epi_decide_requests_total",
            "epi_negative_gated_total",
            "epi_cache_hits_total",
            "epi_cache_misses_total",
            "epi_cache_evictions_total",
            "epi_coalesced_total",
            "epi_computed_total",
            "epi_solver_boxes_total",
            "epi_solver_micros_total",
            "epi_worker_respawns_total",
            "epi_shed_requests_total",
            "epi_deadline_exceeded_total",
            "epi_connections_accepted_total",
            "epi_connections_evicted_idle_total",
            "epi_connections_evicted_overflow_total",
            "epi_backpressure_stalls_total",
            "epi_pool_tasks_total",
            "epi_pool_steals_total",
            "epi_pool_queue_waits_total",
            "epi_pool_queue_wait_micros_total",
            "epi_pool_arena_checkouts_total",
            "epi_pool_arena_misses_total",
            "epi_pool_waves_sequential_total",
            "epi_pool_waves_parallel_total",
            "epi_pool_batch_sweeps_total",
            "epi_trace_spans_total",
            "epi_trace_dropped_total",
            "epi_slow_decisions_total",
            "epi_wal_appends_total",
            "epi_wal_bytes_total",
            "epi_wal_fsyncs_total",
            "epi_snapshots_total",
            "epi_admission_rejects_deadline_total",
            "epi_admission_rejects_limit_total",
            "epi_admission_rejects_fairness_total",
            "epi_admission_rejects_degraded_total",
            "epi_budget_exhausted_denials_total",
            "epi_budget_warnings_total",
            "epi_budget_spent_high_water_micros",
            "epi_decision_risk",
            "epi_admission_limit",
            "epi_admission_wait_ewma_micros",
            "epi_degradation_mode",
            "epi_drain_micros",
            "epi_queue_high_water",
            "epi_connections_open",
            "epi_read_buffer_high_water",
            "epi_write_buffer_high_water",
            "epi_pool_workers",
            "epi_pool_arena_high_water_bytes",
            "epi_pool_soa_high_water_bytes",
            "epi_recovery_replayed_records",
            "epi_recovery_millis",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "missing {name} in exposition:\n{text}"
            );
        }
        // All 7 stage histograms appear with cumulative buckets.
        for label in STAGE_LABELS {
            assert!(
                text.contains(&format!(
                    "epi_stage_latency_micros_count{{stage=\"{label}\"}}"
                )),
                "missing stage {label}"
            );
            assert!(text.contains(&format!(
                "epi_stage_latency_micros_bucket{{stage=\"{label}\",le=\"+Inf\"}}"
            )));
        }
        // 900 µs lands in [512, 1024): cumulative count at le="1024" is 1,
        // at le="512" still 0.
        assert!(text
            .contains("epi_stage_latency_micros_bucket{stage=\"branch_and_bound\",le=\"512\"} 0"));
        assert!(text
            .contains("epi_stage_latency_micros_bucket{stage=\"branch_and_bound\",le=\"1024\"} 1"));
        assert!(text
            .contains("epi_stage_latency_micros_bucket{stage=\"branch_and_bound\",le=\"+Inf\"} 1"));
        assert!(text.contains("epi_stage_latency_micros_sum{stage=\"branch_and_bound\"} 900"));
        assert!(text.contains("epi_trace_spans_total 3"));
    }
}
